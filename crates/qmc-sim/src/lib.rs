//! # qmc-sim — the QMCPACK workload (paper §IV-C.2)
//!
//! Real variational + diffusion Monte Carlo for the helium atom — the
//! paper's QMCPACK example — built on a Padé–Jastrow trial
//! wavefunction with analytic local energy. The two series communicate
//! through files on the fault-injected filesystem: VMC writes its
//! scalar trace and a walker checkpoint; DMC restarts from that
//! checkpoint (the storage-fault propagation path) and writes the
//! `He.s001.scalar.dat` the paper classifies.
//!
//! For two opposite-spin electrons DMC has no fixed-node error, so the
//! golden energy lands at the exact non-relativistic ground state
//! −2.90372 Ha — inside the paper's SDC window `[-2.91, -2.90]`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod dmc;
pub mod qmca;
pub mod scalar;
pub mod vmc;
pub mod wavefunction;

pub use app::{
    seg_block_config, seg_block_s001, seg_config, seg_s000, seg_s001, QmcApp, QmcConfig, QmcOutput,
    CONFIG, LOG, S000, S001,
};
pub use dmc::{run_dmc, DmcConfig, DmcError, DmcResult};
pub use qmca::{analyze, QmcaConfig, QmcaResult};
pub use scalar::{
    parse_checkpoint, parse_scalar, read_checkpoint, read_scalar, render_checkpoint, render_scalar,
    write_checkpoint, write_scalar, ParsedScalar, ScalarRow, SCALAR_HEADER,
};
pub use vmc::{run_vmc, VmcConfig, VmcResult};
pub use wavefunction::{TrialWavefunction, Walker};
