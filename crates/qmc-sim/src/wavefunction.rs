//! Trial wavefunction for the helium atom.
//!
//! The paper's QMCPACK experiment runs Diffusion Monte Carlo on a
//! single helium atom ("since there is only one electron of each spin,
//! DMC is supposed to reproduce the exact non-relativistic ground
//! state energy (−2.90372 Hartree)", §IV-C.2). We use the standard
//! Padé–Jastrow trial form
//!
//! ```text
//! ψ(r₁, r₂) = exp(−Z(r₁+r₂)) · exp( b·r₁₂ / (1 + a·r₁₂) )
//! ```
//!
//! with the electron–electron cusp `b = 1/2` (antiparallel spins) and
//! the gradient/Laplacian of `ln ψ` computed analytically, giving the
//! local energy `E_L = −½ Σᵢ (∇ᵢ² lnψ + |∇ᵢ lnψ|²) + V` with
//! `V = −2/r₁ − 2/r₂ + 1/r₁₂`.

/// One walker: positions of the two electrons (Bohr).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Walker {
    /// Electron 1 position.
    pub r1: [f64; 3],
    /// Electron 2 position.
    pub r2: [f64; 3],
}

impl Walker {
    /// Distances `(r1, r2, r12)`.
    pub fn distances(&self) -> (f64, f64, f64) {
        (norm(self.r1), norm(self.r2), dist(self.r1, self.r2))
    }

    /// Are all coordinates finite and the electrons separated?
    pub fn is_physical(&self) -> bool {
        let all_finite =
            self.r1.iter().chain(self.r2.iter()).all(|v| v.is_finite() && v.abs() < 1e3);
        if !all_finite {
            return false;
        }
        let (a, b, r12) = self.distances();
        a > 1e-8 && b > 1e-8 && r12 > 1e-8
    }
}

fn norm(v: [f64; 3]) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    norm([a[0] - b[0], a[1] - b[1], a[2] - b[2]])
}

/// Padé–Jastrow helium trial wavefunction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialWavefunction {
    /// Orbital exponent (nuclear cusp ⇒ Z = 2 for helium).
    pub z: f64,
    /// Jastrow strength (e–e cusp ⇒ b = 1/2).
    pub b: f64,
    /// Jastrow range parameter (variational).
    pub a: f64,
}

impl Default for TrialWavefunction {
    fn default() -> Self {
        // a tuned variationally; see the VMC tests.
        TrialWavefunction { z: 2.0, b: 0.5, a: 0.4 }
    }
}

impl TrialWavefunction {
    /// `ln ψ`.
    pub fn log_psi(&self, w: &Walker) -> f64 {
        let (r1, r2, r12) = w.distances();
        -self.z * (r1 + r2) + self.b * r12 / (1.0 + self.a * r12)
    }

    /// Jastrow derivative `u'(r)` for `u = b·r/(1+a·r)`.
    fn u_prime(&self, r12: f64) -> f64 {
        let d = 1.0 + self.a * r12;
        self.b / (d * d)
    }

    /// Jastrow second derivative `u''(r)`.
    fn u_double_prime(&self, r12: f64) -> f64 {
        let d = 1.0 + self.a * r12;
        -2.0 * self.a * self.b / (d * d * d)
    }

    /// `(∇₁ lnψ, ∇₂ lnψ)` — the drift velocities.
    pub fn grad_log_psi(&self, w: &Walker) -> ([f64; 3], [f64; 3]) {
        let (r1, r2, r12) = w.distances();
        let up = self.u_prime(r12);
        let mut g1 = [0.0; 3];
        let mut g2 = [0.0; 3];
        for k in 0..3 {
            let rhat1 = w.r1[k] / r1;
            let rhat2 = w.r2[k] / r2;
            let rhat12 = (w.r1[k] - w.r2[k]) / r12;
            g1[k] = -self.z * rhat1 + up * rhat12;
            g2[k] = -self.z * rhat2 - up * rhat12;
        }
        (g1, g2)
    }

    /// Local energy `E_L(R)`.
    pub fn local_energy(&self, w: &Walker) -> f64 {
        let (r1, r2, r12) = w.distances();
        let up = self.u_prime(r12);
        let upp = self.u_double_prime(r12);
        let (g1, g2) = self.grad_log_psi(w);
        // ∇ᵢ² lnψ = −2Z/rᵢ + (u'' + 2u'/r₁₂)  (the Jastrow part is
        // symmetric in the two electrons).
        let lap1 = -2.0 * self.z / r1 + upp + 2.0 * up / r12;
        let lap2 = -2.0 * self.z / r2 + upp + 2.0 * up / r12;
        let g1sq: f64 = g1.iter().map(|v| v * v).sum();
        let g2sq: f64 = g2.iter().map(|v| v * v).sum();
        let kinetic = -0.5 * (lap1 + g1sq + lap2 + g2sq);
        let potential = -2.0 / r1 - 2.0 / r2 + 1.0 / r12;
        kinetic + potential
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_core::Rng;

    fn random_walker(rng: &mut Rng) -> Walker {
        Walker {
            r1: [rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5)],
            r2: [rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5)],
        }
    }

    #[test]
    fn non_interacting_limit_is_exact() {
        // With b = 0 and Z = 2, ψ is the exact eigenfunction of the
        // Hamiltonian *without* the e–e repulsion, with energy −4 Ha:
        // E_L − 1/r₁₂ must equal −4 for every configuration.
        let wf = TrialWavefunction { z: 2.0, b: 0.0, a: 0.3 };
        let mut rng = Rng::seed_from(1);
        for _ in 0..200 {
            let w = random_walker(&mut rng);
            if !w.is_physical() {
                continue;
            }
            let (_, _, r12) = w.distances();
            let e = wf.local_energy(&w) - 1.0 / r12;
            assert!((e + 4.0).abs() < 1e-9, "E_L - 1/r12 = {}", e);
        }
    }

    #[test]
    fn hydrogenic_scaling() {
        // With b = 0 and general Z, the analytic local energy is
        // E_L = −Z² + (Z−2)(1/r₁ + 1/r₂) + 1/r₁₂ exactly.
        let wf = TrialWavefunction { z: 1.5, b: 0.0, a: 0.3 };
        let mut rng = Rng::seed_from(2);
        for _ in 0..100 {
            let w = random_walker(&mut rng);
            if !w.is_physical() {
                continue;
            }
            let (r1, r2, r12) = w.distances();
            let expect = -1.5 * 1.5 + (1.5 - 2.0) * (1.0 / r1 + 1.0 / r2) + 1.0 / r12;
            let e = wf.local_energy(&w);
            assert!((e - expect).abs() < 1e-9, "{} vs {}", e, expect);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let wf = TrialWavefunction::default();
        let mut rng = Rng::seed_from(3);
        let h = 1e-6;
        for _ in 0..50 {
            let w = random_walker(&mut rng);
            if !w.is_physical() {
                continue;
            }
            let (g1, g2) = wf.grad_log_psi(&w);
            for k in 0..3 {
                let mut wp = w;
                wp.r1[k] += h;
                let mut wm = w;
                wm.r1[k] -= h;
                let fd = (wf.log_psi(&wp) - wf.log_psi(&wm)) / (2.0 * h);
                assert!((fd - g1[k]).abs() < 1e-5, "g1[{}]: {} vs {}", k, g1[k], fd);
                let mut wp = w;
                wp.r2[k] += h;
                let mut wm = w;
                wm.r2[k] -= h;
                let fd = (wf.log_psi(&wp) - wf.log_psi(&wm)) / (2.0 * h);
                assert!((fd - g2[k]).abs() < 1e-5, "g2[{}]: {} vs {}", k, g2[k], fd);
            }
        }
    }

    #[test]
    fn local_energy_matches_finite_difference_laplacian() {
        let wf = TrialWavefunction::default();
        let mut rng = Rng::seed_from(4);
        let h = 1e-4;
        for _ in 0..20 {
            let w = random_walker(&mut rng);
            let (r1, r2, r12) = w.distances();
            // Keep away from cusps where FD is inaccurate.
            if r1 < 0.3 || r2 < 0.3 || r12 < 0.3 {
                continue;
            }
            // ∇²ψ/ψ via ln ψ: Σ (lnψ(x+h) + lnψ(x−h) − 2lnψ) / h² + |∇lnψ|².
            let base = wf.log_psi(&w);
            let mut lap_ln = 0.0;
            for e in 0..2 {
                for k in 0..3 {
                    let mut wp = w;
                    let mut wm = w;
                    if e == 0 {
                        wp.r1[k] += h;
                        wm.r1[k] -= h;
                    } else {
                        wp.r2[k] += h;
                        wm.r2[k] -= h;
                    }
                    lap_ln += (wf.log_psi(&wp) + wf.log_psi(&wm) - 2.0 * base) / (h * h);
                }
            }
            let (g1, g2) = wf.grad_log_psi(&w);
            let gsq: f64 = g1.iter().chain(g2.iter()).map(|v| v * v).sum();
            let e_fd = -0.5 * (lap_ln + gsq) - 2.0 / r1 - 2.0 / r2 + 1.0 / r12;
            let e = wf.local_energy(&w);
            assert!((e - e_fd).abs() < 1e-4, "{} vs {}", e, e_fd);
        }
    }

    #[test]
    fn physicality_checks() {
        let good = Walker { r1: [0.5, 0.0, 0.0], r2: [-0.5, 0.0, 0.0] };
        assert!(good.is_physical());
        let coincident = Walker { r1: [0.5, 0.0, 0.0], r2: [0.5, 0.0, 0.0] };
        assert!(!coincident.is_physical());
        let on_nucleus = Walker { r1: [0.0, 0.0, 0.0], r2: [0.5, 0.0, 0.0] };
        assert!(!on_nucleus.is_physical());
        let nan = Walker { r1: [f64::NAN, 0.0, 0.0], r2: [0.5, 0.0, 0.0] };
        assert!(!nan.is_physical());
        let runaway = Walker { r1: [1e6, 0.0, 0.0], r2: [0.5, 0.0, 0.0] };
        assert!(!runaway.is_physical());
    }

    #[test]
    fn cusp_condition_softens_ee_singularity() {
        // With b = 1/2, E_L stays bounded as r12 -> 0 (the 1/r12
        // repulsion is cancelled by the Jastrow cusp).
        let wf = TrialWavefunction::default();
        let mut prev = f64::NAN;
        for &eps in &[1e-2, 1e-4, 1e-6] {
            let w = Walker { r1: [0.8, 0.0, 0.0], r2: [0.8 + eps, 0.0, 0.0] };
            let e = wf.local_energy(&w);
            assert!(e.is_finite());
            if !prev.is_nan() {
                assert!((e - prev).abs() < 1.0, "E_L diverging near cusp: {} -> {}", prev, e);
            }
            prev = e;
        }
    }
}
