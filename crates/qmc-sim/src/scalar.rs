//! QMCPACK `scalar.dat` text format and the walker checkpoint.
//!
//! QMCPACK emits one `<project>.sNNN.scalar.dat` per series — a
//! whitespace-separated text table with a `#`-prefixed header row —
//! and hands walker configurations from one series to the next through
//! a checkpoint file. Both travel through the fault-injected
//! filesystem; the text format's tolerance (unparsable rows are
//! skipped) and the checkpoint's validation (physicality checks at
//! restart) shape which faults surface as SDC, detected or crash.

use ffis_vfs::{BufFile, FileSystem, FileSystemExt};

use crate::wavefunction::Walker;

/// One row of a scalar.dat table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarRow {
    /// Step index.
    pub index: u64,
    /// Ensemble-averaged local energy (Ha).
    pub local_energy: f64,
    /// Ensemble variance of the local energy.
    pub variance: f64,
    /// Ensemble weight (population).
    pub weight: f64,
    /// Move acceptance ratio.
    pub accept_ratio: f64,
}

/// The header line (QMCPACK-style column names).
pub const SCALAR_HEADER: &str =
    "#   index        LocalEnergy          Variance             Weight           AcceptRatio";

/// Render rows to the scalar.dat text.
pub fn render_scalar(rows: &[ScalarRow]) -> String {
    let mut s = String::with_capacity(rows.len() * 80 + 100);
    s.push_str(SCALAR_HEADER);
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:>9} {:>20.12e} {:>20.12e} {:>16.6e} {:>14.6e}\n",
            r.index, r.local_energy, r.variance, r.weight, r.accept_ratio
        ));
    }
    s
}

/// Write scalar.dat through a stdio-style 4 KiB buffer (the write-size
/// population the fault models act on).
pub fn write_scalar(fs: &dyn FileSystem, path: &str, rows: &[ScalarRow]) -> Result<(), String> {
    let text = render_scalar(rows);
    let mut f = BufFile::create(fs, path).map_err(|e| e.to_string())?;
    f.write_all(text.as_bytes()).map_err(|e| e.to_string())?;
    f.close().map_err(|e| e.to_string())
}

/// Parse result with damage accounting.
#[derive(Debug, Clone)]
pub struct ParsedScalar {
    /// Successfully parsed rows.
    pub rows: Vec<ScalarRow>,
    /// Lines that failed to parse (skipped, QMCA-style).
    pub skipped: usize,
}

/// Parse a scalar.dat file body.
///
/// Mirrors how a line-oriented analysis tool reacts to damage: the
/// header must be intact (else the tool errors out — crash class);
/// individual unparsable lines are skipped; too few surviving rows is
/// an error.
pub fn parse_scalar(text: &str, min_rows: usize) -> Result<ParsedScalar, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty scalar.dat")?;
    if !header.starts_with('#') || !header.contains("LocalEnergy") {
        return Err("scalar.dat header missing or corrupt".into());
    }
    let mut rows = Vec::new();
    let mut skipped = 0usize;
    for line in lines {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parsed: Option<ScalarRow> = (|| {
            let index = it.next()?.parse::<u64>().ok()?;
            let local_energy = it.next()?.parse::<f64>().ok()?;
            let variance = it.next()?.parse::<f64>().ok()?;
            let weight = it.next()?.parse::<f64>().ok()?;
            let accept_ratio = it.next()?.parse::<f64>().ok()?;
            (local_energy.is_finite() && variance.is_finite()).then_some(ScalarRow {
                index,
                local_energy,
                variance,
                weight,
                accept_ratio,
            })
        })();
        match parsed {
            Some(r) => rows.push(r),
            None => skipped += 1,
        }
    }
    if rows.len() < min_rows {
        return Err(format!(
            "scalar.dat too damaged: {} parsable rows (< {}), {} skipped",
            rows.len(),
            min_rows,
            skipped
        ));
    }
    Ok(ParsedScalar { rows, skipped })
}

/// Read and parse a scalar.dat from the filesystem.
pub fn read_scalar(
    fs: &dyn FileSystem,
    path: &str,
    min_rows: usize,
) -> Result<ParsedScalar, String> {
    let bytes = fs.read_to_vec(path).map_err(|e| format!("cannot read {}: {}", path, e))?;
    let text = String::from_utf8_lossy(&bytes);
    parse_scalar(&text, min_rows)
}

// ---- walker checkpoint -------------------------------------------------------

/// Checkpoint magic.
pub const CONFIG_MAGIC: &[u8; 8] = b"QMCWLKR1";

/// Serialize a walker ensemble (the series-to-series handoff file).
pub fn render_checkpoint(walkers: &[Walker]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + walkers.len() * 48);
    out.extend_from_slice(CONFIG_MAGIC);
    out.extend_from_slice(&(walkers.len() as u64).to_le_bytes());
    for w in walkers {
        for v in w.r1.iter().chain(w.r2.iter()) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Write the checkpoint in 4 KiB chunks.
pub fn write_checkpoint(fs: &dyn FileSystem, path: &str, walkers: &[Walker]) -> Result<(), String> {
    let bytes = render_checkpoint(walkers);
    fs.write_file_chunked(path, &bytes, ffis_vfs::BLOCK_SIZE).map_err(|e| e.to_string())
}

/// Parse a checkpoint. Structural validation only (magic, count,
/// length) — *values* are deliberately not sanity-checked here: silent
/// coordinate corruption must be able to flow into DMC, where the
/// physicality check at restart decides between crash and silent
/// trajectory change (the paper's propagation question).
pub fn parse_checkpoint(bytes: &[u8]) -> Result<Vec<Walker>, String> {
    if bytes.len() < 16 {
        return Err("checkpoint truncated".into());
    }
    if &bytes[..8] != CONFIG_MAGIC {
        return Err("checkpoint magic mismatch".into());
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    if count == 0 || count > 1_000_000 {
        return Err(format!("implausible walker count {}", count));
    }
    let need = 16 + count * 48;
    if bytes.len() < need {
        return Err(format!("checkpoint short: {} < {}", bytes.len(), need));
    }
    let mut walkers = Vec::with_capacity(count);
    for i in 0..count {
        let base = 16 + i * 48;
        let mut vals = [0.0f64; 6];
        for (k, v) in vals.iter_mut().enumerate() {
            *v = f64::from_le_bytes(bytes[base + 8 * k..base + 8 * (k + 1)].try_into().unwrap());
        }
        walkers.push(Walker { r1: [vals[0], vals[1], vals[2]], r2: [vals[3], vals[4], vals[5]] });
    }
    Ok(walkers)
}

/// Read and parse the checkpoint from the filesystem.
pub fn read_checkpoint(fs: &dyn FileSystem, path: &str) -> Result<Vec<Walker>, String> {
    let bytes = fs.read_to_vec(path).map_err(|e| format!("cannot read {}: {}", path, e))?;
    parse_checkpoint(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::MemFs;

    fn rows(n: usize) -> Vec<ScalarRow> {
        (0..n)
            .map(|i| ScalarRow {
                index: i as u64,
                local_energy: -2.9 + 0.001 * (i % 7) as f64,
                variance: 0.1,
                weight: 256.0,
                accept_ratio: 0.99,
            })
            .collect()
    }

    #[test]
    fn render_parse_roundtrip() {
        let rs = rows(100);
        let text = render_scalar(&rs);
        let parsed = parse_scalar(&text, 10).unwrap();
        assert_eq!(parsed.rows.len(), 100);
        assert_eq!(parsed.skipped, 0);
        for (a, b) in rs.iter().zip(&parsed.rows) {
            assert_eq!(a.index, b.index);
            assert!((a.local_energy - b.local_energy).abs() < 1e-12);
        }
    }

    #[test]
    fn write_read_through_fs() {
        let fs = MemFs::new();
        write_scalar(&fs, "/He.s001.scalar.dat", &rows(500)).unwrap();
        let parsed = read_scalar(&fs, "/He.s001.scalar.dat", 10).unwrap();
        assert_eq!(parsed.rows.len(), 500);
    }

    #[test]
    fn corrupt_header_is_fatal() {
        let rs = rows(50);
        let mut text = render_scalar(&rs);
        text.replace_range(0..1, "X");
        assert!(parse_scalar(&text, 10).is_err());
        // Also if LocalEnergy column name is damaged.
        let text2 = render_scalar(&rs).replace("LocalEnergy", "LocalEnergx");
        assert!(parse_scalar(&text2, 10).is_err());
    }

    #[test]
    fn damaged_rows_are_skipped() {
        let rs = rows(50);
        let mut text = render_scalar(&rs);
        // Corrupt two lines with garbage.
        let lines: Vec<&str> = text.lines().collect();
        let mut damaged: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        damaged[10] = "garbage line @@@@".to_string();
        damaged[20] = damaged[20].replace('e', "X");
        text = damaged.join("\n");
        text.push('\n');
        let parsed = parse_scalar(&text, 10).unwrap();
        assert_eq!(parsed.rows.len(), 48);
        assert_eq!(parsed.skipped, 2);
    }

    #[test]
    fn nul_hole_lines_are_skipped() {
        // A dropped interior write leaves a zero-filled hole.
        let rs = rows(200);
        let text = render_scalar(&rs);
        let mut bytes = text.into_bytes();
        for b in &mut bytes[2000..4000] {
            *b = 0;
        }
        let text = String::from_utf8_lossy(&bytes).to_string();
        let parsed = parse_scalar(&text, 10).unwrap();
        assert!(parsed.rows.len() < 200);
        assert!(parsed.rows.len() > 150);
    }

    #[test]
    fn too_few_rows_is_fatal() {
        let text = render_scalar(&rows(5));
        assert!(parse_scalar(&text, 10).is_err());
        assert!(parse_scalar("", 1).is_err());
    }

    #[test]
    fn nan_energy_rows_rejected() {
        let mut text = render_scalar(&rows(20));
        text.push_str("     20             NaN       1.0e-1       2.56e+02   9.9e-01\n");
        let parsed = parse_scalar(&text, 10).unwrap();
        assert_eq!(parsed.rows.len(), 20);
        assert_eq!(parsed.skipped, 1);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let walkers: Vec<Walker> = (0..100)
            .map(|i| Walker { r1: [i as f64 * 0.01, 0.5, -0.5], r2: [-0.3, i as f64 * -0.02, 0.7] })
            .collect();
        let fs = MemFs::new();
        write_checkpoint(&fs, "/He.s000.config.dat", &walkers).unwrap();
        let back = read_checkpoint(&fs, "/He.s000.config.dat").unwrap();
        assert_eq!(back, walkers);
    }

    #[test]
    fn checkpoint_validation() {
        assert!(parse_checkpoint(b"short").is_err());
        let mut bad_magic = render_checkpoint(&[Walker { r1: [1.0; 3], r2: [2.0; 3] }]);
        bad_magic[0] ^= 0xFF;
        assert!(parse_checkpoint(&bad_magic).is_err());
        let mut bad_count = render_checkpoint(&[Walker { r1: [1.0; 3], r2: [2.0; 3] }]);
        bad_count[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(parse_checkpoint(&bad_count).is_err());
        let truncated = render_checkpoint(&[Walker { r1: [1.0; 3], r2: [2.0; 3] }]);
        assert!(parse_checkpoint(&truncated[..truncated.len() - 8]).is_err());
    }

    #[test]
    fn checkpoint_passes_silent_value_corruption_through() {
        // Structural parse succeeds even with NaN coordinates — the
        // *restart* physicality check is where QMCPACK decides.
        let mut bytes = render_checkpoint(&[Walker { r1: [1.0; 3], r2: [2.0; 3] }]);
        bytes[16..24].copy_from_slice(&f64::NAN.to_le_bytes());
        let walkers = parse_checkpoint(&bytes).unwrap();
        assert!(walkers[0].r1[0].is_nan());
        assert!(!walkers[0].is_physical());
    }
}
