//! The QMCPACK workload as a [`FaultApp`] (paper §IV-C.2).
//!
//! One run mirrors the He example's two-series pipeline, split along
//! the two-phase [`FaultApp`] contract:
//!
//! * **produce** writes `He.s000.scalar.dat`, the walker checkpoint
//!   `He.s000.config.dat`, the golden-trajectory `He.s001.scalar.dat`
//!   and the run log through the filesystem under test — pure
//!   streaming of deterministic VMC/DMC products, so the write stream
//!   is data-independent and replayable.
//! * **analyze** re-examines the VMC→DMC handoff *from storage* — the
//!   channel where storage faults propagate into the physics. If the
//!   on-disk checkpoint differs from the golden walkers, DMC restarts
//!   from the stored (possibly corrupted) configuration and the
//!   re-derived `s001` series replaces the on-disk one, exactly as a
//!   monolithic execution would have written it. QMCA then parses
//!   both series and reports the DMC total energy.
//!
//! Classification (verbatim §IV-C.2): bitwise-compare
//! `He.s001.scalar.dat` with the golden file — identical ⇒ *benign*;
//! otherwise, if the final energy stays in `[-2.91, -2.90]` Ha ⇒
//! *SDC*; otherwise ⇒ *detected*. Unreadable/unparsable artifacts or
//! a DMC abort ⇒ *crash*.

use ffis_core::{FaultApp, Outcome, SubstepSpec};
use ffis_vfs::{FileSystem, FileSystemExt};

use crate::dmc::{run_dmc, DmcConfig};
use crate::qmca::{analyze, QmcaConfig, QmcaResult};
use crate::scalar::{read_scalar, render_checkpoint, render_scalar, write_scalar, ScalarRow};
use crate::vmc::{run_vmc, VmcConfig};
use crate::wavefunction::{TrialWavefunction, Walker};

/// VMC scalar output path.
pub const S000: &str = "/qmc/He.s000.scalar.dat";
/// Walker checkpoint path (the VMC→DMC handoff).
pub const CONFIG: &str = "/qmc/He.s000.config.dat";
/// DMC scalar output path (the classified artifact).
pub const S001: &str = "/qmc/He.s001.scalar.dat";
/// Run log path.
pub const LOG: &str = "/qmc/He.out";

/// File-name stem of restart segment `s`: the legacy `He` in the
/// single-restart regime, `He.g000`/`He.g001`/... otherwise.
fn seg_stem(s: usize, restarts: usize) -> String {
    if restarts == 1 {
        "He".into()
    } else {
        format!("He.g{:03}", s)
    }
}

/// VMC scalar path of restart segment `s` (collapses to [`S000`] in
/// the single-restart regime).
pub fn seg_s000(s: usize, restarts: usize) -> String {
    format!("/qmc/{}.s000.scalar.dat", seg_stem(s, restarts))
}

/// Walker-checkpoint path of restart segment `s` (collapses to
/// [`CONFIG`] in the single-restart regime).
pub fn seg_config(s: usize, restarts: usize) -> String {
    format!("/qmc/{}.s000.config.dat", seg_stem(s, restarts))
}

/// DMC scalar path of restart segment `s` (collapses to [`S001`] in
/// the single-restart regime).
pub fn seg_s001(s: usize, restarts: usize) -> String {
    format!("/qmc/{}.s001.scalar.dat", seg_stem(s, restarts))
}

/// Walker-checkpoint path of DMC restart block `b` inside segment `s`.
/// Block 0 restarts from the VMC→DMC handoff itself ([`seg_config`]);
/// later blocks restart from the mid-series checkpoints the DMC run
/// drops between blocks.
pub fn seg_block_config(s: usize, b: usize, restarts: usize) -> String {
    if b == 0 {
        seg_config(s, restarts)
    } else {
        format!("/qmc/{}.s001.config.b{:03}.dat", seg_stem(s, restarts), b)
    }
}

/// DMC scalar path of restart block `b` inside segment `s` (collapses
/// to [`seg_s001`] in the single-block regime, where the series is one
/// file).
pub fn seg_block_s001(s: usize, b: usize, restarts: usize, blocks: usize) -> String {
    if blocks == 1 {
        seg_s001(s, restarts)
    } else {
        format!("/qmc/{}.s001.b{:03}.scalar.dat", seg_stem(s, restarts), b)
    }
}

/// QMCPACK workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct QmcConfig {
    /// Trial wavefunction parameters.
    pub wavefunction: TrialWavefunction,
    /// VMC series parameters.
    pub vmc: VmcConfig,
    /// DMC series parameters.
    pub dmc: DmcConfig,
    /// QMCA analysis parameters.
    pub qmca: QmcaConfig,
    /// SDC window for the final energy (paper: `[-2.91, -2.90]`).
    pub sdc_window: (f64, f64),
    /// Restart tolerance: minimum fraction of checkpoint walkers that
    /// must be physical for DMC to proceed (below it, abort = crash).
    pub min_restart_fraction: f64,
    /// Number of independent VMC→DMC restart segments
    /// (`He.g000`/`He.g001`/... file families, each with its own
    /// scalar series and walker checkpoint). `1` (the default) keeps
    /// the legacy `He.*` single-segment layout byte for byte.
    /// Multi-restart runs declare one analyze sub-step per segment,
    /// so campaigns memoize the checkpoint restarts a fault cannot
    /// reach (incremental analyze).
    pub restarts: usize,
    /// Number of DMC restart blocks per segment: the `s001` series is
    /// split into `dmc_blocks` back-to-back DMC runs, each restarting
    /// from a walker checkpoint dropped by its predecessor (block 0
    /// restarts from the VMC→DMC handoff). `1` (the default) keeps the
    /// legacy single-series layout byte for byte. With more blocks,
    /// each block is its own analyze sub-step, so a tampered mid-series
    /// checkpoint re-derives `steps/dmc_blocks` DMC steps instead of
    /// the whole series — the cold-analyze cost a dirty restart pays.
    pub dmc_blocks: usize,
}

impl Default for QmcConfig {
    fn default() -> Self {
        QmcConfig {
            wavefunction: TrialWavefunction::default(),
            // Series lengths sized so that (i) QMCA's 30% cut fully
            // removes the VMC→DMC projection transient, (ii) the
            // statistical error (~1.5 mHa) keeps the golden energy
            // inside [-2.91, -2.90], and (iii) the write-instance
            // population splits ~30% s000 / ~60% s001 — the
            // benign/SDC balance of Figure 7's QMC columns.
            vmc: VmcConfig { walkers: 384, warmup: 300, steps: 2000, ..Default::default() },
            dmc: DmcConfig { target_walkers: 384, warmup: 0, steps: 4000, ..Default::default() },
            qmca: QmcaConfig { equilibration_fraction: 0.3, min_rows: 50 },
            sdc_window: (-2.91, -2.90),
            min_restart_fraction: 0.25,
            restarts: 1,
            dmc_blocks: 1,
        }
    }
}

/// DMC parameters of restart block `b`: the configured step budget is
/// split evenly across blocks (remainder to the early ones), only
/// block 0 pays the warmup (later blocks continue an equilibrated
/// ensemble), and each block gets an independent RNG stream. Collapses
/// to `config.dmc` verbatim in the single-block regime. Used both for
/// the golden chain and for checkpoint re-derivation, so an untampered
/// block checkpoint always reproduces its golden rows.
fn block_dmc_cfg(config: &QmcConfig, b: usize) -> DmcConfig {
    let blocks = config.dmc_blocks.max(1);
    DmcConfig {
        warmup: if b == 0 { config.dmc.warmup } else { 0 },
        steps: config.dmc.steps / blocks + usize::from(b < config.dmc.steps % blocks),
        seed: config.dmc.seed.wrapping_add(0xB10C * b as u64),
        ..config.dmc
    }
}

/// Classification artifacts.
#[derive(Debug, Clone)]
pub struct QmcOutput {
    /// Raw bytes of segment 0's `s001` scalar file (the legacy
    /// bitwise-comparison artifact).
    pub s001_bytes: Vec<u8>,
    /// QMCA result on segment 0's DMC series.
    pub qmca: QmcaResult,
    /// `(s001 bytes, QMCA result)` of restart segments `1..` (empty
    /// in the single-restart regime).
    pub extra: Vec<(Vec<u8>, QmcaResult)>,
}

/// Deterministic products of one DMC restart block, computed once
/// (physics is not the experiment's variable — the storage path is).
struct Block {
    /// The walker ensemble this block restarts from, serialized —
    /// block 0's is the VMC→DMC handoff, later blocks' are the
    /// mid-series checkpoints the previous block dropped.
    checkpoint_bytes: Vec<u8>,
    /// Memoized DMC rows for the untampered checkpoint.
    golden_rows: Vec<ScalarRow>,
}

/// Deterministic VMC products of one restart segment.
struct Segment {
    s000_text: String,
    /// The DMC series, one restart block at a time (exactly one block
    /// in the legacy regime).
    blocks: Vec<Block>,
}

/// The QMCPACK application.
pub struct QmcApp {
    config: QmcConfig,
    /// One set of golden VMC/DMC products per restart segment.
    segments: Vec<Segment>,
}

impl QmcApp {
    /// Build the app, running VMC and the golden DMC once per restart
    /// segment.
    pub fn new(mut config: QmcConfig) -> Self {
        config.restarts = config.restarts.max(1);
        config.dmc_blocks = config.dmc_blocks.max(1);
        let segments = (0..config.restarts)
            .map(|s| {
                // Segment 0 keeps the configured seed (the
                // single-restart regime stays byte-identical); later
                // segments shift it for independent trajectories.
                let vmc_cfg = VmcConfig {
                    seed: config.vmc.seed.wrapping_add(0x0D5C * s as u64),
                    ..config.vmc
                };
                let vmc = run_vmc(&config.wavefunction, &vmc_cfg);
                // Chain the DMC blocks: each restarts from the walker
                // ensemble its predecessor ended on, exactly like a
                // checkpointed production series.
                let mut start = vmc.walkers;
                let mut blocks = Vec::with_capacity(config.dmc_blocks);
                for b in 0..config.dmc_blocks {
                    let checkpoint_bytes = render_checkpoint(&start);
                    let dmc = run_dmc(&config.wavefunction, &start, &block_dmc_cfg(&config, b))
                        .expect("golden DMC must run");
                    start = dmc.final_walkers;
                    blocks.push(Block { checkpoint_bytes, golden_rows: dmc.rows });
                }
                Segment { s000_text: render_scalar(&vmc.rows), blocks }
            })
            .collect();
        QmcApp { config, segments }
    }

    /// Paper-defaults app.
    pub fn paper_default() -> Self {
        Self::new(QmcConfig::default())
    }

    /// Number of restart segments this app runs.
    pub fn restarts(&self) -> usize {
        self.config.restarts
    }

    /// Table II row.
    pub fn describe() -> (&'static str, &'static str, &'static str) {
        (
            "QMCPACK",
            "Quantum Chemistry",
            "Quantum Monte Carlo simulation for electronic structures of molecules",
        )
    }

    /// The golden DMC energy of segment 0 (for tests and reporting),
    /// computed over the whole series — all restart blocks in order.
    pub fn golden_energy(&self) -> f64 {
        let rows: Vec<ScalarRow> =
            self.segments[0].blocks.iter().flat_map(|b| b.golden_rows.iter().copied()).collect();
        analyze(&rows, &self.config.qmca).expect("golden analyzable").energy
    }

    /// Fault-target filter scoping injections to the walker checkpoint
    /// (`He.s000.config.dat`) — the VMC→DMC handoff where storage
    /// faults propagate into the physics. At the read site this is the
    /// restart channel: a corrupted checkpoint *read* re-derives the
    /// whole DMC series even though the stored bytes are pristine.
    pub fn checkpoint_filter() -> ffis_core::TargetFilter {
        ffis_core::TargetFilter::PathContains("config".into())
    }

    /// Fault-target filter scoping injections to the scalar series
    /// files (`He.s00*.scalar.dat`) — the QMCA analysis inputs.
    pub fn series_filter() -> ffis_core::TargetFilter {
        ffis_core::TargetFilter::PathContains(".scalar.dat".into())
    }

    fn block_rows_for(
        &self,
        s: usize,
        b: usize,
        checkpoint: &[u8],
    ) -> Result<Vec<ScalarRow>, String> {
        if checkpoint == self.segments[s].blocks[b].checkpoint_bytes.as_slice() {
            // Untampered checkpoint: the deterministic DMC trajectory
            // is already known (pure memoization).
            return Ok(self.segments[s].blocks[b].golden_rows.clone());
        }
        let walkers = crate::scalar::parse_checkpoint(checkpoint)?;
        // Defensive restart: drop unphysical walkers, abort when too
        // few survive.
        let physical: Vec<Walker> = walkers.iter().copied().filter(Walker::is_physical).collect();
        if (physical.len() as f64) < self.config.min_restart_fraction * walkers.len() as f64
            || physical.is_empty()
        {
            return Err(format!(
                "checkpoint restart failed: only {}/{} walkers physical",
                physical.len(),
                walkers.len()
            ));
        }
        let dmc = run_dmc(&self.config.wavefunction, &physical, &block_dmc_cfg(&self.config, b))
            .map_err(|e| e.to_string())?;
        Ok(dmc.rows)
    }

    /// The analyze pass of one DMC restart block: re-examine its
    /// restart checkpoint from storage and return the block's (possibly
    /// re-derived) scalar text. This single function is the body of
    /// the per-block analyze sub-step and the unit both
    /// `segment_analyze` and the whole `analyze` iterate, so the memo
    /// layer's stream-identity law holds by construction. Block 0 also
    /// validates the segment's VMC scalar (the only block that reads
    /// it), preserving the legacy read order config → s001 → s000 in
    /// the single-block regime.
    fn block_analyze(&self, fs: &dyn FileSystem, s: usize, b: usize) -> Result<Vec<u8>, String> {
        let r = self.config.restarts;
        // The restart checkpoint, re-examined from storage: an
        // untampered checkpoint means the on-disk block scalar (however
        // the fault may have mauled *it*) is the classified artifact; a
        // tampered checkpoint means DMC restarts from the stored
        // walkers — physicality checks, abort-on-too-few and all —
        // and the re-derived block is what a full execution would
        // have written.
        let checkpoint = fs.read_to_vec(&seg_block_config(s, b, r)).map_err(|e| e.to_string())?;
        let bytes = if checkpoint == self.segments[s].blocks[b].checkpoint_bytes {
            fs.read_to_vec(&seg_block_s001(s, b, r, self.config.dmc_blocks))
                .map_err(|e| e.to_string())?
        } else {
            render_scalar(&self.block_rows_for(s, b, &checkpoint)?).into_bytes()
        };
        if b == 0 {
            read_scalar(fs, &seg_s000(s, r), self.config.qmca.min_rows)?;
        }
        Ok(bytes)
    }

    /// QMCA over one segment's block scalar texts: every block must
    /// parse (headers and step indices restart per block, so blocks
    /// are parsed separately and their rows concatenated); the DMC
    /// energy over the whole series is the reported quantity. The
    /// returned bytes are the concatenated block texts — the bitwise
    /// classification artifact.
    fn segment_qmca(&self, texts: &[Vec<u8>]) -> Result<(Vec<u8>, QmcaResult), String> {
        let min_rows = self.config.qmca.min_rows;
        if texts.len() == 1 {
            // Single-block series: the legacy path, damage threshold
            // and all.
            let parsed =
                crate::scalar::parse_scalar(&String::from_utf8_lossy(&texts[0]), min_rows)?;
            let qmca = analyze(&parsed.rows, &self.config.qmca)?;
            return Ok((texts[0].clone(), qmca));
        }
        let mut rows = Vec::new();
        for t in texts {
            rows.extend(crate::scalar::parse_scalar(&String::from_utf8_lossy(t), 1)?.rows);
        }
        if rows.len() < min_rows {
            return Err(format!(
                "blocked series too damaged: {} parsable rows (< {})",
                rows.len(),
                min_rows
            ));
        }
        let qmca = analyze(&rows, &self.config.qmca)?;
        Ok((texts.concat(), qmca))
    }

    /// The whole analyze pass of one restart segment: every restart
    /// block in order, then QMCA over the assembled series.
    fn segment_analyze(
        &self,
        fs: &dyn FileSystem,
        s: usize,
    ) -> Result<(Vec<u8>, QmcaResult), String> {
        let texts = (0..self.config.dmc_blocks)
            .map(|b| self.block_analyze(fs, s, b))
            .collect::<Result<Vec<_>, _>>()?;
        self.segment_qmca(&texts)
    }
}

/// Serialize one restart segment's analysis as a memoizable
/// analyze-sub-step artifact (length-prefixed s001 bytes + the QMCA
/// statistics).
fn encode_segment(s001_bytes: &[u8], qmca: &QmcaResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(s001_bytes.len() + 32);
    out.extend_from_slice(&(s001_bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(s001_bytes);
    out.extend_from_slice(&qmca.energy.to_le_bytes());
    out.extend_from_slice(&qmca.error.to_le_bytes());
    out.extend_from_slice(&(qmca.rows_used as u64).to_le_bytes());
    out
}

/// Inverse of [`encode_segment`].
fn decode_segment(b: &[u8]) -> Result<(Vec<u8>, QmcaResult), String> {
    let err = || "malformed segment artifact".to_string();
    let len = u64::from_le_bytes(b.get(..8).ok_or_else(err)?.try_into().unwrap()) as usize;
    let s001_bytes = b.get(8..8 + len).ok_or_else(err)?.to_vec();
    let at = 8 + len;
    if b.len() != at + 24 {
        return Err(err());
    }
    let qmca = QmcaResult {
        energy: f64::from_le_bytes(b[at..at + 8].try_into().unwrap()),
        error: f64::from_le_bytes(b[at + 8..at + 16].try_into().unwrap()),
        rows_used: u64::from_le_bytes(b[at + 16..at + 24].try_into().unwrap()) as usize,
    };
    Ok((s001_bytes, qmca))
}

impl FaultApp for QmcApp {
    type Output = QmcOutput;

    fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
        fs.mkdir("/qmc", 0o755).map_err(|e| e.to_string())?;
        let r = self.config.restarts;

        for (s, seg) in self.segments.iter().enumerate() {
            // Series 000: VMC scalar.
            {
                let mut f =
                    ffis_vfs::BufFile::create(fs, &seg_s000(s, r)).map_err(|e| e.to_string())?;
                f.write_all(seg.s000_text.as_bytes()).map_err(|e| e.to_string())?;
                f.close().map_err(|e| e.to_string())?;
            }

            // Series 001, one restart block at a time: each block's
            // walker checkpoint (block 0's is the VMC→DMC handoff),
            // then its scalar rows, streamed from the memoized golden
            // trajectory. Write-stream data independence: produce
            // never derives bytes from a filesystem read-back — the
            // restart through the (possibly corrupted) on-disk
            // checkpoint is re-examined in [`FaultApp::analyze`],
            // which re-derives a block's DMC rows from the stored
            // walkers when they differ from the golden ones.
            for (b, blk) in seg.blocks.iter().enumerate() {
                fs.write_file_chunked(
                    &seg_block_config(s, b, r),
                    &blk.checkpoint_bytes,
                    ffis_vfs::BLOCK_SIZE,
                )
                .map_err(|e| e.to_string())?;
                write_scalar(
                    fs,
                    &seg_block_s001(s, b, r, self.config.dmc_blocks),
                    &blk.golden_rows,
                )?;
            }
        }
        fs.write_file(LOG, b"QMCPACK-lite: VMC+DMC complete\n").map_err(|e| e.to_string())
    }

    fn analyze(
        &self,
        fs: &dyn FileSystem,
        _golden: Option<&QmcOutput>,
    ) -> Result<QmcOutput, String> {
        // Segments in order — identical, read for read, to running the
        // per-segment sub-steps and assembling them.
        let (s001_bytes, qmca) = self.segment_analyze(fs, 0)?;
        let mut extra = Vec::with_capacity(self.config.restarts - 1);
        for s in 1..self.config.restarts {
            extra.push(self.segment_analyze(fs, s)?);
        }
        Ok(QmcOutput { s001_bytes, qmca, extra })
    }

    fn analyze_substeps(&self) -> Option<Vec<SubstepSpec>> {
        let (r, bc) = (self.config.restarts, self.config.dmc_blocks);
        if r == 1 && bc == 1 {
            return None;
        }
        if bc == 1 {
            // Segment-grained sub-steps: the legacy multi-restart
            // contract, names and artifact format unchanged (so memo
            // stores never see two formats under one key).
            return Some(
                (0..r)
                    .map(|s| {
                        // Everything segment_analyze may read; the run
                        // log has no consumer.
                        SubstepSpec::new(
                            seg_stem(s, r),
                            vec![seg_config(s, r), seg_s001(s, r), seg_s000(s, r)],
                        )
                    })
                    .collect(),
            );
        }
        // Block-grained sub-steps, indexed `s * dmc_blocks + b`: a
        // tampered mid-series checkpoint dirties one block's sub-step
        // and re-derives steps/dmc_blocks DMC steps, not the series.
        // Only block 0 reads the segment's VMC scalar.
        Some(
            (0..r)
                .flat_map(|s| {
                    (0..bc).map(move |b| {
                        let mut reads =
                            vec![seg_block_config(s, b, r), seg_block_s001(s, b, r, bc)];
                        if b == 0 {
                            reads.push(seg_s000(s, r));
                        }
                        SubstepSpec::new(format!("{}.b{:03}", seg_stem(s, r), b), reads)
                    })
                })
                .collect(),
        )
    }

    fn analyze_substep(
        &self,
        fs: &dyn FileSystem,
        index: usize,
        _golden: Option<&QmcOutput>,
    ) -> Result<Vec<u8>, String> {
        let (r, bc) = (self.config.restarts, self.config.dmc_blocks);
        if index >= r * bc {
            return Err(format!("no restart sub-step {}", index));
        }
        if bc == 1 {
            // Legacy artifact: length-prefixed s001 bytes + QMCA stats.
            let (s001_bytes, qmca) = self.segment_analyze(fs, index)?;
            return Ok(encode_segment(&s001_bytes, &qmca));
        }
        // Block artifact: the raw scalar text (QMCA runs at assembly,
        // where all of a segment's blocks are in hand).
        self.block_analyze(fs, index / bc, index % bc)
    }

    fn assemble(
        &self,
        artifacts: &[Vec<u8>],
        _golden: Option<&QmcOutput>,
    ) -> Result<QmcOutput, String> {
        let (r, bc) = (self.config.restarts, self.config.dmc_blocks);
        if artifacts.len() != r * bc {
            return Err(format!("expected {} sub-step artifacts, got {}", r * bc, artifacts.len()));
        }
        let mut segments = if bc == 1 {
            artifacts.iter().map(|a| decode_segment(a)).collect::<Result<Vec<_>, _>>()?
        } else {
            artifacts
                .chunks(bc)
                .map(|texts| self.segment_qmca(texts))
                .collect::<Result<Vec<_>, _>>()?
        };
        let extra = segments.split_off(1);
        let (s001_bytes, qmca) = segments.pop().unwrap();
        Ok(QmcOutput { s001_bytes, qmca, extra })
    }

    /// Produce streams the VMC/DMC products from memoized golden
    /// state and never reads through the filesystem — the VMC→DMC
    /// handoff is re-examined *from storage* inside
    /// [`FaultApp::analyze`] — so every read-site fault (checkpoint
    /// restarts included) is an analyze-phase fault.
    fn produce_read_count(&self) -> Option<u64> {
        Some(0)
    }

    fn classify(&self, golden: &QmcOutput, faulty: &QmcOutput) -> Outcome {
        // Segment 0 (the legacy artifact) first, then the extra
        // restarts in order: the first differing s001 series decides
        // via the paper's energy-window test on that segment.
        let (lo, hi) = self.config.sdc_window;
        let window = |e: f64| if e >= lo && e <= hi { Outcome::Sdc } else { Outcome::Detected };
        if golden.s001_bytes != faulty.s001_bytes {
            return window(faulty.qmca.energy);
        }
        for ((gb, _), (fb, fq)) in golden.extra.iter().zip(&faulty.extra) {
            if gb != fb {
                return window(fq.energy);
            }
        }
        if golden.extra.len() != faulty.extra.len() {
            return Outcome::Detected;
        }
        Outcome::Benign
    }

    fn name(&self) -> String {
        "QMC".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::MemFs;

    fn small_app() -> QmcApp {
        QmcApp::new(QmcConfig {
            vmc: VmcConfig { walkers: 64, warmup: 100, steps: 120, ..Default::default() },
            dmc: DmcConfig { target_walkers: 64, warmup: 0, steps: 200, ..Default::default() },
            qmca: QmcaConfig { equilibration_fraction: 0.2, min_rows: 20 },
            ..Default::default()
        })
    }

    #[test]
    fn golden_run_produces_all_files() {
        let app = small_app();
        let fs = MemFs::new();
        let out = app.run(&fs).unwrap();
        for p in [S000, CONFIG, S001, LOG] {
            assert!(fs.exists(p), "{} missing", p);
        }
        assert!(!out.s001_bytes.is_empty());
        assert!(out.qmca.energy < -2.5 && out.qmca.energy > -3.2);
    }

    #[test]
    fn paper_default_energy_in_sdc_window() {
        // The whole classification scheme hinges on the golden DMC
        // energy sitting inside [-2.91, -2.90] (exact: -2.90372).
        let app = QmcApp::paper_default();
        let e = app.golden_energy();
        assert!((-2.91..=-2.90).contains(&e), "golden DMC energy {} outside the paper window", e);
    }

    #[test]
    fn runs_are_bitwise_reproducible() {
        let app = small_app();
        let a = app.run(&MemFs::new()).unwrap();
        let b = app.run(&MemFs::new()).unwrap();
        assert_eq!(a.s001_bytes, b.s001_bytes);
        assert_eq!(app.classify(&a, &b), Outcome::Benign);
    }

    #[test]
    fn classify_uses_energy_window() {
        let app = small_app();
        let golden = app.run(&MemFs::new()).unwrap();
        let mut in_window = golden.clone();
        in_window.s001_bytes.push(b' ');
        in_window.qmca.energy = -2.905;
        assert_eq!(app.classify(&golden, &in_window), Outcome::Sdc);
        let mut out_of_window = golden.clone();
        out_of_window.s001_bytes.push(b' ');
        out_of_window.qmca.energy = -2.87;
        assert_eq!(app.classify(&golden, &out_of_window), Outcome::Detected);
        let mut way_off = golden.clone();
        way_off.s001_bytes.push(b' ');
        way_off.qmca.energy = -2.92;
        assert_eq!(app.classify(&golden, &way_off), Outcome::Detected);
    }

    #[test]
    fn corrupted_checkpoint_changes_trajectory_but_not_physics() {
        // Silent coordinate corruption (still physical) must produce a
        // *different* s001 whose energy is still in the window — the
        // SDC propagation path.
        use ffis_core::{ByteFaultInjector, ByteFlip, TargetFilter};
        use std::sync::Arc;

        let app = small_app();
        let golden = app.run(&MemFs::new()).unwrap();

        // Flip a low mantissa bit of walker coordinates (byte 18 of the
        // first checkpoint chunk: inside walker 0's r1[0]).
        let inj = Arc::new(ByteFaultInjector::new(
            TargetFilter::PathContains("config".into()),
            1,
            18,
            ByteFlip::Xor(0x10),
        ));
        let ffs = ffis_vfs::FfisFs::mount(Arc::new(MemFs::new()));
        ffs.attach(inj.clone());
        let faulty = app.run(&*ffs).unwrap();
        assert!(inj.record().is_some(), "fault must fire");
        assert_ne!(golden.s001_bytes, faulty.s001_bytes, "trajectory must change");
        // Self-correcting projector: energy lands near the golden one.
        assert!(
            (faulty.qmca.energy - golden.qmca.energy).abs() < 0.05,
            "{} vs {}",
            faulty.qmca.energy,
            golden.qmca.energy
        );
    }

    #[test]
    fn destroyed_checkpoint_is_a_crash() {
        use ffis_core::{ArmedInjector, FaultModel, FaultSignature, TargetFilter};
        use std::sync::Arc;

        let app = small_app();
        // Drop the checkpoint's first chunk: magic gone -> restart fails.
        let sig = FaultSignature {
            model: FaultModel::dropped_write(),
            primitive: ffis_vfs::Primitive::Write,
            target: TargetFilter::PathContains("config".into()),
        };
        let inj = Arc::new(ArmedInjector::new(sig, 1, 1));
        let ffs = ffis_vfs::FfisFs::mount(Arc::new(MemFs::new()));
        ffs.attach(inj);
        let r = app.run(&*ffs);
        assert!(r.is_err(), "dropped checkpoint head must abort the run");
    }

    #[test]
    fn describe_matches_table_ii() {
        let (name, domain, _) = QmcApp::describe();
        assert_eq!(name, "QMCPACK");
        assert_eq!(domain, "Quantum Chemistry");
    }

    #[test]
    fn single_restart_declares_no_substeps() {
        assert_eq!(seg_s000(0, 1), S000);
        assert_eq!(seg_config(0, 1), CONFIG);
        assert_eq!(seg_s001(0, 1), S001);
        assert!(small_app().analyze_substeps().is_none());
    }

    #[test]
    fn multi_restart_substeps_match_whole_analyze() {
        let app = QmcApp::new(QmcConfig {
            vmc: VmcConfig { walkers: 64, warmup: 100, steps: 120, ..Default::default() },
            dmc: DmcConfig { target_walkers: 64, warmup: 0, steps: 200, ..Default::default() },
            qmca: QmcaConfig { equilibration_fraction: 0.2, min_rows: 20 },
            restarts: 3,
            ..Default::default()
        });
        let specs = app.analyze_substeps().unwrap();
        assert_eq!(specs.len(), 3);
        assert!(specs[1].reads("/qmc/He.g001.s000.config.dat"));
        assert!(!specs[1].reads("/qmc/He.g000.s000.config.dat"));

        let fs = MemFs::new();
        app.produce(&fs).unwrap();
        for p in [
            "/qmc/He.g000.s000.scalar.dat",
            "/qmc/He.g002.s001.scalar.dat",
            "/qmc/He.g001.s000.config.dat",
            LOG,
        ] {
            assert!(fs.exists(p), "{} missing", p);
        }
        let whole = app.analyze(&fs, None).unwrap();
        assert_eq!(whole.extra.len(), 2);
        // Distinct seeds: the segments carry different trajectories.
        assert_ne!(whole.s001_bytes, whole.extra[0].0);

        let arts: Vec<Vec<u8>> =
            (0..3).map(|s| app.analyze_substep(&fs, s, None).unwrap()).collect();
        let asm = app.assemble(&arts, None).unwrap();
        assert_eq!(whole.s001_bytes, asm.s001_bytes);
        assert_eq!(whole.qmca.energy, asm.qmca.energy);
        for ((gb, gq), (ab, aq)) in whole.extra.iter().zip(&asm.extra) {
            assert_eq!(gb, ab);
            assert_eq!(gq.energy, aq.energy);
        }
        assert_eq!(app.classify(&whole, &asm), Outcome::Benign);
    }

    #[test]
    fn single_block_layout_is_byte_identical_to_legacy() {
        // dmc_blocks: 1 must not shift a single byte: same files, same
        // contents, no block-suffixed paths.
        let app = small_app();
        let fs = MemFs::new();
        app.produce(&fs).unwrap();
        assert!(fs.exists(CONFIG) && fs.exists(S001));
        assert!(!fs.exists("/qmc/He.s001.config.b001.dat"));
        assert!(!fs.exists("/qmc/He.s001.b000.scalar.dat"));
        assert_eq!(seg_block_config(0, 0, 1), CONFIG);
        assert_eq!(seg_block_s001(0, 0, 1, 1), S001);
    }

    #[test]
    fn blocked_dmc_substeps_match_whole_analyze() {
        let app = QmcApp::new(QmcConfig {
            vmc: VmcConfig { walkers: 64, warmup: 100, steps: 120, ..Default::default() },
            dmc: DmcConfig { target_walkers: 64, warmup: 0, steps: 200, ..Default::default() },
            qmca: QmcaConfig { equilibration_fraction: 0.2, min_rows: 20 },
            restarts: 2,
            dmc_blocks: 3,
            ..Default::default()
        });
        let specs = app.analyze_substeps().unwrap();
        assert_eq!(specs.len(), 6);
        // Block granularity: block 1's spec sees its own checkpoint
        // and scalar, not block 0's; only block 0 reads the VMC s000.
        assert!(specs[1].reads("/qmc/He.g000.s001.config.b001.dat"));
        assert!(specs[1].reads("/qmc/He.g000.s001.b001.scalar.dat"));
        assert!(!specs[1].reads("/qmc/He.g000.s000.config.dat"));
        assert!(!specs[1].reads("/qmc/He.g000.s000.scalar.dat"));
        assert!(specs[0].reads("/qmc/He.g000.s000.scalar.dat"));
        assert!(specs[3].reads("/qmc/He.g001.s000.config.dat"));

        let fs = MemFs::new();
        app.produce(&fs).unwrap();
        for p in [
            "/qmc/He.g000.s000.config.dat",
            "/qmc/He.g000.s001.config.b002.dat",
            "/qmc/He.g001.s001.b000.scalar.dat",
            "/qmc/He.g001.s001.b002.scalar.dat",
        ] {
            assert!(fs.exists(p), "{} missing", p);
        }
        let whole = app.analyze(&fs, None).unwrap();
        assert_eq!(whole.extra.len(), 1);

        let arts: Vec<Vec<u8>> =
            (0..6).map(|i| app.analyze_substep(&fs, i, None).unwrap()).collect();
        let asm = app.assemble(&arts, None).unwrap();
        assert_eq!(whole.s001_bytes, asm.s001_bytes);
        assert_eq!(whole.qmca.energy, asm.qmca.energy);
        assert_eq!(whole.qmca.rows_used, asm.qmca.rows_used);
        assert_eq!(whole.extra[0].0, asm.extra[0].0);
        assert_eq!(app.classify(&whole, &asm), Outcome::Benign);
    }

    #[test]
    fn tampered_block_checkpoint_rederives_only_that_block() {
        let app = QmcApp::new(QmcConfig {
            vmc: VmcConfig { walkers: 64, warmup: 100, steps: 120, ..Default::default() },
            dmc: DmcConfig { target_walkers: 64, warmup: 0, steps: 200, ..Default::default() },
            qmca: QmcaConfig { equilibration_fraction: 0.2, min_rows: 20 },
            dmc_blocks: 2,
            ..Default::default()
        });
        let fs = MemFs::new();
        app.produce(&fs).unwrap();
        let golden = app.analyze(&fs, None).unwrap();

        // Flip a walker-coordinate bit in block 1's mid-series
        // checkpoint (past the 16-byte header).
        let path = "/qmc/He.s001.config.b001.dat";
        let mut bytes = fs.read_to_vec(path).unwrap();
        bytes[18] ^= 0x10;
        fs.write_file(path, &bytes).unwrap();

        let faulty = app.analyze(&fs, None).unwrap();
        let b0_len = fs.read_to_vec("/qmc/He.s001.b000.scalar.dat").unwrap().len();
        // Block 0's prefix of the classified artifact is untouched;
        // block 1 re-derived from the tampered walkers and diverged.
        assert_eq!(golden.s001_bytes[..b0_len], faulty.s001_bytes[..b0_len]);
        assert_ne!(golden.s001_bytes[b0_len..], faulty.s001_bytes[b0_len..]);
        assert_ne!(app.classify(&golden, &faulty), Outcome::Benign);
    }

    #[test]
    fn multi_restart_classify_keys_on_first_differing_segment() {
        let app = QmcApp::new(QmcConfig {
            vmc: VmcConfig { walkers: 64, warmup: 100, steps: 120, ..Default::default() },
            dmc: DmcConfig { target_walkers: 64, warmup: 0, steps: 200, ..Default::default() },
            qmca: QmcaConfig { equilibration_fraction: 0.2, min_rows: 20 },
            restarts: 2,
            ..Default::default()
        });
        let golden = app.run(&MemFs::new()).unwrap();
        let mut faulty = golden.clone();
        faulty.extra[0].0.push(b' ');
        faulty.extra[0].1.energy = -2.905;
        assert_eq!(app.classify(&golden, &faulty), Outcome::Sdc);
        faulty.extra[0].1.energy = -2.8;
        assert_eq!(app.classify(&golden, &faulty), Outcome::Detected);
    }

    #[test]
    fn target_filters_address_the_right_artifacts() {
        let cp = QmcApp::checkpoint_filter();
        assert!(cp.matches(Some(CONFIG)));
        assert!(!cp.matches(Some(S000)));
        assert!(!cp.matches(Some(S001)));
        let series = QmcApp::series_filter();
        assert!(series.matches(Some(S000)));
        assert!(series.matches(Some(S001)));
        assert!(!series.matches(Some(CONFIG)));
        assert!(!series.matches(Some(LOG)));
    }
}
