//! Variational Monte Carlo (the `s000` series).
//!
//! QMCPACK's He example "first runs VMC to generate a set of walkers
//! and then performs DMC" (§IV-C.2). Metropolis sampling of |ψ|² with
//! single-particle Gaussian moves; emits one scalar row per step
//! (ensemble-averaged local energy) and the final walker population
//! that seeds the DMC series.

use ffis_core::Rng;

use crate::scalar::ScalarRow;
use crate::wavefunction::{TrialWavefunction, Walker};

/// VMC parameters.
#[derive(Debug, Clone, Copy)]
pub struct VmcConfig {
    /// Walkers in the ensemble.
    pub walkers: usize,
    /// Equilibration steps (not recorded).
    pub warmup: usize,
    /// Recorded steps (scalar rows).
    pub steps: usize,
    /// Gaussian move width (Bohr).
    pub step_size: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VmcConfig {
    fn default() -> Self {
        VmcConfig { walkers: 256, warmup: 300, steps: 600, step_size: 0.45, seed: 0x564D_4331 }
    }
}

/// VMC output.
#[derive(Debug, Clone)]
pub struct VmcResult {
    /// Per-step scalar rows.
    pub rows: Vec<ScalarRow>,
    /// Final walker ensemble (the DMC seed).
    pub walkers: Vec<Walker>,
    /// Overall move acceptance ratio.
    pub acceptance: f64,
}

/// Run VMC.
pub fn run_vmc(wf: &TrialWavefunction, cfg: &VmcConfig) -> VmcResult {
    let mut rng = Rng::seed_from(cfg.seed);
    // Initial ensemble: electrons on opposite sides of the nucleus.
    let mut walkers: Vec<Walker> = (0..cfg.walkers)
        .map(|_| loop {
            let w = Walker {
                r1: [
                    rng.normal_with(0.7, 0.3),
                    rng.normal_with(0.0, 0.3),
                    rng.normal_with(0.0, 0.3),
                ],
                r2: [
                    rng.normal_with(-0.7, 0.3),
                    rng.normal_with(0.0, 0.3),
                    rng.normal_with(0.0, 0.3),
                ],
            };
            if w.is_physical() {
                break w;
            }
        })
        .collect();
    let mut log_psis: Vec<f64> = walkers.iter().map(|w| wf.log_psi(w)).collect();

    let mut rows = Vec::with_capacity(cfg.steps);
    let mut accepted = 0u64;
    let mut attempted = 0u64;

    for step in 0..cfg.warmup + cfg.steps {
        let mut e_sum = 0.0;
        let mut e2_sum = 0.0;
        for (w, lp) in walkers.iter_mut().zip(log_psis.iter_mut()) {
            // Move each electron in turn (better acceptance than
            // whole-walker moves).
            for e in 0..2 {
                let mut cand = *w;
                let r = if e == 0 { &mut cand.r1 } else { &mut cand.r2 };
                for coord in r.iter_mut() {
                    *coord += cfg.step_size * rng.normal();
                }
                attempted += 1;
                if !cand.is_physical() {
                    continue;
                }
                let cand_lp = wf.log_psi(&cand);
                let ratio = (2.0 * (cand_lp - *lp)).exp();
                if rng.next_f64() < ratio {
                    *w = cand;
                    *lp = cand_lp;
                    accepted += 1;
                }
            }
            if step >= cfg.warmup {
                let el = wf.local_energy(w);
                e_sum += el;
                e2_sum += el * el;
            }
        }
        if step >= cfg.warmup {
            let n = cfg.walkers as f64;
            let mean = e_sum / n;
            let var = (e2_sum / n - mean * mean).max(0.0);
            rows.push(ScalarRow {
                index: (step - cfg.warmup) as u64,
                local_energy: mean,
                variance: var,
                weight: n,
                accept_ratio: accepted as f64 / attempted.max(1) as f64,
            });
        }
    }

    VmcResult { rows, walkers, acceptance: accepted as f64 / attempted.max(1) as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmc_energy_in_variational_range() {
        // The Padé–Jastrow energy for He sits around −2.87…−2.89 Ha —
        // above the exact −2.90372 (variational principle) and below
        // the bare-determinant −2.85.
        let wf = TrialWavefunction::default();
        let result = run_vmc(&wf, &VmcConfig::default());
        let n = result.rows.len() as f64;
        let mean: f64 = result.rows.iter().map(|r| r.local_energy).sum::<f64>() / n;
        assert!(mean > -2.92 && mean < -2.82, "VMC mean = {}", mean);
        // Variational principle: must lie above the exact energy
        // within statistical noise.
        assert!(mean > -2.9037 - 0.01, "below exact: {}", mean);
    }

    #[test]
    fn acceptance_is_reasonable() {
        let wf = TrialWavefunction::default();
        let result = run_vmc(&wf, &VmcConfig::default());
        assert!(
            result.acceptance > 0.4 && result.acceptance < 0.95,
            "acceptance = {}",
            result.acceptance
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let wf = TrialWavefunction::default();
        let cfg = VmcConfig { steps: 50, warmup: 50, ..Default::default() };
        let a = run_vmc(&wf, &cfg);
        let b = run_vmc(&wf, &cfg);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.local_energy, y.local_energy);
        }
        assert_eq!(a.walkers.len(), b.walkers.len());
        for (x, y) in a.walkers.iter().zip(&b.walkers) {
            assert_eq!(x.r1, y.r1);
        }
    }

    #[test]
    fn final_walkers_are_physical_and_counted() {
        let wf = TrialWavefunction::default();
        let cfg = VmcConfig { walkers: 64, steps: 50, warmup: 50, ..Default::default() };
        let result = run_vmc(&wf, &cfg);
        assert_eq!(result.walkers.len(), 64);
        assert!(result.walkers.iter().all(Walker::is_physical));
        assert_eq!(result.rows.len(), 50);
        assert_eq!(result.rows[0].index, 0);
        assert_eq!(result.rows[49].index, 49);
    }

    #[test]
    fn variance_is_positive_and_moderate() {
        // The Jastrow keeps the local-energy variance well under
        // 1 Ha² for helium.
        let wf = TrialWavefunction::default();
        let result = run_vmc(&wf, &VmcConfig::default());
        let mean_var: f64 =
            result.rows.iter().map(|r| r.variance).sum::<f64>() / result.rows.len() as f64;
        assert!(mean_var > 0.0 && mean_var < 1.0, "variance = {}", mean_var);
    }
}
