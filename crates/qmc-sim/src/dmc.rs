//! Diffusion Monte Carlo (the `s001` series).
//!
//! Importance-sampled DMC with drift–diffusion moves, Metropolis
//! accept/reject (reducing time-step bias), integer branching with a
//! population-control trial energy, starting from the walker ensemble
//! the VMC series wrote to disk. For two opposite-spin electrons there
//! is no fixed-node error, so DMC converges to the exact
//! non-relativistic helium ground state −2.90372 Ha (§IV-C.2) up to
//! time-step and population-control bias.

use ffis_core::Rng;

use crate::scalar::ScalarRow;
use crate::wavefunction::{TrialWavefunction, Walker};

/// DMC parameters.
#[derive(Debug, Clone, Copy)]
pub struct DmcConfig {
    /// Target walker population.
    pub target_walkers: usize,
    /// Equilibration steps (recorded but cut by QMCA).
    pub warmup: usize,
    /// Recorded steps.
    pub steps: usize,
    /// Imaginary-time step (Ha⁻¹).
    pub tau: f64,
    /// Population-control feedback strength.
    pub feedback: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DmcConfig {
    fn default() -> Self {
        DmcConfig {
            target_walkers: 256,
            // The VMC→DMC projection transient decays with timescale
            // ≈ 1/(gap·τ) ≈ 250 steps at τ = 0.005; the warmup must
            // cover several of those.
            warmup: 600,
            steps: 1200,
            // With the Umrigar drift limiter the residual time-step
            // bias at τ = 0.005 is < 1 mHa — comfortably inside the
            // paper's [-2.91, -2.90] window around −2.90372.
            tau: 0.005,
            feedback: 0.1,
            seed: 0x444D_4331,
        }
    }
}

/// DMC output.
#[derive(Debug, Clone)]
pub struct DmcResult {
    /// Per-step scalar rows (`weight` = population).
    pub rows: Vec<ScalarRow>,
    /// Population at the final step.
    pub final_population: usize,
    /// The walker ensemble at the final step — what a mid-series
    /// restart checkpoint stores, and what the next restart block of a
    /// blocked DMC series starts from.
    pub final_walkers: Vec<Walker>,
}

/// DMC failure: the walker ensemble collapsed or energies diverged —
/// QMCPACK aborts in this situation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmcError(pub String);

impl std::fmt::Display for DmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DMC failure: {}", self.0)
    }
}

impl std::error::Error for DmcError {}

/// Umrigar drift limiter: caps the drift step near wavefunction
/// singularities (nuclear/e–e cusps), where the bare ∇lnψ diverges and
/// a naive Euler step overshoots, producing a spurious negative
/// time-step bias. `v̄ = v · (−1 + √(1 + 2v²τ)) / (v²τ)`.
fn limited_drift(v: [f64; 3], tau: f64) -> [f64; 3] {
    let v2: f64 = v.iter().map(|x| x * x).sum();
    if v2 < 1e-12 {
        return v;
    }
    let f = ((1.0 + 2.0 * v2 * tau).sqrt() - 1.0) / (v2 * tau);
    [v[0] * f, v[1] * f, v[2] * f]
}

fn drift_move(wf: &TrialWavefunction, w: &Walker, tau: f64, rng: &mut Rng) -> (Walker, f64) {
    // Move both electrons with limited drift + diffusion; returns the
    // log of the forward Green-function exponent needed by the
    // Metropolis correction.
    let (g1, g2) = wf.grad_log_psi(w);
    let (d1, d2) = (limited_drift(g1, tau), limited_drift(g2, tau));
    let sq = tau.sqrt();
    let mut cand = *w;
    for k in 0..3 {
        cand.r1[k] += tau * d1[k] + sq * rng.normal();
        cand.r2[k] += tau * d2[k] + sq * rng.normal();
    }
    // log G(w -> cand) = -|cand - w - tau*drift(w)|^2 / (2 tau) (up to const)
    let mut fwd = 0.0;
    for k in 0..3 {
        let e1 = cand.r1[k] - w.r1[k] - tau * d1[k];
        let e2 = cand.r2[k] - w.r2[k] - tau * d2[k];
        fwd += e1 * e1 + e2 * e2;
    }
    (cand, -fwd / (2.0 * tau))
}

fn log_green_reverse(wf: &TrialWavefunction, from: &Walker, to: &Walker, tau: f64) -> f64 {
    let (g1, g2) = wf.grad_log_psi(from);
    let (d1, d2) = (limited_drift(g1, tau), limited_drift(g2, tau));
    let mut rev = 0.0;
    for k in 0..3 {
        let e1 = to.r1[k] - from.r1[k] - tau * d1[k];
        let e2 = to.r2[k] - from.r2[k] - tau * d2[k];
        rev += e1 * e1 + e2 * e2;
    }
    -rev / (2.0 * tau)
}

/// Run DMC from an initial ensemble (normally the VMC checkpoint).
pub fn run_dmc(
    wf: &TrialWavefunction,
    initial: &[Walker],
    cfg: &DmcConfig,
) -> Result<DmcResult, DmcError> {
    if initial.is_empty() {
        return Err(DmcError("empty initial walker ensemble".into()));
    }
    if !initial.iter().all(Walker::is_physical) {
        return Err(DmcError("unphysical walker coordinates in checkpoint".into()));
    }
    let mut rng = Rng::seed_from(cfg.seed);
    let mut walkers: Vec<(Walker, f64, f64)> =
        initial.iter().map(|w| (*w, wf.log_psi(w), wf.local_energy(w))).collect();

    // Trial energy initialised from the ensemble average.
    let mut e_trial = walkers.iter().map(|&(_, _, e)| e).sum::<f64>() / walkers.len() as f64;
    let mut e_running = e_trial;
    let mut rows = Vec::with_capacity(cfg.steps);

    for step in 0..cfg.warmup + cfg.steps {
        let mut next: Vec<(Walker, f64, f64)> = Vec::with_capacity(walkers.len() + 16);
        let mut e_sum = 0.0;
        let mut e2_sum = 0.0;
        let mut n_used = 0.0;

        for &(w, lp, el) in &walkers {
            let (cand, log_fwd) = drift_move(wf, &w, cfg.tau, &mut rng);
            let (new_w, new_lp, new_el) = if cand.is_physical() {
                let cand_lp = wf.log_psi(&cand);
                let log_rev = log_green_reverse(wf, &cand, &w, cfg.tau);
                let log_ratio = 2.0 * (cand_lp - lp) + log_rev - log_fwd;
                if rng.next_f64().ln() < log_ratio {
                    let cel = wf.local_energy(&cand);
                    (cand, cand_lp, cel)
                } else {
                    (w, lp, el)
                }
            } else {
                (w, lp, el)
            };

            // Branching weight from the symmetrized local energy.
            let e_avg = 0.5 * (el + new_el);
            let weight = (-cfg.tau * (e_avg - e_trial)).exp();
            if !weight.is_finite() {
                return Err(DmcError(format!("divergent branching weight at step {}", step)));
            }
            let copies = (weight + rng.next_f64()).floor() as i64;
            let copies = copies.clamp(0, 3) as usize;
            for _ in 0..copies {
                next.push((new_w, new_lp, new_el));
            }
            e_sum += weight * new_el;
            e2_sum += weight * new_el * new_el;
            n_used += weight;
        }

        if next.is_empty() || next.len() > cfg.target_walkers * 16 {
            return Err(DmcError(format!(
                "population collapsed/exploded to {} at step {}",
                next.len(),
                step
            )));
        }
        walkers = next;

        let mean = e_sum / n_used;
        if !mean.is_finite() {
            return Err(DmcError(format!("non-finite energy estimate at step {}", step)));
        }
        // Population control: steer the trial energy toward the
        // running estimate, corrected by the population deviation.
        e_running = 0.99 * e_running + 0.01 * mean;
        e_trial =
            e_running - cfg.feedback * (walkers.len() as f64 / cfg.target_walkers as f64).ln();

        if step >= cfg.warmup {
            let var = (e2_sum / n_used - mean * mean).max(0.0);
            rows.push(ScalarRow {
                index: (step - cfg.warmup) as u64,
                local_energy: mean,
                variance: var,
                weight: walkers.len() as f64,
                accept_ratio: 1.0,
            });
        }
    }

    let final_walkers = walkers.iter().map(|&(w, _, _)| w).collect();
    Ok(DmcResult { rows, final_population: walkers.len(), final_walkers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmc::{run_vmc, VmcConfig};

    fn seed_walkers(n: usize) -> Vec<Walker> {
        let wf = TrialWavefunction::default();
        let cfg = VmcConfig { walkers: n, warmup: 200, steps: 10, ..Default::default() };
        run_vmc(&wf, &cfg).walkers
    }

    #[test]
    fn dmc_reproduces_exact_helium_energy() {
        // §IV-C.2: "DMC is supposed to reproduce the exact
        // non-relativistic ground state energy (-2.90372 Hartree)".
        let wf = TrialWavefunction::default();
        let init = seed_walkers(256);
        let result = run_dmc(&wf, &init, &DmcConfig::default()).unwrap();
        let post: Vec<f64> = result.rows.iter().map(|r| r.local_energy).collect();
        let mean: f64 = post.iter().sum::<f64>() / post.len() as f64;
        assert!(
            (mean + 2.90372).abs() < 0.006,
            "DMC energy {} should be within ~6 mHa of -2.90372",
            mean
        );
        // And inside the paper's SDC window.
        assert!((-2.91..=-2.90).contains(&mean), "outside the paper's window: {}", mean);
    }

    #[test]
    fn dmc_below_vmc_energy() {
        // Projection can only lower the variational energy.
        let wf = TrialWavefunction::default();
        let vmc = run_vmc(&wf, &VmcConfig::default());
        let vmc_mean: f64 =
            vmc.rows.iter().map(|r| r.local_energy).sum::<f64>() / vmc.rows.len() as f64;
        let dmc = run_dmc(&wf, &vmc.walkers, &DmcConfig::default()).unwrap();
        let dmc_mean: f64 =
            dmc.rows.iter().map(|r| r.local_energy).sum::<f64>() / dmc.rows.len() as f64;
        assert!(dmc_mean < vmc_mean, "DMC {} !< VMC {}", dmc_mean, vmc_mean);
    }

    #[test]
    fn population_stays_near_target() {
        let wf = TrialWavefunction::default();
        let init = seed_walkers(128);
        let cfg = DmcConfig { target_walkers: 128, steps: 300, warmup: 100, ..Default::default() };
        let result = run_dmc(&wf, &init, &cfg).unwrap();
        for r in &result.rows {
            assert!(
                r.weight > 32.0 && r.weight < 512.0,
                "population {} drifted from target 128",
                r.weight
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let wf = TrialWavefunction::default();
        let init = seed_walkers(64);
        let cfg = DmcConfig { target_walkers: 64, steps: 50, warmup: 20, ..Default::default() };
        let a = run_dmc(&wf, &init, &cfg).unwrap();
        let b = run_dmc(&wf, &init, &cfg).unwrap();
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.local_energy, y.local_energy);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn corrupted_checkpoints_are_rejected() {
        let wf = TrialWavefunction::default();
        assert!(run_dmc(&wf, &[], &DmcConfig::default()).is_err());
        let bad = vec![Walker { r1: [f64::NAN, 0.0, 0.0], r2: [1.0, 0.0, 0.0] }];
        assert!(run_dmc(&wf, &bad, &DmcConfig::default()).is_err());
        let coincident = vec![Walker { r1: [0.0; 3], r2: [0.0; 3] }];
        assert!(run_dmc(&wf, &coincident, &DmcConfig::default()).is_err());
    }

    #[test]
    fn perturbed_but_physical_checkpoint_still_converges() {
        // The SDC mechanism: a silently corrupted (but physical)
        // checkpoint changes the trajectory, yet DMC self-corrects to
        // the same ground-state energy — a different file with an
        // in-window energy.
        let wf = TrialWavefunction::default();
        let mut init = seed_walkers(256);
        for w in init.iter_mut().take(64) {
            w.r1[0] += 0.37; // displaced ensemble
        }
        let result = run_dmc(&wf, &init, &DmcConfig::default()).unwrap();
        let post: Vec<f64> = result.rows.iter().map(|r| r.local_energy).collect();
        let mean: f64 = post.iter().sum::<f64>() / post.len() as f64;
        assert!((mean + 2.90372).abs() < 0.015, "perturbed DMC energy {}", mean);
    }
}
