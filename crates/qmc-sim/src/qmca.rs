//! QMCA-style energy analysis.
//!
//! "We then use the QMCA tool in QMCPACK to obtain the total energies
//! and related quantities" (§IV-C.2). QMCA discards an equilibration
//! prefix and reports the mean local energy with a blocking
//! (autocorrelation-aware) error bar.

use ffis_core::stats::blocking_error;

use crate::scalar::ScalarRow;

/// Analysis parameters.
#[derive(Debug, Clone, Copy)]
pub struct QmcaConfig {
    /// Fraction of rows discarded as equilibration.
    pub equilibration_fraction: f64,
    /// Minimum post-cut rows for a valid estimate.
    pub min_rows: usize,
}

impl Default for QmcaConfig {
    fn default() -> Self {
        QmcaConfig { equilibration_fraction: 0.2, min_rows: 50 }
    }
}

/// QMCA result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QmcaResult {
    /// Mean local energy (Ha).
    pub energy: f64,
    /// Blocking error estimate.
    pub error: f64,
    /// Rows used (post-equilibration).
    pub rows_used: usize,
}

/// Analyze a scalar series.
pub fn analyze(rows: &[ScalarRow], cfg: &QmcaConfig) -> Result<QmcaResult, String> {
    let cut = (rows.len() as f64 * cfg.equilibration_fraction) as usize;
    let post = &rows[cut.min(rows.len())..];
    if post.len() < cfg.min_rows {
        return Err(format!("too few post-equilibration rows: {} < {}", post.len(), cfg.min_rows));
    }
    let series: Vec<f64> = post.iter().map(|r| r.local_energy).collect();
    let (energy, error) = blocking_error(&series);
    if !energy.is_finite() {
        return Err("non-finite energy estimate".into());
    }
    Ok(QmcaResult { energy, error, rows_used: post.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_with(values: &[f64]) -> Vec<ScalarRow> {
        values
            .iter()
            .enumerate()
            .map(|(i, &e)| ScalarRow {
                index: i as u64,
                local_energy: e,
                variance: 0.1,
                weight: 256.0,
                accept_ratio: 1.0,
            })
            .collect()
    }

    #[test]
    fn mean_of_stationary_series() {
        let rows = rows_with(&vec![-2.903; 500]);
        let r = analyze(&rows, &QmcaConfig::default()).unwrap();
        assert!((r.energy + 2.903).abs() < 1e-12);
        assert_eq!(r.rows_used, 400);
        assert!(r.error.abs() < 1e-12);
    }

    #[test]
    fn equilibration_prefix_is_cut() {
        // First 20% biased high; the cut must remove it.
        let mut vals = vec![-2.0; 100];
        vals.extend(vec![-2.9; 400]);
        let r = analyze(&rows_with(&vals), &QmcaConfig::default()).unwrap();
        assert!((r.energy + 2.9).abs() < 1e-9, "energy = {}", r.energy);
    }

    #[test]
    fn too_few_rows_is_error() {
        let rows = rows_with(&vec![-2.9; 40]);
        assert!(analyze(&rows, &QmcaConfig::default()).is_err());
        assert!(analyze(&[], &QmcaConfig::default()).is_err());
    }

    #[test]
    fn error_bar_reflects_noise() {
        let mut rng = ffis_core::Rng::seed_from(5);
        let vals: Vec<f64> = (0..1024).map(|_| -2.9 + 0.02 * rng.normal()).collect();
        let r = analyze(&rows_with(&vals), &QmcaConfig::default()).unwrap();
        assert!(r.error > 1e-4 && r.error < 5e-3, "error = {}", r.error);
        assert!((r.energy + 2.9).abs() < 5.0 * r.error);
    }

    #[test]
    fn nan_energy_is_error() {
        let vals = vec![f64::NAN; 200];
        assert!(analyze(&rows_with(&vals), &QmcaConfig::default()).is_err());
    }
}
