//! Outcome taxonomy and tallies (paper §II "Application" failures).
//!
//! "A failure of an application refers to [the] scenario that the
//! outcome of the application differs from the expected: the
//! application either terminates before it finishes (i.e., crash), or
//! it suffers from data corruption. If the application is able to
//! identify the errors, this failure is categorized as detected,
//! otherwise such data corruption becomes silent data corruption
//! (SDC)."

use crate::stats::{wilson, Proportion};

/// Outcome of one fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// Output bitwise identical to the golden run.
    Benign,
    /// Output differs and the application (or its post-analysis) can
    /// tell: exceptions, missing files, out-of-range results.
    Detected,
    /// Output differs silently — silent data corruption.
    Sdc,
    /// Application terminated before finishing (errors, panics,
    /// unjustified file-format fields).
    Crash,
}

/// All outcomes in reporting order.
pub const OUTCOMES: [Outcome; 4] =
    [Outcome::Benign, Outcome::Detected, Outcome::Sdc, Outcome::Crash];

impl Outcome {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Benign => "Benign",
            Outcome::Detected => "Detected",
            Outcome::Sdc => "SDC",
            Outcome::Crash => "Crash",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How an application exposes itself to the campaign runner.
///
/// `run` executes the *whole* workload — data production through the
/// filesystem under test, then post-analysis — and returns the
/// artifacts classification needs. `classify` applies the paper's
/// per-application rules (§IV-C) to a faulty output given the golden
/// one. A run returning `Err` is the crash outcome.
pub trait FaultApp: Sync {
    /// Everything classification needs (output file bytes, analysis
    /// results, ...). `Sync` because the golden output is shared
    /// across the campaign's worker threads.
    type Output: Send + Sync;

    /// Execute the workload on `fs`.
    fn run(&self, fs: &dyn ffis_vfs::FileSystem) -> Result<Self::Output, String>;

    /// Optional fast verification phase for replay-based campaigns.
    ///
    /// Given a filesystem that *already contains* the workload's
    /// (possibly fault-corrupted) output files, execute only the
    /// read-back / post-analysis half of [`FaultApp::run`] and return
    /// the classification artifacts. The write half is unnecessary:
    /// the golden-trace replay engine has rebuilt the files at memcpy
    /// speed, with the armed injector corrupting exactly the targeted
    /// operation.
    ///
    /// Returning `None` (the default) declares that this app has no
    /// separable verify phase; replay fast paths then fall back to a
    /// full [`FaultApp::run`] per injection. Implementations must
    /// satisfy two laws:
    ///
    /// * **Golden identity** — `verify` on an uncorrupted snapshot of
    ///   a golden run must classify [`Outcome::Benign`] against that
    ///   run's output. The drivers check this once per scan/campaign
    ///   and refuse the fast path if it fails.
    /// * **Write-stream data independence** — the byte content of the
    ///   `run` phase's writes must not depend on data read back
    ///   *through the filesystem* earlier in the same run. Replay
    ///   re-issues the golden run's payloads verbatim, so a workload
    ///   that reads a (possibly corrupted) file mid-run and derives
    ///   later writes from it would replay golden-derived bytes where
    ///   a real rerun would write fault-derived ones. This cannot be
    ///   detected by the runtime self-checks (the divergence only
    ///   appears under injection) — do not implement `verify` for
    ///   such a workload. Read-back confined to the verify phase
    ///   itself (the common write-then-analyze shape) is always safe.
    fn verify(
        &self,
        _fs: &dyn ffis_vfs::FileSystem,
        _golden: &Self::Output,
    ) -> Option<Result<Self::Output, String>> {
        None
    }

    /// Apply the application's outcome-classification rules.
    fn classify(&self, golden: &Self::Output, faulty: &Self::Output) -> Outcome;

    /// Short name for report rows ("NYX", "QMC", "MT1", ...).
    fn name(&self) -> String;
}

/// Shared replay-gate predicate: does the app's [`FaultApp::verify`]
/// phase, run against `fs`, reproduce the golden classification?
/// Returns `false` when the app has no verify phase, verify errors, or
/// the classification is anything but [`Outcome::Benign`]. Both the
/// campaign and the metadata-scan fast paths use this for the
/// golden-identity probe *and* the uninjected replay self-check, so
/// the engagement rules cannot drift apart.
pub(crate) fn verify_matches_golden<A: FaultApp + ?Sized>(
    app: &A,
    fs: &dyn ffis_vfs::FileSystem,
    golden: &A::Output,
) -> bool {
    matches!(
        app.verify(fs, golden),
        Some(Ok(out)) if app.classify(golden, &out) == Outcome::Benign
    )
}

/// Aggregated outcome counts for a campaign, with Wilson 95% CIs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// Benign count.
    pub benign: u64,
    /// Detected count.
    pub detected: u64,
    /// SDC count.
    pub sdc: u64,
    /// Crash count.
    pub crash: u64,
    /// Runs where the armed fault never fired (profile/run divergence;
    /// should be zero in a healthy campaign).
    pub no_fire: u64,
}

impl OutcomeTally {
    /// Empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one outcome.
    pub fn record(&mut self, o: Outcome) {
        match o {
            Outcome::Benign => self.benign += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Crash => self.crash += 1,
        }
    }

    /// Count for one outcome.
    pub fn count(&self, o: Outcome) -> u64 {
        match o {
            Outcome::Benign => self.benign,
            Outcome::Detected => self.detected,
            Outcome::Sdc => self.sdc,
            Outcome::Crash => self.crash,
        }
    }

    /// Total classified runs (excludes `no_fire`).
    pub fn total(&self) -> u64 {
        self.benign + self.detected + self.sdc + self.crash
    }

    /// Proportion (with CI) for one outcome.
    pub fn proportion(&self, o: Outcome) -> Proportion {
        wilson(self.count(o), self.total())
    }

    /// Rate in percent.
    pub fn rate_pct(&self, o: Outcome) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.count(o) as f64 / self.total() as f64 * 100.0
        }
    }

    /// Merge another tally.
    pub fn merge(&mut self, other: &OutcomeTally) {
        self.benign += other.benign;
        self.detected += other.detected;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.no_fire += other.no_fire;
    }

    /// One-line summary: `benign 91.1% | detected 8.1% | SDC 0.8% | crash 0.0%`.
    pub fn summary(&self) -> String {
        format!(
            "benign {:5.1}% | detected {:5.1}% | SDC {:5.1}% | crash {:5.1}% (n={})",
            self.rate_pct(Outcome::Benign),
            self.rate_pct(Outcome::Detected),
            self.rate_pct(Outcome::Sdc),
            self.rate_pct(Outcome::Crash),
            self.total()
        )
    }
}

impl std::fmt::Display for OutcomeTally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut t = OutcomeTally::new();
        t.record(Outcome::Benign);
        t.record(Outcome::Benign);
        t.record(Outcome::Sdc);
        t.record(Outcome::Detected);
        t.record(Outcome::Crash);
        assert_eq!(t.count(Outcome::Benign), 2);
        assert_eq!(t.count(Outcome::Sdc), 1);
        assert_eq!(t.total(), 5);
        assert!((t.rate_pct(Outcome::Benign) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn proportion_has_interval() {
        let mut t = OutcomeTally::new();
        for _ in 0..911 {
            t.record(Outcome::Benign);
        }
        for _ in 0..81 {
            t.record(Outcome::Detected);
        }
        for _ in 0..8 {
            t.record(Outcome::Sdc);
        }
        let p = t.proportion(Outcome::Benign);
        assert!((p.p - 0.911).abs() < 1e-9);
        assert!(p.lo < 0.911 && p.hi > 0.911);
        // Paper's claim: ~1–2% error bars at n = 1000.
        assert!(p.error_bar_pct() < 2.5);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = OutcomeTally { benign: 1, detected: 2, sdc: 3, crash: 4, no_fire: 5 };
        let b = OutcomeTally { benign: 10, detected: 20, sdc: 30, crash: 40, no_fire: 50 };
        a.merge(&b);
        assert_eq!(a, OutcomeTally { benign: 11, detected: 22, sdc: 33, crash: 44, no_fire: 55 });
    }

    #[test]
    fn summary_contains_all_classes() {
        let t = OutcomeTally { benign: 1, detected: 1, sdc: 1, crash: 1, no_fire: 0 };
        let s = t.summary();
        for needle in ["benign", "detected", "SDC", "crash", "25.0"] {
            assert!(s.contains(needle), "{} missing from {}", needle, s);
        }
    }

    #[test]
    fn outcome_names() {
        assert_eq!(Outcome::Sdc.name(), "SDC");
        assert_eq!(OUTCOMES.len(), 4);
        assert_eq!(Outcome::Benign.to_string(), "Benign");
    }

    #[test]
    fn empty_tally_rates_are_zero() {
        let t = OutcomeTally::new();
        assert_eq!(t.total(), 0);
        assert_eq!(t.rate_pct(Outcome::Sdc), 0.0);
        let p = t.proportion(Outcome::Sdc);
        assert_eq!((p.lo, p.hi), (0.0, 0.0));
    }
}
