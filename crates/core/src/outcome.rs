//! Outcome taxonomy and tallies (paper §II "Application" failures).
//!
//! "A failure of an application refers to \[the\] scenario that the
//! outcome of the application differs from the expected: the
//! application either terminates before it finishes (i.e., crash), or
//! it suffers from data corruption. If the application is able to
//! identify the errors, this failure is categorized as detected,
//! otherwise such data corruption becomes silent data corruption
//! (SDC)."

use crate::stats::{wilson, Proportion};

/// Outcome of one fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// Output bitwise identical to the golden run.
    Benign,
    /// Output differs and the application (or its post-analysis) can
    /// tell: exceptions, missing files, out-of-range results.
    Detected,
    /// Output differs silently — silent data corruption.
    Sdc,
    /// Application terminated before finishing (errors, panics,
    /// unjustified file-format fields).
    Crash,
}

/// All outcomes in reporting order.
pub const OUTCOMES: [Outcome; 4] =
    [Outcome::Benign, Outcome::Detected, Outcome::Sdc, Outcome::Crash];

impl Outcome {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Benign => "Benign",
            Outcome::Detected => "Detected",
            Outcome::Sdc => "SDC",
            Outcome::Crash => "Crash",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How an application exposes itself to the campaign runner — the
/// two-phase workload contract.
///
/// Every workload in the paper's methodology has the same shape: a
/// **produce** phase that writes output files through the filesystem
/// under test, and an **analyze** phase that reads them back and
/// derives the artifacts classification needs (§IV-C). Splitting the
/// contract along that seam makes every application replay-capable by
/// construction: the golden-trace engine rebuilds produce's filesystem
/// state at memcpy speed (with the armed injector corrupting exactly
/// the targeted operation) and then runs only `analyze` — no
/// application logic is re-executed for the fault-free prefix.
///
/// `classify` applies the paper's per-application rules to a faulty
/// output given the golden one. A phase returning `Err` (or panicking)
/// is the crash outcome.
///
/// ## Laws
///
/// * **Write-stream data independence** (`produce`) — the byte content
///   of produce's writes must not depend on data read back *through
///   the filesystem* earlier in the same run. Replay re-issues the
///   golden run's payloads verbatim, so a produce phase that read a
///   (possibly corrupted) file mid-run and derived later writes from
///   it would replay golden-derived bytes where a real rerun writes
///   fault-derived ones. Workloads with on-disk handoffs (QMCPACK's
///   walker checkpoint, Montage's stage pipeline) write golden-derived
///   bytes in `produce` and re-derive the dependent artifacts from the
///   on-disk (possibly corrupted) inputs inside `analyze`.
/// * **Read-only analyze** — `analyze` must not mutate `fs`. The
///   campaign driver verifies this on the golden run (the recorded
///   op stream must not grow during analyze) and falls back to full
///   reruns if it does.
/// * **Golden identity** — `analyze` on an uncorrupted snapshot of a
///   golden run must classify [`Outcome::Benign`] against that run's
///   output. The drivers check this once per scan/campaign and refuse
///   the fast path if it fails.
///
/// ## Read-site campaigns
///
/// Read-site fault signatures ([`crate::FaultSignature::on_read`])
/// corrupt the data a read *returns* while the on-device bytes stay
/// pristine, so they exercise `analyze`'s (and any produce-phase)
/// read-back paths rather than the stored artifacts. Eligible-read
/// instance numbering spans the whole run — produce's reads and
/// analyze's reads count through the same `FFIS_read` counter,
/// exactly as in the golden profiling run — and the phase seam in
/// that instance space decides the execution strategy:
///
/// * **analyze-phase targets** skip produce entirely: the driver
///   forks the golden post-produce filesystem, pre-seeds the fresh
///   mount's counters with the golden produce-phase counts, and runs
///   only `analyze` live with the fault armed
///   ([`crate::ExecutionMode::AnalyzeOnly`]) — byte-equivalent to a
///   full rerun because read faults never touch device state and
///   produce's writes are data-independent by law;
/// * **produce-phase targets** stay on full produce+analyze reruns
///   ([`crate::ReplayFallback::ProduceReadFault`]): the fault fires
///   while the application is still writing, and no checkpoint of the
///   fault-free run can model the control flow downstream of the
///   corrupted transfer.
///
/// The golden run's read ledger ([`ffis_vfs::ReadLedger`]) measures
/// the seam; [`FaultApp::produce_read_count`] lets an application
/// *declare* it, and the drivers cross-check declaration against
/// measurement before trusting the fast path.
///
/// ## Analyze sub-steps (incremental analyze)
///
/// Multi-file workloads (several mosaic tiles, plotfiles, checkpoint
/// restarts) may additionally split `analyze` into declared
/// **sub-steps** ([`FaultApp::analyze_substeps`]), each reading a
/// declared file set and emitting an opaque serialized artifact
/// ([`FaultApp::analyze_substep`]); [`FaultApp::assemble`] folds the
/// artifacts into the final output. The contract is that running the
/// sub-steps in order and assembling them is *the same computation*
/// as [`FaultApp::analyze`] — the campaign driver validates this on
/// the golden run (engine law 8: memoized analyze == full analyze,
/// byte for byte) and memoizes per-sub-step artifacts keyed on the
/// [`ffis_vfs::ReadLedger`] fingerprints of what each sub-step read,
/// so a fault injection re-computes only the sub-steps whose inputs
/// it can reach (the dirty cascade). Apps that leave
/// [`FaultApp::analyze_substeps`] at the `None` default keep
/// whole-analyze behavior, with the fallback reason recorded.
///
/// Sub-step laws (checked on the golden run, fallback on violation):
///
/// * **Input soundness** — a sub-step reads only paths in its
///   declared input set; otherwise a fault in an undeclared file
///   could dirty a sub-step the cascade marks clean.
/// * **Stream identity** — the concatenated sub-step read streams
///   equal the golden `analyze` read stream (same paths, same
///   fingerprints, in order), so eligible-read instance numbering is
///   preserved when a driver skips clean sub-steps.
/// * **Assembly identity** — assembling the golden artifacts
///   classifies [`Outcome::Benign`] against the golden output.
pub trait FaultApp: Sync {
    /// Everything classification needs (output file bytes, analysis
    /// results, ...). `Sync` because the golden output is shared
    /// across the campaign's worker threads.
    type Output: Send + Sync;

    /// Phase 1 — write the workload's output files through `fs`.
    ///
    /// Subject to the write-stream data-independence law (see the
    /// trait docs): produce may create directories and stream bytes,
    /// but must not derive written bytes from data it read back
    /// through `fs` in the same run.
    fn produce(&self, fs: &dyn ffis_vfs::FileSystem) -> Result<(), String>;

    /// Phase 2 — read the (possibly fault-corrupted) output files back
    /// from `fs` and return the classification artifacts.
    ///
    /// `golden` is `None` during the reference (golden) run and
    /// `Some` during injection runs; it is an optimization hint — an
    /// implementation may use it to skip recomputation when read-back
    /// state matches the golden run — and must return equivalent
    /// artifacts either way. Must not mutate `fs`.
    fn analyze(
        &self,
        fs: &dyn ffis_vfs::FileSystem,
        golden: Option<&Self::Output>,
    ) -> Result<Self::Output, String>;

    /// Execute the whole workload: [`FaultApp::produce`] then
    /// [`FaultApp::analyze`]. Provided; drivers are free to call the
    /// phases separately, so overriding this with anything other than
    /// produce-then-analyze violates the contract.
    fn run(&self, fs: &dyn ffis_vfs::FileSystem) -> Result<Self::Output, String> {
        self.produce(fs)?;
        self.analyze(fs, None)
    }

    /// The number of `FFIS_read` calls this application's
    /// [`FaultApp::produce`] phase issues — the **phase-boundary read
    /// count** of the two-phase contract.
    ///
    /// `Some(0)` asserts that produce performs no read-back at all
    /// (true of every paper workload in this workspace: their write
    /// streams are data-independent by law, and their inter-stage
    /// handoffs are re-examined inside `analyze`), which makes *every*
    /// read-site fault an analyze-phase fault — eligible for the
    /// analyze-only fast path. `None` (the default) leaves the count
    /// undeclared: the campaign drivers still measure the boundary
    /// from the golden run's [`ffis_vfs::ReadLedger`] either way, and
    /// use a declaration only as a cross-check — a mismatch between
    /// the declared and measured counts disables the fast path with
    /// [`crate::ReplayFallback::TraceMismatch`] recorded.
    fn produce_read_count(&self) -> Option<u64> {
        None
    }

    /// Apply the application's outcome-classification rules.
    fn classify(&self, golden: &Self::Output, faulty: &Self::Output) -> Outcome;

    /// Short name for report rows ("NYX", "QMC", "MT1", ...).
    fn name(&self) -> String;

    /// Declare the analyze sub-steps of this workload, in execution
    /// order, or `None` (the default) for whole-analyze workloads.
    /// When `Some`, running [`FaultApp::analyze_substep`] for each
    /// index in order and folding the artifacts through
    /// [`FaultApp::assemble`] must be the same computation as
    /// [`FaultApp::analyze`] (see the trait docs for the sub-step
    /// laws).
    fn analyze_substeps(&self) -> Option<Vec<SubstepSpec>> {
        None
    }

    /// Run one analyze sub-step against `fs`, returning its opaque
    /// serialized artifact. Must read only the paths declared by the
    /// matching [`SubstepSpec`], must not mutate `fs`, and — like
    /// [`FaultApp::analyze`] — may use `golden` only as an
    /// equivalent-result optimization hint.
    fn analyze_substep(
        &self,
        fs: &dyn ffis_vfs::FileSystem,
        index: usize,
        golden: Option<&Self::Output>,
    ) -> Result<Vec<u8>, String> {
        let _ = (fs, index, golden);
        Err("workload declares no analyze sub-steps".into())
    }

    /// Fold the per-sub-step artifacts (one per declared
    /// [`SubstepSpec`], in order) into the final output. Pure: must
    /// not touch the filesystem.
    fn assemble(
        &self,
        artifacts: &[Vec<u8>],
        golden: Option<&Self::Output>,
    ) -> Result<Self::Output, String> {
        let _ = (artifacts, golden);
        Err("workload declares no analyze sub-steps".into())
    }
}

/// One declared analyze sub-step: a name (stable across runs — it
/// keys the memo store) and the closed set of file paths the sub-step
/// is allowed to read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstepSpec {
    /// Stable identifier ("tile3", "plt00002", "restart1", ...).
    pub name: String,
    /// Every path this sub-step may read. A fault injected into (or
    /// returned from a read of) any of these paths dirties the
    /// sub-step; faults elsewhere cannot reach it.
    pub inputs: Vec<String>,
}

impl SubstepSpec {
    /// A spec for `name` reading exactly `inputs`.
    pub fn new(name: impl Into<String>, inputs: Vec<String>) -> Self {
        SubstepSpec { name: name.into(), inputs }
    }

    /// Does this sub-step declare `path` as an input?
    pub fn reads(&self, path: &str) -> bool {
        self.inputs.iter().any(|p| p == path)
    }
}

/// Shared replay-gate predicate: does the app's [`FaultApp::analyze`]
/// phase, run against `fs`, reproduce the golden classification?
/// Returns `false` when analyze errors or the classification is
/// anything but [`Outcome::Benign`]. Both the campaign and the
/// metadata-scan fast paths use this for the golden-identity probe
/// *and* the uninjected replay self-check, so the engagement rules
/// cannot drift apart.
pub(crate) fn analyze_matches_golden<A: FaultApp + ?Sized>(
    app: &A,
    fs: &dyn ffis_vfs::FileSystem,
    golden: &A::Output,
) -> bool {
    matches!(
        app.analyze(fs, Some(golden)),
        Ok(out) if app.classify(golden, &out) == Outcome::Benign
    )
}

/// Aggregated outcome counts for a campaign, with Wilson 95% CIs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// Benign count.
    pub benign: u64,
    /// Detected count.
    pub detected: u64,
    /// SDC count.
    pub sdc: u64,
    /// Crash count.
    pub crash: u64,
    /// Runs where the armed fault never fired (profile/run divergence;
    /// should be zero in a healthy campaign).
    pub no_fire: u64,
}

impl OutcomeTally {
    /// Empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one outcome.
    pub fn record(&mut self, o: Outcome) {
        match o {
            Outcome::Benign => self.benign += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Crash => self.crash += 1,
        }
    }

    /// Count for one outcome.
    pub fn count(&self, o: Outcome) -> u64 {
        match o {
            Outcome::Benign => self.benign,
            Outcome::Detected => self.detected,
            Outcome::Sdc => self.sdc,
            Outcome::Crash => self.crash,
        }
    }

    /// Total classified runs (excludes `no_fire`).
    pub fn total(&self) -> u64 {
        self.benign + self.detected + self.sdc + self.crash
    }

    /// Proportion (with CI) for one outcome.
    pub fn proportion(&self, o: Outcome) -> Proportion {
        wilson(self.count(o), self.total())
    }

    /// Rate in percent.
    pub fn rate_pct(&self, o: Outcome) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.count(o) as f64 / self.total() as f64 * 100.0
        }
    }

    /// Merge another tally.
    pub fn merge(&mut self, other: &OutcomeTally) {
        self.benign += other.benign;
        self.detected += other.detected;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.no_fire += other.no_fire;
    }

    /// One-line summary: `benign 91.1% | detected 8.1% | SDC 0.8% | crash 0.0%`.
    pub fn summary(&self) -> String {
        format!(
            "benign {:5.1}% | detected {:5.1}% | SDC {:5.1}% | crash {:5.1}% (n={})",
            self.rate_pct(Outcome::Benign),
            self.rate_pct(Outcome::Detected),
            self.rate_pct(Outcome::Sdc),
            self.rate_pct(Outcome::Crash),
            self.total()
        )
    }
}

impl std::fmt::Display for OutcomeTally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut t = OutcomeTally::new();
        t.record(Outcome::Benign);
        t.record(Outcome::Benign);
        t.record(Outcome::Sdc);
        t.record(Outcome::Detected);
        t.record(Outcome::Crash);
        assert_eq!(t.count(Outcome::Benign), 2);
        assert_eq!(t.count(Outcome::Sdc), 1);
        assert_eq!(t.total(), 5);
        assert!((t.rate_pct(Outcome::Benign) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn proportion_has_interval() {
        let mut t = OutcomeTally::new();
        for _ in 0..911 {
            t.record(Outcome::Benign);
        }
        for _ in 0..81 {
            t.record(Outcome::Detected);
        }
        for _ in 0..8 {
            t.record(Outcome::Sdc);
        }
        let p = t.proportion(Outcome::Benign);
        assert!((p.p - 0.911).abs() < 1e-9);
        assert!(p.lo < 0.911 && p.hi > 0.911);
        // Paper's claim: ~1–2% error bars at n = 1000.
        assert!(p.error_bar_pct() < 2.5);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = OutcomeTally { benign: 1, detected: 2, sdc: 3, crash: 4, no_fire: 5 };
        let b = OutcomeTally { benign: 10, detected: 20, sdc: 30, crash: 40, no_fire: 50 };
        a.merge(&b);
        assert_eq!(a, OutcomeTally { benign: 11, detected: 22, sdc: 33, crash: 44, no_fire: 55 });
    }

    #[test]
    fn summary_contains_all_classes() {
        let t = OutcomeTally { benign: 1, detected: 1, sdc: 1, crash: 1, no_fire: 0 };
        let s = t.summary();
        for needle in ["benign", "detected", "SDC", "crash", "25.0"] {
            assert!(s.contains(needle), "{} missing from {}", needle, s);
        }
    }

    #[test]
    fn outcome_names() {
        assert_eq!(Outcome::Sdc.name(), "SDC");
        assert_eq!(OUTCOMES.len(), 4);
        assert_eq!(Outcome::Benign.to_string(), "Benign");
    }

    #[test]
    fn empty_tally_rates_are_zero() {
        let t = OutcomeTally::new();
        assert_eq!(t.total(), 0);
        assert_eq!(t.rate_pct(Outcome::Sdc), 0.0);
        let p = t.proportion(Outcome::Sdc);
        assert_eq!((p.lo, p.hi), (0.0, 0.0));
    }
}
