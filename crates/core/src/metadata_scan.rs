//! HDF5 metadata fault-injection scan (paper §IV-D, Tables III & IV).
//!
//! "Based on this procedure, FFIS identifies the specific write
//! operation for metadata (i.e., the penultimate fwrite) and then
//! perform[s] a fault injection starting from the offset value
//! specified by the fwrite and till the end of the buffer
//! byte-by-byte."
//!
//! The scanner is format-agnostic: it locates a designated write to a
//! target file (by default the penultimate one), then reruns the
//! workload once per buffer byte with a [`ByteFaultInjector`] armed on
//! that byte, classifying every outcome. A [`FieldMap`] (produced by
//! the file-format crate from its own layout knowledge) attributes
//! each byte to a named metadata field, yielding the per-field outcome
//! tables of the paper.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rayon::prelude::*;

use ffis_vfs::{FfisFs, MemFs, Primitive};

use crate::fault::TargetFilter;
use crate::injector::{ByteFaultInjector, ByteFlip};
use crate::outcome::{FaultApp, Outcome, OutcomeTally};
use crate::profiler::IoProfiler;
use crate::rng::Rng;

/// Which matching write hosts the metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePick {
    /// The penultimate matching write — the paper's HDF5 observation
    /// (raw data writes, then packed metadata, then a final EOF patch).
    Penultimate,
    /// The last matching write.
    Last,
    /// The n-th matching write (1-based eligible instance).
    Nth(u64),
}

/// Damage applied to each scanned byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipMode {
    /// Two consecutive bits at a seeded-random position within the
    /// byte (the paper's BIT FLIP feature applied byte-by-byte).
    TwoBitsRandom,
    /// One specific bit of every byte.
    Bit(u8),
    /// XOR with a fixed mask.
    Mask(u8),
}

impl FlipMode {
    fn to_flip(self, rng: &mut Rng) -> ByteFlip {
        match self {
            FlipMode::TwoBitsRandom => {
                let start = rng.gen_range(7) as u8; // 2 consecutive bits within the byte
                ByteFlip::Xor(0b11 << start)
            }
            FlipMode::Bit(b) => ByteFlip::Xor(1u8 << (b & 7)),
            FlipMode::Mask(m) => ByteFlip::Xor(m),
        }
    }
}

/// Scan configuration.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Which file's writes to scan (e.g. suffix `.h5`).
    pub target: TargetFilter,
    /// Which matching write is the metadata write.
    pub pick: WritePick,
    /// Damage per byte.
    pub flip: FlipMode,
    /// Seed for the per-byte flip positions.
    pub seed: u64,
    /// Scan every `stride`-th byte (1 = exhaustive, the paper's mode).
    pub stride: usize,
    /// Fan bytes out across the rayon pool.
    pub parallel: bool,
}

impl ScanConfig {
    /// Paper defaults: penultimate write, 2-bit flips, exhaustive.
    pub fn new(target: TargetFilter) -> Self {
        ScanConfig {
            target,
            pick: WritePick::Penultimate,
            flip: FlipMode::TwoBitsRandom,
            seed: 0x4D45_5441,
            stride: 1,
            parallel: true,
        }
    }
}

/// Outcome of injecting into one metadata byte.
#[derive(Debug, Clone)]
pub struct ByteOutcome {
    /// Byte index within the metadata write buffer.
    pub byte_index: usize,
    /// Absolute file offset of the byte.
    pub file_offset: u64,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Crash message when the run crashed.
    pub crash_message: Option<String>,
}

/// Full scan result.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Per-byte outcomes (in byte order).
    pub bytes: Vec<ByteOutcome>,
    /// File offset of the metadata write.
    pub write_offset: u64,
    /// Length of the metadata write buffer.
    pub write_len: usize,
    /// Eligible-instance number of the metadata write.
    pub write_instance: u64,
    /// Aggregate tally (the Table III totals row).
    pub tally: OutcomeTally,
}

/// A named byte range of the metadata region (absolute file offsets,
/// `[start, end)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpan {
    /// First byte (absolute file offset).
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
    /// Field name, e.g. `"Datatype.ExponentBias"`.
    pub name: String,
}

/// Byte-exact map from file offsets to metadata field names.
#[derive(Debug, Clone, Default)]
pub struct FieldMap {
    spans: Vec<FieldSpan>,
}

impl FieldMap {
    /// Build from spans (sorted by start; overlaps are a bug in the
    /// producer and rejected).
    pub fn new(mut spans: Vec<FieldSpan>) -> Result<Self, String> {
        spans.sort_by_key(|s| s.start);
        for w in spans.windows(2) {
            if w[1].start < w[0].end {
                return Err(format!(
                    "overlapping field spans: {} [{}, {}) and {} [{}, {})",
                    w[0].name, w[0].start, w[0].end, w[1].name, w[1].start, w[1].end
                ));
            }
        }
        for s in &spans {
            if s.end <= s.start {
                return Err(format!("empty span for {}", s.name));
            }
        }
        Ok(FieldMap { spans })
    }

    /// Field covering an absolute offset.
    pub fn lookup(&self, offset: u64) -> Option<&FieldSpan> {
        let idx = self.spans.partition_point(|s| s.end <= offset);
        self.spans.get(idx).filter(|s| s.start <= offset && offset < s.end)
    }

    /// All spans.
    pub fn spans(&self) -> &[FieldSpan] {
        &self.spans
    }

    /// Total bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.spans.iter().map(|s| s.end - s.start).sum()
    }

    /// Spans whose name contains `needle`.
    pub fn find(&self, needle: &str) -> Vec<&FieldSpan> {
        self.spans.iter().filter(|s| s.name.contains(needle)).collect()
    }
}

/// Per-field aggregation of a scan (Table III's "Example Metadata
/// Fields" column: which fields produced which outcome classes).
#[derive(Debug, Clone)]
pub struct FieldOutcome {
    /// Field name.
    pub name: String,
    /// Bytes of this field that were scanned.
    pub bytes_scanned: u64,
    /// Outcome tally over those bytes.
    pub tally: OutcomeTally,
}

/// Attribute scan outcomes to fields.
pub fn attribute(scan: &ScanResult, map: &FieldMap) -> Vec<FieldOutcome> {
    use std::collections::BTreeMap;
    let mut agg: BTreeMap<String, (u64, OutcomeTally)> = BTreeMap::new();
    for b in &scan.bytes {
        let name = map
            .lookup(b.file_offset)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| "<unmapped>".to_string());
        let entry = agg.entry(name).or_insert_with(|| (0, OutcomeTally::new()));
        entry.0 += 1;
        entry.1.record(b.outcome);
    }
    agg.into_iter()
        .map(|(name, (bytes_scanned, tally))| FieldOutcome { name, bytes_scanned, tally })
        .collect()
}

/// Field names whose bytes produced at least one occurrence of `o`.
pub fn fields_with_outcome(fields: &[FieldOutcome], o: Outcome) -> Vec<&str> {
    fields.iter().filter(|f| f.tally.count(o) > 0).map(|f| f.name.as_str()).collect()
}

/// Locate the metadata write: returns `(eligible instance, offset, len)`.
pub fn locate_write<A: FaultApp>(
    app: &A,
    target: &TargetFilter,
    pick: WritePick,
) -> Result<(u64, u64, usize, A::Output), String> {
    let profiler = IoProfiler::new(Primitive::Write, target.clone());
    let (profile, golden) = profiler.profile(|fs| app.run(fs))?;
    let writes = profile.writes_matching(target);
    if writes.is_empty() {
        return Err("no writes match the target filter".to_string());
    }
    let idx = match pick {
        WritePick::Last => writes.len() - 1,
        WritePick::Penultimate => {
            if writes.len() < 2 {
                return Err("fewer than two matching writes; no penultimate".to_string());
            }
            writes.len() - 2
        }
        WritePick::Nth(n) => {
            if n == 0 || n as usize > writes.len() {
                return Err(format!("write instance {} out of range 1..={}", n, writes.len()));
            }
            (n - 1) as usize
        }
    };
    let w = writes[idx];
    Ok((idx as u64 + 1, w.offset.unwrap_or(0), w.len, golden))
}

/// Run the workload once with a single byte fault armed; classify.
pub fn run_with_byte_fault<A: FaultApp>(
    app: &A,
    golden: &A::Output,
    target: &TargetFilter,
    write_instance: u64,
    byte_index: usize,
    flip: ByteFlip,
) -> (Outcome, Option<A::Output>, Option<String>) {
    let injector = Arc::new(ByteFaultInjector::new(target.clone(), write_instance, byte_index, flip));
    let ffs = FfisFs::mount(Arc::new(MemFs::new()));
    ffs.attach(injector);
    let result = catch_unwind(AssertUnwindSafe(|| app.run(&*ffs)));
    ffs.unmount();
    match result {
        Ok(Ok(faulty)) => {
            let o = app.classify(golden, &faulty);
            (o, Some(faulty), None)
        }
        Ok(Err(msg)) => (Outcome::Crash, None, Some(msg)),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            (Outcome::Crash, None, Some(msg))
        }
    }
}

/// Execute the full byte-by-byte metadata scan.
pub fn scan<A: FaultApp>(app: &A, config: &ScanConfig) -> Result<ScanResult, String> {
    let (write_instance, write_offset, write_len, golden) =
        locate_write(app, &config.target, config.pick)?;
    let stride = config.stride.max(1);
    let indices: Vec<usize> = (0..write_len).step_by(stride).collect();
    let root = Rng::seed_from(config.seed);

    let run_byte = |&byte_index: &usize| -> ByteOutcome {
        let mut rng = root.child(byte_index as u64);
        let flip = config.flip.to_flip(&mut rng);
        let (outcome, _, crash_message) =
            run_with_byte_fault(app, &golden, &config.target, write_instance, byte_index, flip);
        ByteOutcome {
            byte_index,
            file_offset: write_offset + byte_index as u64,
            outcome,
            crash_message,
        }
    };

    let bytes: Vec<ByteOutcome> = if config.parallel {
        indices.par_iter().map(run_byte).collect()
    } else {
        indices.iter().map(run_byte).collect()
    };

    let mut tally = OutcomeTally::new();
    for b in &bytes {
        tally.record(b.outcome);
    }
    Ok(ScanResult { bytes, write_offset, write_len, write_instance, tally })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::{FileSystem, FileSystemExt};

    /// Mini file format: a 16-byte "metadata" header (magic, version,
    /// scale factor, reserved) followed by data; the reader validates
    /// the magic/version and decodes data scaled by the factor. The
    /// writer writes data first, then the header (penultimate), then a
    /// 1-byte commit mark — mirroring the HDF5 write protocol shape.
    struct MiniFormatApp;

    #[derive(Clone)]
    struct MiniOut {
        values: Vec<u8>,
        mean: f64,
    }

    const MAGIC: [u8; 4] = *b"MINI";

    impl FaultApp for MiniFormatApp {
        type Output = MiniOut;

        fn run(&self, fs: &dyn FileSystem) -> Result<MiniOut, String> {
            // Write: data at 16.., header at 0 (penultimate), commit.
            let data = [10u8; 32];
            let fd = fs.create("/d.mini", 0o644).map_err(|e| e.to_string())?;
            fs.pwrite(fd, &data, 16).map_err(|e| e.to_string())?;
            let mut header = [0u8; 16];
            header[..4].copy_from_slice(&MAGIC);
            header[4] = 1; // version
            header[5] = 2; // scale
            fs.pwrite(fd, &header, 0).map_err(|e| e.to_string())?;
            fs.pwrite(fd, b"C", 48).map_err(|e| e.to_string())?;
            fs.release(fd).map_err(|e| e.to_string())?;

            // Read back with validation (crash on unjustified fields).
            let all = fs.read_to_vec("/d.mini").map_err(|e| e.to_string())?;
            if all.len() < 49 || all[..4] != MAGIC {
                return Err("bad magic".into());
            }
            if all[4] != 1 {
                return Err("unsupported version".into());
            }
            let scale = all[5] as u64;
            let values: Vec<u8> = all[16..48].to_vec();
            let mean =
                values.iter().map(|&v| (v as u64 * scale) as f64).sum::<f64>() / values.len() as f64;
            Ok(MiniOut { values, mean })
        }

        fn classify(&self, golden: &MiniOut, faulty: &MiniOut) -> Outcome {
            if golden.values == faulty.values && golden.mean == faulty.mean {
                Outcome::Benign
            } else if (faulty.mean - golden.mean).abs() > 100.0 {
                Outcome::Detected
            } else {
                Outcome::Sdc
            }
        }

        fn name(&self) -> String {
            "MINI".into()
        }
    }

    fn mini_field_map() -> FieldMap {
        FieldMap::new(vec![
            FieldSpan { start: 0, end: 4, name: "Magic".into() },
            FieldSpan { start: 4, end: 5, name: "Version".into() },
            FieldSpan { start: 5, end: 6, name: "Scale".into() },
            FieldSpan { start: 6, end: 16, name: "Reserved".into() },
        ])
        .unwrap()
    }

    #[test]
    fn locate_write_finds_penultimate_header() {
        let (instance, offset, len, _) =
            locate_write(&MiniFormatApp, &TargetFilter::Any, WritePick::Penultimate).unwrap();
        assert_eq!(instance, 2);
        assert_eq!(offset, 0);
        assert_eq!(len, 16);
    }

    #[test]
    fn locate_write_picks() {
        let (i, _, len, _) =
            locate_write(&MiniFormatApp, &TargetFilter::Any, WritePick::Last).unwrap();
        assert_eq!((i, len), (3, 1));
        let (i, off, _, _) =
            locate_write(&MiniFormatApp, &TargetFilter::Any, WritePick::Nth(1)).unwrap();
        assert_eq!((i, off), (1, 16));
        assert!(locate_write(&MiniFormatApp, &TargetFilter::Any, WritePick::Nth(9)).is_err());
        assert!(locate_write(
            &MiniFormatApp,
            &TargetFilter::PathSuffix(".nope".into()),
            WritePick::Last
        )
        .is_err());
    }

    #[test]
    fn scan_classifies_structure() {
        let mut cfg = ScanConfig::new(TargetFilter::Any);
        cfg.parallel = false;
        cfg.flip = FlipMode::Mask(0xFF); // deterministic, always changes the byte
        let result = scan(&MiniFormatApp, &cfg).unwrap();
        assert_eq!(result.bytes.len(), 16);
        assert_eq!(result.write_offset, 0);
        // Magic/version bytes crash; scale is detected (mean jumps by
        // a factor); reserved bytes are benign.
        let fields = attribute(&result, &mini_field_map());
        let get = |n: &str| fields.iter().find(|f| f.name == n).unwrap();
        assert_eq!(get("Magic").tally.crash, 4);
        assert_eq!(get("Version").tally.crash, 1);
        assert_eq!(get("Reserved").tally.benign, 10);
        assert!(get("Scale").tally.detected + get("Scale").tally.sdc == 1);
        assert_eq!(result.tally.total(), 16);
    }

    #[test]
    fn scan_stride_subsamples() {
        let mut cfg = ScanConfig::new(TargetFilter::Any);
        cfg.stride = 4;
        cfg.parallel = false;
        let result = scan(&MiniFormatApp, &cfg).unwrap();
        assert_eq!(result.bytes.len(), 4);
        assert_eq!(result.bytes.iter().map(|b| b.byte_index).collect::<Vec<_>>(), vec![0, 4, 8, 12]);
    }

    #[test]
    fn scan_parallel_equals_serial() {
        let mut a = ScanConfig::new(TargetFilter::Any);
        a.parallel = false;
        let mut b = a.clone();
        b.parallel = true;
        let ra = scan(&MiniFormatApp, &a).unwrap();
        let rb = scan(&MiniFormatApp, &b).unwrap();
        assert_eq!(ra.tally, rb.tally);
        for (x, y) in ra.bytes.iter().zip(&rb.bytes) {
            assert_eq!(x.outcome, y.outcome);
        }
    }

    #[test]
    fn field_map_lookup_and_validation() {
        let map = mini_field_map();
        assert_eq!(map.lookup(0).unwrap().name, "Magic");
        assert_eq!(map.lookup(3).unwrap().name, "Magic");
        assert_eq!(map.lookup(4).unwrap().name, "Version");
        assert_eq!(map.lookup(15).unwrap().name, "Reserved");
        assert!(map.lookup(16).is_none());
        assert_eq!(map.covered_bytes(), 16);
        assert_eq!(map.find("Ver").len(), 1);

        let overlap = FieldMap::new(vec![
            FieldSpan { start: 0, end: 4, name: "A".into() },
            FieldSpan { start: 2, end: 6, name: "B".into() },
        ]);
        assert!(overlap.is_err());
        let empty = FieldMap::new(vec![FieldSpan { start: 4, end: 4, name: "E".into() }]);
        assert!(empty.is_err());
    }

    #[test]
    fn fields_with_outcome_filter() {
        let mut cfg = ScanConfig::new(TargetFilter::Any);
        cfg.parallel = false;
        cfg.flip = FlipMode::Mask(0xFF);
        let result = scan(&MiniFormatApp, &cfg).unwrap();
        let fields = attribute(&result, &mini_field_map());
        let crashy = fields_with_outcome(&fields, Outcome::Crash);
        assert!(crashy.contains(&"Magic"));
        assert!(!crashy.contains(&"Reserved"));
    }

    #[test]
    fn run_with_byte_fault_single() {
        let (_, _, _, golden) =
            locate_write(&MiniFormatApp, &TargetFilter::Any, WritePick::Penultimate).unwrap();
        // Corrupt magic byte 0 -> crash.
        let (o, out, msg) = run_with_byte_fault(
            &MiniFormatApp,
            &golden,
            &TargetFilter::Any,
            2,
            0,
            ByteFlip::Xor(0xFF),
        );
        assert_eq!(o, Outcome::Crash);
        assert!(out.is_none());
        assert!(msg.unwrap().contains("bad magic"));
        // Corrupt a reserved byte -> benign.
        let (o, out, _) = run_with_byte_fault(
            &MiniFormatApp,
            &golden,
            &TargetFilter::Any,
            2,
            10,
            ByteFlip::Xor(0xFF),
        );
        assert_eq!(o, Outcome::Benign);
        assert!(out.is_some());
    }

    #[test]
    fn flip_mode_variants() {
        let mut rng = Rng::seed_from(1);
        for _ in 0..50 {
            match FlipMode::TwoBitsRandom.to_flip(&mut rng) {
                ByteFlip::Xor(m) => assert_eq!(m.count_ones(), 2),
                other => panic!("unexpected {:?}", other),
            }
        }
        assert_eq!(FlipMode::Bit(3).to_flip(&mut rng), ByteFlip::Xor(0b1000));
        assert_eq!(FlipMode::Mask(0xA5).to_flip(&mut rng), ByteFlip::Xor(0xA5));
    }
}
