//! HDF5 metadata fault-injection scan (paper §IV-D, Tables III & IV).
//!
//! "Based on this procedure, FFIS identifies the specific write
//! operation for metadata (i.e., the penultimate fwrite) and then
//! perform\[s\] a fault injection starting from the offset value
//! specified by the fwrite and till the end of the buffer
//! byte-by-byte."
//!
//! The scanner is format-agnostic: it locates a designated write to a
//! target file (by default the penultimate one), then evaluates the
//! workload once per buffer byte with a [`ByteFaultInjector`] armed on
//! that byte, classifying every outcome. A [`FieldMap`] (produced by
//! the file-format crate from its own layout knowledge) attributes
//! each byte to a named metadata field, yielding the per-field outcome
//! tables of the paper.
//!
//! ## The fork+replay fast path
//!
//! An exhaustive scan is `write_len` complete application executions —
//! each of which redoes the *identical* fault-free work (field
//! generation cache aside: HDF5 encoding, checksums, float packing)
//! before corrupting one byte. Every application is two-phase by
//! construction ([`FaultApp::produce`] / [`FaultApp::analyze`]), so
//! the scanner's default strategy is:
//!
//! 1. capture the golden run once, recording its mutating primitives
//!    as a replayable [`TraceOp`] stream ([`TraceRecorder`]);
//! 2. rebuild the filesystem state *just before the metadata write*
//!    on a bare [`MemFs`] by replaying the trace prefix (raw memcpy,
//!    no application logic), once;
//! 3. per scanned byte: [`MemFs::fork`]s that snapshot (O(page
//!    pointers)), replays only the trace *suffix* through a mounted
//!    [`FfisFs`] with the byte injector armed, and runs the
//!    application's `analyze` phase.
//!
//! Per-byte cost collapses from O(full run) to O(suffix bytes +
//! analyze). The fast path is self-checking: before use, the golden
//! snapshot must replay and analyze to a [`Outcome::Benign`]
//! classification, otherwise the scanner falls back to the legacy
//! full-rerun path ([`DetailedScanResult::used_replay`] reports which
//! path ran). An equivalence test in `tests/replay_equivalence.rs`
//! pins byte-identical outcomes between the two paths.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ffis_vfs::{FfisFs, MemFs, Primitive, ReplayCursor, TraceOp, TraceRecorder};

use crate::campaign::{replay_default, ExecutionMode, ReplayFallback};
use crate::engine::{self, EngineConfig, ExecutionPlan, PlannedRun, RunRecord, RunStrategy};
use crate::fault::TargetFilter;
use crate::injector::{ByteFaultInjector, ByteFlip};
use crate::outcome::{FaultApp, Outcome, OutcomeTally};
use crate::profiler::IoProfiler;
use crate::rng::Rng;

/// Which matching write hosts the metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePick {
    /// The penultimate matching write — the paper's HDF5 observation
    /// (raw data writes, then packed metadata, then a final EOF patch).
    Penultimate,
    /// The last matching write.
    Last,
    /// The n-th matching write (1-based eligible instance).
    Nth(u64),
}

/// Damage applied to each scanned byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipMode {
    /// Two consecutive bits at a seeded-random position within the
    /// byte (the paper's BIT FLIP feature applied byte-by-byte).
    TwoBitsRandom,
    /// One specific bit of every byte.
    Bit(u8),
    /// XOR with a fixed mask.
    Mask(u8),
}

impl FlipMode {
    fn to_flip(self, rng: &mut Rng) -> ByteFlip {
        match self {
            FlipMode::TwoBitsRandom => {
                let start = rng.gen_range(7) as u8; // 2 consecutive bits within the byte
                ByteFlip::Xor(0b11 << start)
            }
            FlipMode::Bit(b) => ByteFlip::Xor(1u8 << (b & 7)),
            FlipMode::Mask(m) => ByteFlip::Xor(m),
        }
    }
}

/// Scan configuration.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Which file's writes to scan (e.g. suffix `.h5`).
    pub target: TargetFilter,
    /// Which matching write is the metadata write.
    pub pick: WritePick,
    /// Damage per byte.
    pub flip: FlipMode,
    /// Seed for the per-byte flip positions.
    pub seed: u64,
    /// Scan every `stride`-th byte (1 = exhaustive, the paper's mode).
    pub stride: usize,
    /// Fan bytes out across the rayon pool.
    pub parallel: bool,
    /// Use the fork+replay fast path (see the module docs). Outcomes
    /// are byte-identical either way; disable only to measure the
    /// legacy full-rerun cost. The scanner still self-checks and falls
    /// back when an app's analyze phase breaks the golden-identity
    /// law.
    pub replay: bool,
}

impl ScanConfig {
    /// Paper defaults: penultimate write, 2-bit flips, exhaustive,
    /// replay on (unless `FFIS_REPLAY=0` — see
    /// [`crate::campaign::replay_default`], the same override the
    /// campaign drivers honor).
    pub fn new(target: TargetFilter) -> Self {
        ScanConfig {
            target,
            pick: WritePick::Penultimate,
            flip: FlipMode::TwoBitsRandom,
            seed: 0x4D45_5441,
            stride: 1,
            parallel: true,
            replay: replay_default(),
        }
    }
}

/// Outcome of injecting into one metadata byte.
#[derive(Debug, Clone)]
pub struct ByteOutcome {
    /// Byte index within the metadata write buffer.
    pub byte_index: usize,
    /// Absolute file offset of the byte.
    pub file_offset: u64,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Crash message when the run crashed.
    pub crash_message: Option<String>,
}

/// Full scan result.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Per-byte outcomes (in byte order).
    pub bytes: Vec<ByteOutcome>,
    /// File offset of the metadata write.
    pub write_offset: u64,
    /// Length of the metadata write buffer.
    pub write_len: usize,
    /// Eligible-instance number of the metadata write.
    pub write_instance: u64,
    /// Aggregate tally (the Table III totals row).
    pub tally: OutcomeTally,
}

/// A named byte range of the metadata region (absolute file offsets,
/// `[start, end)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpan {
    /// First byte (absolute file offset).
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
    /// Field name, e.g. `"Datatype.ExponentBias"`.
    pub name: String,
}

/// Byte-exact map from file offsets to metadata field names.
#[derive(Debug, Clone, Default)]
pub struct FieldMap {
    spans: Vec<FieldSpan>,
}

impl FieldMap {
    /// Build from spans (sorted by start; overlaps are a bug in the
    /// producer and rejected).
    pub fn new(mut spans: Vec<FieldSpan>) -> Result<Self, String> {
        spans.sort_by_key(|s| s.start);
        for w in spans.windows(2) {
            if w[1].start < w[0].end {
                return Err(format!(
                    "overlapping field spans: {} [{}, {}) and {} [{}, {})",
                    w[0].name, w[0].start, w[0].end, w[1].name, w[1].start, w[1].end
                ));
            }
        }
        for s in &spans {
            if s.end <= s.start {
                return Err(format!("empty span for {}", s.name));
            }
        }
        Ok(FieldMap { spans })
    }

    /// Field covering an absolute offset.
    pub fn lookup(&self, offset: u64) -> Option<&FieldSpan> {
        let idx = self.spans.partition_point(|s| s.end <= offset);
        self.spans.get(idx).filter(|s| s.start <= offset && offset < s.end)
    }

    /// All spans.
    pub fn spans(&self) -> &[FieldSpan] {
        &self.spans
    }

    /// Total bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.spans.iter().map(|s| s.end - s.start).sum()
    }

    /// Spans whose name contains `needle`.
    pub fn find(&self, needle: &str) -> Vec<&FieldSpan> {
        self.spans.iter().filter(|s| s.name.contains(needle)).collect()
    }
}

/// Per-field aggregation of a scan (Table III's "Example Metadata
/// Fields" column: which fields produced which outcome classes).
#[derive(Debug, Clone)]
pub struct FieldOutcome {
    /// Field name.
    pub name: String,
    /// Bytes of this field that were scanned.
    pub bytes_scanned: u64,
    /// Outcome tally over those bytes.
    pub tally: OutcomeTally,
}

/// Attribute scan outcomes to fields.
pub fn attribute(scan: &ScanResult, map: &FieldMap) -> Vec<FieldOutcome> {
    use std::collections::BTreeMap;
    let mut agg: BTreeMap<String, (u64, OutcomeTally)> = BTreeMap::new();
    for b in &scan.bytes {
        let name = map
            .lookup(b.file_offset)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| "<unmapped>".to_string());
        let entry = agg.entry(name).or_insert_with(|| (0, OutcomeTally::new()));
        entry.0 += 1;
        entry.1.record(b.outcome);
    }
    agg.into_iter()
        .map(|(name, (bytes_scanned, tally))| FieldOutcome { name, bytes_scanned, tally })
        .collect()
}

/// Field names whose bytes produced at least one occurrence of `o`.
pub fn fields_with_outcome(fields: &[FieldOutcome], o: Outcome) -> Vec<&str> {
    fields.iter().filter(|f| f.tally.count(o) > 0).map(|f| f.name.as_str()).collect()
}

/// Resolve a [`WritePick`] against `count` matching writes, returning
/// a 0-based index.
fn pick_index(count: usize, pick: WritePick) -> Result<usize, String> {
    if count == 0 {
        return Err("no writes match the target filter".to_string());
    }
    match pick {
        WritePick::Last => Ok(count - 1),
        WritePick::Penultimate => {
            if count < 2 {
                return Err("fewer than two matching writes; no penultimate".to_string());
            }
            Ok(count - 2)
        }
        WritePick::Nth(n) => {
            if n == 0 || n as usize > count {
                return Err(format!("write instance {} out of range 1..={}", n, count));
            }
            Ok((n - 1) as usize)
        }
    }
}

/// Locate the metadata write: returns `(eligible instance, offset, len)`.
pub fn locate_write<A: FaultApp>(
    app: &A,
    target: &TargetFilter,
    pick: WritePick,
) -> Result<(u64, u64, usize, A::Output), String> {
    let profiler = IoProfiler::new(Primitive::Write, target.clone());
    // Deliberately produce-then-analyze rather than `app.run(fs)`:
    // drivers always execute the canonical two-phase path, so an app
    // that (illegally) overrides the provided `run` cannot desync the
    // golden capture from the analyze-only replay runs.
    let (profile, golden) = profiler.profile(|fs| {
        app.produce(fs)?;
        app.analyze(fs, None)
    })?;
    let writes = profile.writes_matching(target);
    let idx = pick_index(writes.len(), pick)?;
    let w = writes[idx];
    Ok((idx as u64 + 1, w.offset.unwrap_or(0), w.len, golden))
}

/// Everything one golden execution yields for the scanner: the located
/// metadata write, the reference output, the final filesystem state,
/// and the replayable op stream.
struct GoldenCapture<O> {
    write_instance: u64,
    write_offset: u64,
    write_len: usize,
    golden: O,
    /// Final golden filesystem (for probing `verify` support).
    golden_fs: Arc<MemFs>,
    /// The golden run's mutating primitives, replay-ready.
    ops: Vec<TraceOp>,
    /// Matching writes the golden run *attempted* (counted at the
    /// interceptor, like [`ByteFaultInjector`]'s eligibility counter),
    /// as opposed to the successful ones present in `ops`. A mismatch
    /// disables the replay fast path — see [`prepare_replay`].
    attempted_matching_writes: usize,
}

/// Run the workload once, fault-free, optionally recording its golden
/// trace (`record` — skipped for legacy-mode scans, since the trace
/// clones every write buffer and would pin the workload's full I/O
/// volume in memory for nothing).
///
/// The metadata write is located on the *attempted*-write numbering
/// (the interceptor-level trace, exactly like [`locate_write`] and
/// the injectors' eligibility counters), so the legacy per-byte path
/// targets the same instance it always has even if a matching write
/// failed during the golden run.
fn capture_golden<A: FaultApp>(
    app: &A,
    target: &TargetFilter,
    pick: WritePick,
    record: bool,
) -> Result<GoldenCapture<A::Output>, String> {
    let profiler = IoProfiler::new(Primitive::Write, target.clone());
    let recorder: Arc<TraceRecorder> = Arc::new(TraceRecorder::new());
    let extras: Vec<Arc<dyn ffis_vfs::Interceptor>> =
        if record { vec![recorder.clone()] } else { Vec::new() };
    let (profile, golden, base) = profiler.profile_with(&extras, |fs| {
        app.produce(fs)?;
        app.analyze(fs, None)
    })?;
    let writes = profile.writes_matching(target);
    let idx = pick_index(writes.len(), pick)?;
    let w = writes[idx];
    Ok(GoldenCapture {
        write_instance: idx as u64 + 1,
        write_offset: w.offset.unwrap_or(0),
        write_len: w.len,
        golden,
        golden_fs: base,
        ops: recorder.take_ops(),
        attempted_matching_writes: writes.len(),
    })
}

/// The scanner's replay fast path, prepared once per scan: the
/// pre-injection snapshot plus the trace suffix that still has to run
/// per byte.
struct ReplayPlan {
    /// Filesystem state immediately before the metadata write, with
    /// the golden run's descriptors still open.
    pre: MemFs,
    /// Descriptor map at the snapshot point.
    cursor: ReplayCursor,
    /// Index of the metadata write within the op stream.
    suffix_start: usize,
}

/// Build the replay plan, validating it end-to-end on the golden
/// snapshot (replay the suffix uninjected, analyze, and require a
/// benign classification). Returns the [`ReplayFallback`] reason —
/// fall back to full reruns — when the golden run attempted a matching
/// write that failed (the success-only trace would then number
/// instances differently than the injectors do), when the app's
/// analyze phase violates the golden-identity law, or when the
/// self-check fails.
fn prepare_replay<A: FaultApp>(
    app: &A,
    cap: &GoldenCapture<A::Output>,
    target: &TargetFilter,
) -> Result<ReplayPlan, ReplayFallback> {
    let recorded_matching =
        cap.ops.iter().filter(|op| op.is_write() && target.matches(op.write_path())).count();
    if recorded_matching != cap.attempted_matching_writes {
        return Err(ReplayFallback::TraceMismatch);
    }
    // Probe: does analyze satisfy the golden-identity law on the
    // final golden state?
    if !crate::outcome::analyze_matches_golden(app, &*cap.golden_fs, &cap.golden) {
        return Err(ReplayFallback::GoldenIdentity);
    }
    // Locate the target write in the op stream.
    let mut seen = 0u64;
    let suffix_start = cap
        .ops
        .iter()
        .position(|op| {
            if op.is_write() && target.matches(op.write_path()) {
                seen += 1;
                seen == cap.write_instance
            } else {
                false
            }
        })
        .ok_or(ReplayFallback::TraceMismatch)?;
    // Rebuild the pre-injection state at memcpy speed.
    let pre = MemFs::new();
    let mut cursor = ReplayCursor::new();
    cursor.replay(&pre, &cap.ops[..suffix_start]).map_err(|_| ReplayFallback::ReplayCheck)?;
    let plan = ReplayPlan { pre, cursor, suffix_start };
    // Self-check: an uninjected suffix replay must analyze benign.
    let ffs = FfisFs::mount(Arc::new(plan.pre.fork()));
    let mut cur = plan.cursor.clone();
    cur.seed_mount(&ffs);
    cur.replay(&*ffs, &cap.ops[plan.suffix_start..]).map_err(|_| ReplayFallback::ReplayCheck)?;
    if !crate::outcome::analyze_matches_golden(app, &*ffs, &cap.golden) {
        return Err(ReplayFallback::ReplayCheck);
    }
    Ok(plan)
}

/// Run the workload once with a single byte fault armed; classify.
pub fn run_with_byte_fault<A: FaultApp>(
    app: &A,
    golden: &A::Output,
    target: &TargetFilter,
    write_instance: u64,
    byte_index: usize,
    flip: ByteFlip,
) -> (Outcome, Option<A::Output>, Option<String>) {
    let injector =
        Arc::new(ByteFaultInjector::new(target.clone(), write_instance, byte_index, flip));
    let ffs = FfisFs::mount(Arc::new(MemFs::new()));
    ffs.attach(injector);
    let result = catch_unwind(AssertUnwindSafe(|| {
        app.produce(&*ffs)?;
        app.analyze(&*ffs, Some(golden))
    }));
    ffs.unmount();
    classify_run_result(app, golden, result)
}

/// Fork the pre-injection snapshot, replay the trace suffix with a
/// byte fault armed, and run the app's analyze phase; classify.
fn replay_with_byte_fault<A: FaultApp>(
    app: &A,
    cap: &GoldenCapture<A::Output>,
    plan: &ReplayPlan,
    target: &TargetFilter,
    byte_index: usize,
    flip: ByteFlip,
) -> (Outcome, Option<A::Output>, Option<String>) {
    // The suffix begins at the metadata write, so relative to the
    // replayed stream the armed instance is always the first match.
    let injector = Arc::new(ByteFaultInjector::new(target.clone(), 1, byte_index, flip));
    let ffs = FfisFs::mount(Arc::new(plan.pre.fork()));
    let mut cursor = plan.cursor.clone();
    cursor.seed_mount(&ffs);
    ffs.attach(injector);
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<A::Output, String> {
        cursor.replay(&*ffs, &cap.ops[plan.suffix_start..]).map_err(|e| e.to_string())?;
        app.analyze(&*ffs, Some(&cap.golden))
    }));
    ffs.unmount();
    classify_run_result(app, &cap.golden, result)
}

/// Shared crash/panic classification for both execution strategies.
fn classify_run_result<A: FaultApp>(
    app: &A,
    golden: &A::Output,
    result: std::thread::Result<Result<A::Output, String>>,
) -> (Outcome, Option<A::Output>, Option<String>) {
    match result {
        Ok(Ok(faulty)) => {
            let o = app.classify(golden, &faulty);
            (o, Some(faulty), None)
        }
        Ok(Err(msg)) => (Outcome::Crash, None, Some(msg)),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            (Outcome::Crash, None, Some(msg))
        }
    }
}

/// One scanned byte paired with the faulty run's surviving output, so
/// replay-path classification can be diffed against rerun-path
/// classification (not just the collapsed [`Outcome`]).
#[derive(Debug, Clone)]
pub struct ScanRun<O> {
    /// Location and classified outcome.
    pub byte: ByteOutcome,
    /// Full application output of the faulty run, when it completed.
    pub output: Option<O>,
}

/// [`ScanResult`] enriched with per-byte application outputs and the
/// execution strategy that produced it.
#[derive(Debug, Clone)]
pub struct DetailedScanResult<O> {
    /// Per-byte runs (in byte order).
    pub runs: Vec<ScanRun<O>>,
    /// File offset of the metadata write.
    pub write_offset: u64,
    /// Length of the metadata write buffer.
    pub write_len: usize,
    /// Eligible-instance number of the metadata write.
    pub write_instance: u64,
    /// Aggregate tally.
    pub tally: OutcomeTally,
    /// The execution strategy, with the recorded reason when a
    /// replay-configured scan fell back — the same vocabulary the
    /// campaign drivers report.
    pub mode: ExecutionMode,
}

impl<O> DetailedScanResult<O> {
    /// Did the fork+replay fast path run? (`false`: the scan fell back
    /// to — or was configured for — legacy full reruns; the reason is
    /// in [`DetailedScanResult::mode`].)
    pub fn used_replay(&self) -> bool {
        self.mode.is_replay()
    }

    /// Collapse to the output-free [`ScanResult`].
    pub fn into_result(self) -> ScanResult {
        ScanResult {
            bytes: self.runs.into_iter().map(|r| r.byte).collect(),
            write_offset: self.write_offset,
            write_len: self.write_len,
            write_instance: self.write_instance,
            tally: self.tally,
        }
    }
}

/// Execute the full byte-by-byte metadata scan, keeping each byte's
/// application output alongside its classification. The scan is a
/// thin frontend over the shared [`crate::engine`]: every byte's flip
/// is drawn at plan time from `root.child(byte_index)` (exactly the
/// historical stream), the strategy — one shared pre-write snapshot,
/// or full reruns with a recorded reason — is resolved up front, and
/// the tally streams through the engine sink. Scans retain every
/// per-byte run: the byte map *is* the product.
pub fn scan_detailed<A: FaultApp>(
    app: &A,
    config: &ScanConfig,
) -> Result<DetailedScanResult<A::Output>, String> {
    let mut cap = capture_golden(app, &config.target, config.pick, config.replay)?;
    let stride = config.stride.max(1);
    let indices: Vec<usize> = (0..cap.write_len).step_by(stride).collect();
    let root = Rng::seed_from(config.seed);
    let plan = if config.replay {
        prepare_replay(app, &cap, &config.target)
    } else {
        Err(ReplayFallback::Disabled)
    };
    let reason = plan.as_ref().err().copied();
    let plan = plan.ok();
    if plan.is_none() {
        // Legacy path: the trace (which holds every write payload) and
        // the golden filesystem are never consulted again — free them
        // before the per-byte loop instead of pinning workload-sized
        // memory for the whole scan.
        cap.ops = Vec::new();
        cap.golden_fs = Arc::new(MemFs::new());
    }

    let planned: Vec<PlannedRun<ByteSpec>> = indices
        .iter()
        .enumerate()
        .map(|(index, &byte_index)| {
            let mut rng = root.child(byte_index as u64);
            let flip = config.flip.to_flip(&mut rng);
            let strategy = match (&plan, reason) {
                // One pre-write snapshot serves every byte: the
                // suffix starts at the metadata write for all of them.
                (Some(p), _) => RunStrategy::Replay {
                    checkpoint: 0,
                    suffix_len: cap.ops.len() - p.suffix_start,
                },
                (None, Some(reason)) => RunStrategy::Rerun { reason },
                (None, None) => unreachable!("no plan implies a recorded reason"),
            };
            PlannedRun { index, shard: 0, strategy, spec: ByteSpec { byte_index, flip } }
        })
        .collect();
    let mode = match (planned.first(), reason) {
        (Some(pr), _) => pr.strategy.mode(),
        (None, Some(reason)) => ExecutionMode::FullRerun { reason },
        (None, None) => ExecutionMode::Replay,
    };
    let eplan = ExecutionPlan::new(planned, 1);
    let engine_cfg =
        EngineConfig { parallel: config.parallel, keep_runs: None, keep_seed: config.seed };
    let out = engine::execute(&eplan, &engine_cfg, |pr| {
        let ByteSpec { byte_index, flip } = pr.spec;
        let (outcome, output, crash_message) = match &plan {
            Some(plan) => replay_with_byte_fault(app, &cap, plan, &config.target, byte_index, flip),
            None => run_with_byte_fault(
                app,
                &cap.golden,
                &config.target,
                cap.write_instance,
                byte_index,
                flip,
            ),
        };
        let payload = ScanRun {
            byte: ByteOutcome {
                byte_index,
                file_offset: cap.write_offset + byte_index as u64,
                outcome,
                crash_message,
            },
            output,
        };
        // Byte injectors always fire (the byte is always within the
        // scanned buffer), so the no-fire law never triggers here.
        RunRecord { outcome, fired: true, payload }
    });

    Ok(DetailedScanResult {
        runs: out.kept,
        write_offset: cap.write_offset,
        write_len: cap.write_len,
        write_instance: cap.write_instance,
        tally: out.tally,
        mode,
    })
}

/// Plan-time per-byte data of a metadata scan: the byte under fault
/// and the seeded flip damage (drawn at plan time, engine law 2).
#[derive(Debug, Clone, Copy)]
struct ByteSpec {
    byte_index: usize,
    flip: ByteFlip,
}

/// Execute the full byte-by-byte metadata scan.
pub fn scan<A: FaultApp>(app: &A, config: &ScanConfig) -> Result<ScanResult, String> {
    scan_detailed(app, config).map(DetailedScanResult::into_result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::{FileSystem, FileSystemExt};

    /// Mini file format: a 16-byte "metadata" header (magic, version,
    /// scale factor, reserved) followed by data; the reader validates
    /// the magic/version and decodes data scaled by the factor. The
    /// writer writes data first, then the header (penultimate), then a
    /// 1-byte commit mark — mirroring the HDF5 write protocol shape.
    struct MiniFormatApp;

    #[derive(Clone)]
    struct MiniOut {
        values: Vec<u8>,
        mean: f64,
    }

    const MAGIC: [u8; 4] = *b"MINI";

    /// The read/validate half of the mini workload.
    fn mini_read_back(fs: &dyn FileSystem) -> Result<MiniOut, String> {
        let all = fs.read_to_vec("/d.mini").map_err(|e| e.to_string())?;
        if all.len() < 49 || all[..4] != MAGIC {
            return Err("bad magic".into());
        }
        if all[4] != 1 {
            return Err("unsupported version".into());
        }
        let scale = all[5] as u64;
        let values: Vec<u8> = all[16..48].to_vec();
        let mean =
            values.iter().map(|&v| (v as u64 * scale) as f64).sum::<f64>() / values.len() as f64;
        Ok(MiniOut { values, mean })
    }

    impl FaultApp for MiniFormatApp {
        type Output = MiniOut;

        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            // Write: data at 16.., header at 0 (penultimate), commit.
            let data = [10u8; 32];
            let fd = fs.create("/d.mini", 0o644).map_err(|e| e.to_string())?;
            fs.pwrite(fd, &data, 16).map_err(|e| e.to_string())?;
            let mut header = [0u8; 16];
            header[..4].copy_from_slice(&MAGIC);
            header[4] = 1; // version
            header[5] = 2; // scale
            fs.pwrite(fd, &header, 0).map_err(|e| e.to_string())?;
            fs.pwrite(fd, b"C", 48).map_err(|e| e.to_string())?;
            fs.release(fd).map_err(|e| e.to_string())
        }

        fn analyze(
            &self,
            fs: &dyn FileSystem,
            _golden: Option<&MiniOut>,
        ) -> Result<MiniOut, String> {
            // Read back with validation (crash on unjustified fields).
            mini_read_back(fs)
        }

        fn classify(&self, golden: &MiniOut, faulty: &MiniOut) -> Outcome {
            if golden.values == faulty.values && golden.mean == faulty.mean {
                Outcome::Benign
            } else if (faulty.mean - golden.mean).abs() > 100.0 {
                Outcome::Detected
            } else {
                Outcome::Sdc
            }
        }

        fn name(&self) -> String {
            "MINI".into()
        }
    }

    fn mini_field_map() -> FieldMap {
        FieldMap::new(vec![
            FieldSpan { start: 0, end: 4, name: "Magic".into() },
            FieldSpan { start: 4, end: 5, name: "Version".into() },
            FieldSpan { start: 5, end: 6, name: "Scale".into() },
            FieldSpan { start: 6, end: 16, name: "Reserved".into() },
        ])
        .unwrap()
    }

    #[test]
    fn locate_write_finds_penultimate_header() {
        let (instance, offset, len, _) =
            locate_write(&MiniFormatApp, &TargetFilter::Any, WritePick::Penultimate).unwrap();
        assert_eq!(instance, 2);
        assert_eq!(offset, 0);
        assert_eq!(len, 16);
    }

    #[test]
    fn locate_write_picks() {
        let (i, _, len, _) =
            locate_write(&MiniFormatApp, &TargetFilter::Any, WritePick::Last).unwrap();
        assert_eq!((i, len), (3, 1));
        let (i, off, _, _) =
            locate_write(&MiniFormatApp, &TargetFilter::Any, WritePick::Nth(1)).unwrap();
        assert_eq!((i, off), (1, 16));
        assert!(locate_write(&MiniFormatApp, &TargetFilter::Any, WritePick::Nth(9)).is_err());
        assert!(locate_write(
            &MiniFormatApp,
            &TargetFilter::PathSuffix(".nope".into()),
            WritePick::Last
        )
        .is_err());
    }

    #[test]
    fn scan_classifies_structure() {
        let mut cfg = ScanConfig::new(TargetFilter::Any);
        cfg.parallel = false;
        cfg.flip = FlipMode::Mask(0xFF); // deterministic, always changes the byte
        let result = scan(&MiniFormatApp, &cfg).unwrap();
        assert_eq!(result.bytes.len(), 16);
        assert_eq!(result.write_offset, 0);
        // Magic/version bytes crash; scale is detected (mean jumps by
        // a factor); reserved bytes are benign.
        let fields = attribute(&result, &mini_field_map());
        let get = |n: &str| fields.iter().find(|f| f.name == n).unwrap();
        assert_eq!(get("Magic").tally.crash, 4);
        assert_eq!(get("Version").tally.crash, 1);
        assert_eq!(get("Reserved").tally.benign, 10);
        assert!(get("Scale").tally.detected + get("Scale").tally.sdc == 1);
        assert_eq!(result.tally.total(), 16);
    }

    #[test]
    fn scan_stride_subsamples() {
        let mut cfg = ScanConfig::new(TargetFilter::Any);
        cfg.stride = 4;
        cfg.parallel = false;
        let result = scan(&MiniFormatApp, &cfg).unwrap();
        assert_eq!(result.bytes.len(), 4);
        assert_eq!(
            result.bytes.iter().map(|b| b.byte_index).collect::<Vec<_>>(),
            vec![0, 4, 8, 12]
        );
    }

    #[test]
    fn replay_fast_path_engages_by_default() {
        let mut cfg = ScanConfig::new(TargetFilter::Any);
        cfg.parallel = false;
        cfg.flip = FlipMode::Mask(0xFF);
        // Explicit rather than the default, which the FFIS_REPLAY=0 CI
        // rerun job flips to false.
        cfg.replay = true;
        let fast = scan_detailed(&MiniFormatApp, &cfg).unwrap();
        assert!(fast.used_replay(), "two-phase apps engage the fast path by construction");
        assert_eq!(fast.mode, ExecutionMode::Replay);

        // Byte-identical to the legacy full-rerun scan.
        cfg.replay = false;
        let slow = scan_detailed(&MiniFormatApp, &cfg).unwrap();
        assert!(!slow.used_replay());
        assert_eq!(slow.mode, ExecutionMode::FullRerun { reason: ReplayFallback::Disabled });
        assert_eq!(fast.tally, slow.tally);
        for (f, s) in fast.runs.iter().zip(&slow.runs) {
            assert_eq!(f.byte.outcome, s.byte.outcome, "byte {}", f.byte.byte_index);
            assert_eq!(f.byte.crash_message, s.byte.crash_message);
        }
    }

    /// An app whose analyze phase mutates its own classified artifact:
    /// the golden-identity probe must catch it and fall back to full
    /// reruns rather than classify replayed state with a broken phase.
    struct SelfMutatingApp;

    impl FaultApp for SelfMutatingApp {
        type Output = Vec<u8>;

        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            use ffis_vfs::FileSystemExt;
            fs.write_file_chunked("/grow.bin", &[4u8; 8192], 4096).map_err(|e| e.to_string())?;
            fs.write_file("/grow.meta", &[1u8; 32]).map_err(|e| e.to_string())
        }

        fn analyze(
            &self,
            fs: &dyn FileSystem,
            _golden: Option<&Vec<u8>>,
        ) -> Result<Vec<u8>, String> {
            use ffis_vfs::{FileSystemExt, OpenFlags};
            // Non-idempotent: appends to the artifact it then returns.
            let len = fs.read_to_vec("/grow.bin").map_err(|e| e.to_string())?.len() as u64;
            let fd = fs.open("/grow.bin", OpenFlags::read_write()).map_err(|e| e.to_string())?;
            fs.pwrite(fd, b"!", len).map_err(|e| e.to_string())?;
            fs.release(fd).map_err(|e| e.to_string())?;
            fs.read_to_vec("/grow.bin").map_err(|e| e.to_string())
        }

        fn classify(&self, golden: &Vec<u8>, faulty: &Vec<u8>) -> Outcome {
            if golden == faulty {
                Outcome::Benign
            } else {
                Outcome::Sdc
            }
        }

        fn name(&self) -> String {
            "SELFMUT".into()
        }
    }

    #[test]
    fn golden_identity_violations_fall_back_to_full_reruns() {
        let mut cfg = ScanConfig::new(TargetFilter::PathSuffix(".meta".into()));
        cfg.pick = WritePick::Last;
        cfg.parallel = false;
        cfg.replay = true;
        let result = scan_detailed(&SelfMutatingApp, &cfg).unwrap();
        assert!(!result.used_replay(), "identity-violating analyze must disable replay");
        assert_eq!(
            result.mode,
            ExecutionMode::FullRerun { reason: ReplayFallback::GoldenIdentity }
        );
        assert_eq!(result.tally.total(), 32);
    }

    #[test]
    fn detailed_scan_propagates_faulty_outputs() {
        let mut cfg = ScanConfig::new(TargetFilter::Any);
        cfg.parallel = false;
        cfg.flip = FlipMode::Mask(0xFF);
        let result = scan_detailed(&MiniFormatApp, &cfg).unwrap();
        for r in &result.runs {
            match r.byte.outcome {
                Outcome::Crash => assert!(r.output.is_none()),
                _ => {
                    let out = r.output.as_ref().expect("non-crash keeps its output");
                    // The scale byte's output must show the doubled mean.
                    if r.byte.byte_index == 5 {
                        assert!(out.mean != 20.0, "corrupted scale must move the mean");
                    }
                }
            }
        }
    }

    #[test]
    fn scan_parallel_equals_serial() {
        let mut a = ScanConfig::new(TargetFilter::Any);
        a.parallel = false;
        let mut b = a.clone();
        b.parallel = true;
        let ra = scan(&MiniFormatApp, &a).unwrap();
        let rb = scan(&MiniFormatApp, &b).unwrap();
        assert_eq!(ra.tally, rb.tally);
        for (x, y) in ra.bytes.iter().zip(&rb.bytes) {
            assert_eq!(x.outcome, y.outcome);
        }
    }

    #[test]
    fn field_map_lookup_and_validation() {
        let map = mini_field_map();
        assert_eq!(map.lookup(0).unwrap().name, "Magic");
        assert_eq!(map.lookup(3).unwrap().name, "Magic");
        assert_eq!(map.lookup(4).unwrap().name, "Version");
        assert_eq!(map.lookup(15).unwrap().name, "Reserved");
        assert!(map.lookup(16).is_none());
        assert_eq!(map.covered_bytes(), 16);
        assert_eq!(map.find("Ver").len(), 1);

        let overlap = FieldMap::new(vec![
            FieldSpan { start: 0, end: 4, name: "A".into() },
            FieldSpan { start: 2, end: 6, name: "B".into() },
        ]);
        assert!(overlap.is_err());
        let empty = FieldMap::new(vec![FieldSpan { start: 4, end: 4, name: "E".into() }]);
        assert!(empty.is_err());
    }

    #[test]
    fn fields_with_outcome_filter() {
        let mut cfg = ScanConfig::new(TargetFilter::Any);
        cfg.parallel = false;
        cfg.flip = FlipMode::Mask(0xFF);
        let result = scan(&MiniFormatApp, &cfg).unwrap();
        let fields = attribute(&result, &mini_field_map());
        let crashy = fields_with_outcome(&fields, Outcome::Crash);
        assert!(crashy.contains(&"Magic"));
        assert!(!crashy.contains(&"Reserved"));
    }

    #[test]
    fn run_with_byte_fault_single() {
        let (_, _, _, golden) =
            locate_write(&MiniFormatApp, &TargetFilter::Any, WritePick::Penultimate).unwrap();
        // Corrupt magic byte 0 -> crash.
        let (o, out, msg) = run_with_byte_fault(
            &MiniFormatApp,
            &golden,
            &TargetFilter::Any,
            2,
            0,
            ByteFlip::Xor(0xFF),
        );
        assert_eq!(o, Outcome::Crash);
        assert!(out.is_none());
        assert!(msg.unwrap().contains("bad magic"));
        // Corrupt a reserved byte -> benign.
        let (o, out, _) = run_with_byte_fault(
            &MiniFormatApp,
            &golden,
            &TargetFilter::Any,
            2,
            10,
            ByteFlip::Xor(0xFF),
        );
        assert_eq!(o, Outcome::Benign);
        assert!(out.is_some());
    }

    #[test]
    fn flip_mode_variants() {
        let mut rng = Rng::seed_from(1);
        for _ in 0..50 {
            match FlipMode::TwoBitsRandom.to_flip(&mut rng) {
                ByteFlip::Xor(m) => assert_eq!(m.count_ones(), 2),
                other => panic!("unexpected {:?}", other),
            }
        }
        assert_eq!(FlipMode::Bit(3).to_flip(&mut rng), ByteFlip::Xor(0b1000));
        assert_eq!(FlipMode::Mask(0xA5).to_flip(&mut rng), ByteFlip::Xor(0xA5));
    }
}
