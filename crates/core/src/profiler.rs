//! The I/O profiler (paper §III-C).
//!
//! "The goal of the I/O profiler is to count the number of times that
//! the primitive (i.e. configured in the fault signature) gets
//! executed during the execution. To this end, the I/O profiler
//! instruments the primitive inside the FUSE and executes the
//! application fault-free to obtain the total count."
//!
//! [`IoProfiler`] runs the workload once on a fresh FFISFS mount with
//! no faults armed, then reports per-primitive dynamic counts, the
//! count of *eligible* instances under a target filter, and the full
//! write trace (the HDF5 metadata scanner consumes the trace to locate
//! the metadata write).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ffis_vfs::{
    CallContext, CounterSnapshot, FfisFs, FileSystem, Interceptor, MemFs, Primitive,
    TraceInterceptor, TraceRecord, WriteAction,
};

use crate::fault::TargetFilter;

/// Counts invocations that match `(primitive, filter)` — the eligible
/// instance population the injector samples from (requirement R4:
/// uniform coverage over the corresponding file operations).
pub struct EligibleCounter {
    primitive: Primitive,
    filter: TargetFilter,
    count: AtomicU64,
}

impl EligibleCounter {
    /// New counter for a signature scope.
    pub fn new(primitive: Primitive, filter: TargetFilter) -> Self {
        EligibleCounter { primitive, filter, count: AtomicU64::new(0) }
    }

    /// Eligible instances observed.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }
}

impl Interceptor for EligibleCounter {
    fn on_call(&self, cx: &CallContext) {
        if cx.primitive == self.primitive && self.filter.matches(cx.path.as_deref()) {
            self.count.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn on_write(&self, _cx: &CallContext, _buf: &[u8]) -> WriteAction {
        WriteAction::Forward
    }
}

/// Result of a fault-free profiling run.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Per-primitive dynamic execution counts.
    pub counters: CounterSnapshot,
    /// Eligible-instance count for the profiled signature scope.
    pub eligible: u64,
    /// Full primitive trace of the run.
    pub trace: Vec<TraceRecord>,
}

impl ProfileReport {
    /// Write records (ordered) touching paths that match `filter`.
    pub fn writes_matching(&self, filter: &TargetFilter) -> Vec<&TraceRecord> {
        self.trace
            .iter()
            .filter(|r| r.primitive == Primitive::Write && filter.matches(r.path.as_deref()))
            .collect()
    }

    /// Render a profile table (one row per exercised primitive).
    pub fn table(&self) -> String {
        let mut s = String::from("primitive        count\n");
        for (p, c) in self.counters.nonzero() {
            s.push_str(&format!("{:<16} {}\n", p.ffis_name(), c));
        }
        s
    }
}

/// The I/O profiler: runs a workload fault-free and counts primitives.
pub struct IoProfiler {
    primitive: Primitive,
    filter: TargetFilter,
}

impl IoProfiler {
    /// Profiler for a signature scope.
    pub fn new(primitive: Primitive, filter: TargetFilter) -> Self {
        IoProfiler { primitive, filter }
    }

    /// Execute `workload` on a fresh mount with counting and tracing
    /// interceptors attached, fault-free. Returns `Err` if the workload
    /// itself fails (a workload that cannot run clean cannot be
    /// profiled).
    pub fn profile<T>(
        &self,
        workload: impl FnOnce(&dyn FileSystem) -> Result<T, String>,
    ) -> Result<(ProfileReport, T), String> {
        let (report, out, _fs) = self.profile_with(&[], workload)?;
        Ok((report, out))
    }

    /// [`IoProfiler::profile`], additionally attaching `extras`
    /// interceptors (e.g. a golden-trace
    /// [`ffis_vfs::TraceRecorder`]) and returning the backing
    /// filesystem so callers can inspect — or fork — the golden
    /// state the run produced.
    pub fn profile_with<T>(
        &self,
        extras: &[Arc<dyn Interceptor>],
        workload: impl FnOnce(&dyn FileSystem) -> Result<T, String>,
    ) -> Result<(ProfileReport, T, Arc<MemFs>), String> {
        self.profile_with_mount(extras, |ffs| workload(ffs))
    }

    /// [`IoProfiler::profile_with`], handing the workload the mounted
    /// [`FfisFs`] itself instead of the erased `&dyn FileSystem`, so a
    /// two-phase campaign driver can snapshot the mount's counters at
    /// the produce/analyze boundary ([`FfisFs::counters`]) — the
    /// phase-boundary [`CounterSnapshot`] that analyze-only read-site
    /// runs pre-seed their fresh mounts with.
    pub fn profile_with_mount<T>(
        &self,
        extras: &[Arc<dyn Interceptor>],
        workload: impl FnOnce(&FfisFs) -> Result<T, String>,
    ) -> Result<(ProfileReport, T, Arc<MemFs>), String> {
        let base = Arc::new(MemFs::new());
        let ffs = FfisFs::mount(base.clone());
        let counter = Arc::new(EligibleCounter::new(self.primitive, self.filter.clone()));
        let trace = Arc::new(TraceInterceptor::new());
        ffs.attach(counter.clone());
        ffs.attach(trace.clone());
        for extra in extras {
            ffs.attach(extra.clone());
        }
        let out = workload(&ffs)?;
        ffs.unmount();
        Ok((
            ProfileReport {
                counters: ffs.counters(),
                eligible: counter.count(),
                trace: trace.records(),
            },
            out,
            base,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffis_vfs::FileSystemExt;

    fn workload(fs: &dyn FileSystem) -> Result<u32, String> {
        fs.mkdir("/out", 0o755).map_err(|e| e.to_string())?;
        fs.write_file_chunked("/out/data.h5", &[0u8; 4096 * 3], 4096).map_err(|e| e.to_string())?;
        fs.write_file("/out/run.log", b"done\n").map_err(|e| e.to_string())?;
        Ok(7)
    }

    #[test]
    fn profiles_counts_and_returns_output() {
        let prof = IoProfiler::new(Primitive::Write, TargetFilter::Any);
        let (report, out) = prof.profile(workload).unwrap();
        assert_eq!(out, 7);
        assert_eq!(report.counters.get(Primitive::Write), 4); // 3 chunks + 1 log
        assert_eq!(report.counters.get(Primitive::Mkdir), 1);
        assert_eq!(report.eligible, 4);
        assert!(report.table().contains("FFIS_write"));
    }

    #[test]
    fn eligible_respects_filter() {
        let prof = IoProfiler::new(Primitive::Write, TargetFilter::PathSuffix(".h5".into()));
        let (report, _) = prof.profile(workload).unwrap();
        assert_eq!(report.eligible, 3);
        let writes = report.writes_matching(&TargetFilter::PathSuffix(".h5".into()));
        assert_eq!(writes.len(), 3);
        assert_eq!(writes[0].offset, Some(0));
        assert_eq!(writes[2].offset, Some(8192));
    }

    #[test]
    fn failing_workload_propagates_error() {
        let prof = IoProfiler::new(Primitive::Write, TargetFilter::Any);
        let r = prof.profile(|_fs| Err::<(), _>("boom".to_string()));
        assert_eq!(r.err().unwrap(), "boom");
    }

    #[test]
    fn profile_is_deterministic() {
        let prof = IoProfiler::new(Primitive::Write, TargetFilter::Any);
        let (a, _) = prof.profile(workload).unwrap();
        let (b, _) = prof.profile(workload).unwrap();
        assert_eq!(a.eligible, b.eligible);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(&b.trace) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn eligible_counter_counts_mknod_scope() {
        let prof = IoProfiler::new(Primitive::Mknod, TargetFilter::Any);
        let (report, _) = prof
            .profile(|fs| {
                fs.mknod("/a", ffis_vfs::NodeKind::Fifo, 0o644, 0).map_err(|e| e.to_string())?;
                fs.mknod("/b", ffis_vfs::NodeKind::Fifo, 0o644, 0).map_err(|e| e.to_string())?;
                Ok(())
            })
            .unwrap();
        assert_eq!(report.eligible, 2);
    }
}
