//! Statistics for fault-injection campaigns and post-analyses.
//!
//! The paper reports outcome *proportions* from 1,000-run campaigns
//! with "a 1%∼2% error bar on average for 95% confidence interval"
//! (§IV-C). This module provides the binomial interval machinery
//! behind those error bars (Wilson score, which is well-behaved at the
//! 0%/100% extremes the paper actually hits — e.g. Nyx DROPPED WRITE
//! = 1000/1000 SDC), descriptive statistics, histograms for Figure 8,
//! and the blocking analysis QMCA uses for Monte-Carlo error bars.

/// A binomial proportion with its 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Successes.
    pub k: u64,
    /// Trials.
    pub n: u64,
    /// Point estimate `k/n` (0 when `n == 0`).
    pub p: f64,
    /// Lower 95% bound.
    pub lo: f64,
    /// Upper 95% bound.
    pub hi: f64,
}

/// z-value for a two-sided 95% interval.
pub const Z95: f64 = 1.959_963_984_540_054;

/// Wilson score interval for `k` successes in `n` trials.
///
/// Preferred over the normal (Wald) interval because it stays inside
/// `[0, 1]` and does not collapse to zero width at `k = 0` or `k = n`.
pub fn wilson(k: u64, n: u64) -> Proportion {
    if n == 0 {
        return Proportion { k, n, p: 0.0, lo: 0.0, hi: 0.0 };
    }
    let nf = n as f64;
    let p = k as f64 / nf;
    let z = Z95;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt());
    Proportion { k, n, p, lo: (center - half).max(0.0), hi: (center + half).min(1.0) }
}

/// Normal-approximation (Wald) interval, provided for comparison with
/// the paper's "1–2% error bar" framing.
pub fn wald(k: u64, n: u64) -> Proportion {
    if n == 0 {
        return Proportion { k, n, p: 0.0, lo: 0.0, hi: 0.0 };
    }
    let nf = n as f64;
    let p = k as f64 / nf;
    let half = Z95 * (p * (1.0 - p) / nf).sqrt();
    Proportion { k, n, p, lo: (p - half).max(0.0), hi: (p + half).min(1.0) }
}

impl Proportion {
    /// Half-width of the interval ("error bar") in percentage points.
    pub fn error_bar_pct(&self) -> f64 {
        (self.hi - self.lo) * 50.0
    }
}

impl std::fmt::Display for Proportion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}% [{:.1}, {:.1}] ({}/{})",
            self.p * 100.0,
            self.lo * 100.0,
            self.hi * 100.0,
            self.k,
            self.n
        )
    }
}

/// Running mean / variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accumulator { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Summarize a slice: `(mean, stddev)`.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let mut acc = Accumulator::new();
    for &x in xs {
        acc.push(x);
    }
    (acc.mean(), acc.stddev())
}

/// Blocking analysis for autocorrelated series (Flyvbjerg–Petersen),
/// as used by QMCA to estimate Monte-Carlo error bars: repeatedly
/// average adjacent pairs; the error estimate plateaus once blocks
/// exceed the autocorrelation time. Returns `(mean, error)`.
pub fn blocking_error(series: &[f64]) -> (f64, f64) {
    let mut data: Vec<f64> = series.to_vec();
    if data.is_empty() {
        return (0.0, 0.0);
    }
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    let mut best_err = 0.0f64;
    while data.len() >= 4 {
        let n = data.len() as f64;
        let m = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1.0);
        let err = (var / n).sqrt();
        best_err = best_err.max(err);
        // Block: average adjacent pairs.
        data = data.chunks_exact(2).map(|c| 0.5 * (c[0] + c[1])).collect();
    }
    (mean, best_err)
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range clamping,
/// used to regenerate Figure 8 (halo-mass distributions).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// `bins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram { lo, hi, counts: vec![0; bins] }
    }

    /// Log₁₀-spaced variant: bins span `[10^lo_exp, 10^hi_exp)` in log space.
    /// Values are inserted by `add_log10`.
    pub fn log10(lo_exp: f64, hi_exp: f64, bins: usize) -> Self {
        Self::new(lo_exp, hi_exp, bins)
    }

    /// Insert a raw value.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = if t < 0.0 { 0 } else { ((t * bins as f64) as usize).min(bins - 1) };
        self.counts[idx] += 1;
    }

    /// Insert `log10(x)` (for log-spaced histograms).
    pub fn add_log10(&mut self, x: f64) {
        self.add(x.max(f64::MIN_POSITIVE).log10());
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center of bin `i` (in the histogram's axis space).
    pub fn center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Total inserted samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(center, count)` series, e.g. for CSV emission.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len()).map(|i| (self.center(i), self.counts[i])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_midrange_matches_wald_approximately() {
        let w = wilson(500, 1000);
        let a = wald(500, 1000);
        assert!((w.p - 0.5).abs() < 1e-12);
        assert!((w.lo - a.lo).abs() < 0.002);
        assert!((w.hi - a.hi).abs() < 0.002);
    }

    #[test]
    fn wilson_extremes_stay_in_bounds_with_width() {
        let zero = wilson(0, 1000);
        assert_eq!(zero.p, 0.0);
        assert!(zero.lo.abs() < 1e-12);
        assert!(zero.hi > 0.0 && zero.hi < 0.01);
        let full = wilson(1000, 1000);
        assert_eq!(full.p, 1.0);
        assert_eq!(full.hi, 1.0);
        assert!(full.lo < 1.0 && full.lo > 0.99);
    }

    #[test]
    fn paper_error_bar_claim_holds_for_1000_runs() {
        // §IV-C: 1,000 runs leave a 1–2% error bar at 95% confidence.
        // The worst case is p = 0.5.
        let worst = wilson(500, 1000);
        assert!(worst.error_bar_pct() <= 3.2, "bar = {}", worst.error_bar_pct());
        assert!(worst.error_bar_pct() >= 2.5);
        let typical = wilson(100, 1000);
        assert!(typical.error_bar_pct() < 2.0);
    }

    #[test]
    fn empty_trials_are_safe() {
        let p = wilson(0, 0);
        assert_eq!((p.p, p.lo, p.hi), (0.0, 0.0, 0.0));
        assert_eq!(wald(0, 0).p, 0.0);
    }

    #[test]
    fn accumulator_matches_two_pass() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 6);
        assert!((acc.mean() - 3.5).abs() < 1e-12);
        assert!((acc.variance() - 3.5).abs() < 1e-12);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 6.0);
        let (m, s) = mean_std(&xs);
        assert!((m - 3.5).abs() < 1e-12);
        assert!((s - 3.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn accumulator_empty_and_single() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        let mut one = Accumulator::new();
        one.push(7.0);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.sem(), 0.0);
    }

    #[test]
    fn blocking_error_on_iid_matches_sem() {
        let mut rng = crate::rng::Rng::seed_from(77);
        let xs: Vec<f64> = (0..4096).map(|_| rng.normal()).collect();
        let (mean, err) = blocking_error(&xs);
        assert!(mean.abs() < 0.1);
        let naive = 1.0 / (4096f64).sqrt();
        assert!(err > 0.5 * naive && err < 2.0 * naive, "err = {}", err);
    }

    #[test]
    fn blocking_error_grows_with_autocorrelation() {
        // AR(1) with strong correlation should report a larger error
        // than the naive i.i.d. estimate.
        let mut rng = crate::rng::Rng::seed_from(78);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..4096)
            .map(|_| {
                x = 0.95 * x + rng.normal();
                x
            })
            .collect();
        let (_, blocked) = blocking_error(&xs);
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1.0);
        let naive = (var / n).sqrt();
        assert!(blocked > 2.0 * naive, "blocked {} naive {}", blocked, naive);
    }

    #[test]
    fn blocking_handles_degenerate_input() {
        assert_eq!(blocking_error(&[]), (0.0, 0.0));
        let (m, e) = blocking_error(&[5.0]);
        assert_eq!(m, 5.0);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn histogram_basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert!(h.counts().iter().all(|&c| c == 1));
        assert_eq!(h.total(), 10);
        assert!((h.center(0) - 0.5).abs() < 1e-12);
        assert!((h.center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(99.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn histogram_log_spacing() {
        let mut h = Histogram::log10(0.0, 3.0, 3); // decades 1–10, 10–100, 100–1000
        h.add_log10(5.0);
        h.add_log10(50.0);
        h.add_log10(500.0);
        assert_eq!(h.counts(), &[1, 1, 1]);
        let series = h.series();
        assert_eq!(series.len(), 3);
        assert!((series[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn proportion_display_format() {
        let p = wilson(123, 1000);
        let s = p.to_string();
        assert!(s.contains("12.3%"));
        assert!(s.contains("123/1000"));
    }
}
