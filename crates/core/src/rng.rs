//! Deterministic pseudo-random number generation.
//!
//! Fault-injection campaigns must be *replayable*: given a seed, the
//! same runs select the same write instances, bit positions and
//! walker moves on every platform and every rerun (the paper repeats
//! 1,000-run campaigns and reports 95% confidence intervals; debugging
//! a single SDC case requires replaying exactly that case). We
//! therefore carry our own small generator rather than depend on an
//! external crate whose stream might change across versions:
//! xoshiro256++ (Blackman & Vigna) seeded via SplitMix64, the standard
//! pairing recommended by the algorithm authors.

/// SplitMix64 — used to expand a 64-bit seed into generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workhorse generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Seed deterministically from a single `u64`.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s, gauss_spare: None }
    }

    /// Derive an independent child stream (run `i` of a campaign).
    pub fn child(&self, i: u64) -> Rng {
        // Wash the child index through its own SplitMix64 stream before
        // mixing with the parent state, so consecutive indices yield
        // well-separated seeds.
        let washed = {
            let mut sm = SplitMix64::new(i);
            sm.next_u64() ^ sm.next_u64().rotate_left(31)
        };
        let mut sm = SplitMix64::new(self.s[0] ^ self.s[1].rotate_left(17) ^ washed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        Rng { s, gauss_spare: None }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift with a
    /// rejection step to avoid modulo bias. Panics when `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0) is meaningless");
        // 128-bit multiply-high technique.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        lo + self.gen_range(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal deviate (Box–Muller, caching the spare value).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid log(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn child_streams_are_independent_and_deterministic() {
        let root = Rng::seed_from(7);
        let mut c1 = root.child(1);
        let mut c1b = root.child(1);
        let mut c2 = root.child(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        let x1 = c1.next_u64();
        let x2 = c2.next_u64();
        assert_ne!(x1, x2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = Rng::seed_from(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.gen_range(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gen_range_uniformity_chi_square() {
        let mut r = Rng::seed_from(5);
        const K: usize = 10;
        const N: usize = 100_000;
        let mut counts = [0usize; K];
        for _ in 0..N {
            counts[r.gen_range(K as u64) as usize] += 1;
        }
        let expected = N as f64 / K as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 9 degrees of freedom; 99.9th percentile ≈ 27.88.
        assert!(chi2 < 27.88, "chi2 = {}", chi2);
    }

    #[test]
    #[should_panic]
    fn gen_range_zero_panics() {
        Rng::seed_from(0).gen_range(0);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from(9);
        const N: usize = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..N {
            let z = r.normal();
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / N as f64;
        let var = sum2 / N as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean = {}", mean);
        assert!((var - 1.0).abs() < 0.02, "var = {}", var);
    }

    #[test]
    fn normal_with_scales() {
        let mut r = Rng::seed_from(13);
        const N: usize = 50_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..N {
            let z = r.normal_with(10.0, 2.0);
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / N as f64;
        let var = sum2 / N as f64 - mean * mean;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "seed 17 should move something");
    }

    #[test]
    fn choose_behaviour() {
        let mut r = Rng::seed_from(23);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let one = [42u8];
        assert_eq!(r.choose(&one), Some(&42));
        let many = [1u8, 2, 3];
        for _ in 0..100 {
            assert!(many.contains(r.choose(&many).unwrap()));
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0 from the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn uniform_range() {
        let mut r = Rng::seed_from(29);
        for _ in 0..1000 {
            let x = r.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(31);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
