//! # ffis-core — FUSE-based Fault Injection for Storage
//!
//! Reproduction of the FFIS framework from *"Characterizing Impacts of
//! Storage Faults on HPC Applications: A Methodology and Insights"*
//! (CLUSTER 2021). FFIS models SSD partial-failure manifestations as
//! software-implemented faults planted on an application's I/O path,
//! without modifying the application (paper requirements R1–R4).
//!
//! The framework has the paper's three components (§III-C, Figure 4):
//!
//! * **Fault generator** ([`generator`]) — user configuration →
//!   validated [`FaultSignature`] (model + primitive + feature).
//! * **I/O profiler** ([`profiler`]) — fault-free run counting the
//!   dynamic executions of the target primitive.
//! * **Fault injector** ([`injector`]) — fires the fault at a
//!   uniformly random instance of the primitive.
//!
//! [`campaign`] orchestrates them into statistically significant
//! campaigns (1,000 runs with ~1–2% error bars at 95% confidence), and
//! [`metadata_scan`] implements the byte-by-byte scientific-file-format
//! metadata study of §IV-D. All three campaign frontends —
//! [`Campaign`], [`MixedCampaign`], and [`metadata_scan::scan_detailed`]
//! — execute through the shared [`engine`] (planner → executor →
//! sink): per-run strategies and random draws are resolved up front,
//! one serial/parallel fan-out schedules replay runs
//! shortest-suffix-first with reruns interleaved, and tallies stream
//! through a sink whose full-record retention can be bounded
//! (`CampaignConfig::keep_runs`) for paper-scale grids; see the
//! [`engine`] module docs for the engine laws.
//!
//! ## The two-phase contract and the replay fast path
//!
//! Every injection run repeats the same fault-free prefix before its
//! fault fires. The application contract makes that redundancy
//! removable *by construction*: a [`FaultApp`] is two separable
//! phases — [`FaultApp::produce`] (the write half) and
//! [`FaultApp::analyze`] (the read-back/classification half) — and
//! `run` is simply produce-then-analyze. Campaigns default to the
//! replay strategy: the golden run's mutating I/O is captured once as
//! a replayable trace (`ffis_vfs::trace`), log-spaced mid-trace
//! checkpoints fork the rebuilt state
//! ([`ffis_vfs::TraceCheckpoints`]), and each injection run forks the
//! nearest checkpoint preceding its target instance, replays only the
//! trace suffix — through the armed injector — at raw memcpy speed,
//! and executes application logic only in the analyze phase.
//! [`metadata_scan::scan`] specializes further, snapshotting
//! immediately before the (fixed) metadata write. Read-site campaigns
//! have their own fast path: the golden run's read ledger
//! ([`ffis_vfs::ReadLedger`]) locates the produce/analyze seam in the
//! eligible-read instance space, and analyze-phase targets skip
//! produce entirely ([`campaign::ExecutionMode::AnalyzeOnly`] — fork
//! the golden post-produce state, pre-seed the phase-boundary
//! counters, run only analyze with the fault armed), while
//! produce-phase targets rerun under
//! [`campaign::ReplayFallback::ProduceReadFault`]. Outcomes, injection
//! records, and crash messages are byte-identical to full
//! re-execution; the engine self-checks per campaign/scan and falls
//! back — recording why in [`campaign::ExecutionMode`] — when a law
//! is violated. `benches/scan_replay.rs`, `benches/campaign_replay.rs`
//! and `benches/read_replay.rs` measure the speedups and
//! `tests/replay_equivalence.rs` plus the analyze-only differential
//! pins hold the equivalence across all three paper workloads.
//!
//! ## Fault models (§III-B, Table I)
//!
//! | Model | Behaviour |
//! |---|---|
//! | BIT FLIP | flip 2 (configurable) consecutive bits of the write buffer |
//! | SHORN WRITE | persist only the first 3/8 or 7/8 of a 4 KiB block, at 512 B sector granularity, while reporting full success |
//! | DROPPED WRITE | ignore the write, report success |
//!
//! ```
//! use ffis_core::prelude::*;
//! use ffis_vfs::{FileSystem, FileSystemExt};
//!
//! // A miniature two-phase "application": produce writes a file;
//! // analyze reads it back and sums it. Every app written this way is
//! // replay-capable by construction.
//! struct Sum;
//! impl FaultApp for Sum {
//!     type Output = u64;
//!     fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
//!         fs.write_file_chunked("/data", &[1u8; 8192], 4096).map_err(|e| e.to_string())
//!     }
//!     fn analyze(&self, fs: &dyn FileSystem, _golden: Option<&u64>) -> Result<u64, String> {
//!         Ok(fs.read_to_vec("/data").map_err(|e| e.to_string())?
//!             .iter().map(|&b| b as u64).sum())
//!     }
//!     fn classify(&self, g: &u64, f: &u64) -> Outcome {
//!         if g == f { Outcome::Benign } else { Outcome::Sdc }
//!     }
//!     fn name(&self) -> String { "SUM".into() }
//! }
//!
//! // Campaigns run on the checkpointed replay fast path by default:
//! // produce executes once (golden capture); each injection run forks
//! // the nearest mid-trace checkpoint, replays the suffix through the
//! // armed injector, and analyzes.
//! let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::dropped_write()))
//!     .with_runs(10).with_seed(7).with_replay(true);
//! let fast = Campaign::new(&Sum, cfg.clone()).run().unwrap();
//! assert_eq!(fast.mode, ExecutionMode::Replay);
//! assert_eq!(fast.tally.sdc, 10); // every dropped 4 KiB block changes the sum
//!
//! // The reference full-rerun strategy produces identical results —
//! // and records why it ran.
//! let slow = Campaign::new(&Sum, cfg.with_replay(false)).run().unwrap();
//! assert_eq!(slow.mode, ExecutionMode::FullRerun { reason: ReplayFallback::Disabled });
//! assert_eq!(slow.tally, fast.tally);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod engine;
pub mod fault;
pub mod generator;
pub mod injector;
pub mod metadata_scan;
pub mod outcome;
pub mod profiler;
pub mod rng;
pub mod stats;

pub use campaign::{
    memo_default, replay_default, replay_opt_default, Campaign, CampaignConfig, CampaignError,
    CampaignResult, ExecutionMode, MemoFallback, MemoReport, MixedCampaign, MixedCampaignConfig,
    MixedCampaignResult, ReplayFallback, ReplayOptReport, RunAborted, RunObserver, RunResult,
    ShardReport,
};
pub use engine::{
    CampaignSpec, CancelToken, CompletionStatus, ExecutionPlan, JobFailure, JobState, JournalEntry,
    JournalError, JournalMeta, PlannedRun, RunJournal, RunStrategy, MIN_GRID,
};
pub use fault::{
    FaultModel, FaultSignature, InjectionSite, Mutation, ReadMutation, ShornFill, ShornKeep,
    TargetFilter,
};
pub use generator::{paper_signatures, read_signatures, FaultConfig};
pub use injector::{ArmedInjector, ByteFaultInjector, ByteFlip, InjectionRecord};
pub use metadata_scan::{
    attribute, fields_with_outcome, locate_write, run_with_byte_fault, scan, scan_detailed,
    ByteOutcome, DetailedScanResult, FieldMap, FieldOutcome, FieldSpan, FlipMode, ScanConfig,
    ScanResult, ScanRun, WritePick,
};
pub use outcome::{FaultApp, Outcome, OutcomeTally, SubstepSpec, OUTCOMES};
pub use profiler::{EligibleCounter, IoProfiler, ProfileReport};
pub use rng::Rng;
pub use stats::{blocking_error, mean_std, wilson, Accumulator, Histogram, Proportion};

/// Convenient glob import for applications and harnesses.
pub mod prelude {
    pub use crate::campaign::{
        Campaign, CampaignConfig, CampaignResult, ExecutionMode, MemoFallback, MemoReport,
        MixedCampaign, MixedCampaignConfig, MixedCampaignResult, ReplayFallback, RunAborted,
    };
    pub use crate::engine::{CancelToken, CompletionStatus};
    pub use crate::fault::{
        FaultModel, FaultSignature, InjectionSite, ShornFill, ShornKeep, TargetFilter,
    };
    pub use crate::outcome::{FaultApp, Outcome, OutcomeTally};
    pub use crate::rng::Rng;
}
