//! # ffis-core — FUSE-based Fault Injection for Storage
//!
//! Reproduction of the FFIS framework from *"Characterizing Impacts of
//! Storage Faults on HPC Applications: A Methodology and Insights"*
//! (CLUSTER 2021). FFIS models SSD partial-failure manifestations as
//! software-implemented faults planted on an application's I/O path,
//! without modifying the application (paper requirements R1–R4).
//!
//! The framework has the paper's three components (§III-C, Figure 4):
//!
//! * **Fault generator** ([`generator`]) — user configuration →
//!   validated [`FaultSignature`] (model + primitive + feature).
//! * **I/O profiler** ([`profiler`]) — fault-free run counting the
//!   dynamic executions of the target primitive.
//! * **Fault injector** ([`injector`]) — fires the fault at a
//!   uniformly random instance of the primitive.
//!
//! [`campaign`] orchestrates them into statistically significant
//! campaigns (1,000 runs with ~1–2% error bars at 95% confidence), and
//! [`metadata_scan`] implements the byte-by-byte scientific-file-format
//! metadata study of §IV-D.
//!
//! ## The fork+replay fast path
//!
//! Every injection run repeats the same fault-free prefix before its
//! fault fires. When an application implements [`FaultApp::verify`]
//! (the read-back/analysis half of its `run`), both drivers can skip
//! that redundancy: the golden run's mutating I/O is captured once as
//! a replayable trace (`ffis_vfs::trace`), each injection run replays
//! it — through the armed injector — into a copy-on-write
//! [`ffis_vfs::MemFs::fork`] at raw memcpy speed, and only the verify
//! phase executes application logic. [`metadata_scan::scan`] goes
//! further, snapshotting the filesystem immediately before the
//! metadata write so each scanned byte pays only the fork, the suffix
//! replay, and the verify phase. Outcomes are byte-identical to full
//! re-execution (the
//! engine self-checks per scan and falls back when an app cannot
//! guarantee it); `benches/scan_replay.rs` measures the speedup and
//! `tests/replay_equivalence.rs` pins the equivalence.
//!
//! ## Fault models (§III-B, Table I)
//!
//! | Model | Behaviour |
//! |---|---|
//! | BIT FLIP | flip 2 (configurable) consecutive bits of the write buffer |
//! | SHORN WRITE | persist only the first 3/8 or 7/8 of a 4 KiB block, at 512 B sector granularity, while reporting full success |
//! | DROPPED WRITE | ignore the write, report success |
//!
//! ```
//! use ffis_core::prelude::*;
//! use ffis_vfs::{FileSystem, FileSystemExt};
//!
//! // A miniature "application": writes a file, reads it back, sums it.
//! // The read-back half doubles as the `verify` phase, which unlocks
//! // the golden-trace replay fast path.
//! struct Sum;
//! impl Sum {
//!     fn read_back(&self, fs: &dyn FileSystem) -> Result<u64, String> {
//!         Ok(fs.read_to_vec("/data").map_err(|e| e.to_string())?
//!             .iter().map(|&b| b as u64).sum())
//!     }
//! }
//! impl FaultApp for Sum {
//!     type Output = u64;
//!     fn run(&self, fs: &dyn FileSystem) -> Result<u64, String> {
//!         fs.write_file_chunked("/data", &[1u8; 8192], 4096).map_err(|e| e.to_string())?;
//!         self.read_back(fs)
//!     }
//!     fn verify(&self, fs: &dyn FileSystem, _golden: &u64) -> Option<Result<u64, String>> {
//!         Some(self.read_back(fs))
//!     }
//!     fn classify(&self, g: &u64, f: &u64) -> Outcome {
//!         if g == f { Outcome::Benign } else { Outcome::Sdc }
//!     }
//!     fn name(&self) -> String { "SUM".into() }
//! }
//!
//! let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::dropped_write()))
//!     .with_runs(10).with_seed(7);
//! let result = Campaign::new(&Sum, cfg.clone()).run().unwrap();
//! assert_eq!(result.tally.total(), 10);
//! assert_eq!(result.tally.sdc, 10); // every dropped 4 KiB block changes the sum
//!
//! // Same campaign on the replay fast path: the application's write
//! // phase runs once (golden capture); each injection run is a trace
//! // replay plus `verify`. Outcomes are identical.
//! let fast = Campaign::new(&Sum, cfg.with_replay(true)).run().unwrap();
//! assert!(fast.used_replay);
//! assert_eq!(fast.tally, result.tally);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod fault;
pub mod generator;
pub mod injector;
pub mod metadata_scan;
pub mod outcome;
pub mod profiler;
pub mod rng;
pub mod stats;

pub use campaign::{Campaign, CampaignConfig, CampaignError, CampaignResult, RunResult};
pub use fault::{FaultModel, FaultSignature, Mutation, ShornFill, ShornKeep, TargetFilter};
pub use generator::{paper_signatures, FaultConfig};
pub use injector::{
    ArmedInjector, ByteFaultInjector, ByteFlip, InjectionRecord, ReadFaultInjector,
};
pub use metadata_scan::{
    attribute, fields_with_outcome, locate_write, run_with_byte_fault, scan, scan_detailed,
    ByteOutcome, DetailedScanResult, FieldMap, FieldOutcome, FieldSpan, FlipMode, ScanConfig,
    ScanResult, ScanRun, WritePick,
};
pub use outcome::{FaultApp, Outcome, OutcomeTally, OUTCOMES};
pub use profiler::{EligibleCounter, IoProfiler, ProfileReport};
pub use rng::Rng;
pub use stats::{blocking_error, mean_std, wilson, Accumulator, Histogram, Proportion};

/// Convenient glob import for applications and harnesses.
pub mod prelude {
    pub use crate::campaign::{Campaign, CampaignConfig, CampaignResult};
    pub use crate::fault::{FaultModel, FaultSignature, ShornFill, ShornKeep, TargetFilter};
    pub use crate::outcome::{FaultApp, Outcome, OutcomeTally};
    pub use crate::rng::Rng;
}
