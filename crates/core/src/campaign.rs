//! The campaign runner: profile → inject × N → classify → tally.
//!
//! Implements the full FFIS workflow of Figure 4: load the user
//! configuration, run the I/O profiler fault-free to obtain the
//! dynamic primitive count, then repeatedly (1) pick a uniformly
//! random instance of the target primitive, (2) mount a fresh FFISFS,
//! (3) run the application with the armed injector, (4) classify the
//! outcome against the golden run, until the configured number of
//! runs (statistical significance) is reached. Runs are independent,
//! so the campaign fans out across cores with rayon — the paper runs
//! its campaigns on a 24-core node.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ffis_vfs::{
    BatchForks, CheckpointStore, CounterSnapshot, FfisFs, Interceptor, MemFs, MemoStats, MemoStore,
    Placement, Primitive, ReadLedger, ReadRecord, TraceCheckpoints, TraceOp, TraceRecorder,
    PRIMITIVES,
};

use crate::engine::journal::{wire, JournalEntry};
use crate::engine::{
    self, CancelToken, CompletionStatus, Durability, EngineConfig, ExecutionPlan, JournalError,
    JournalMeta, PlannedRun, RunEvent, RunJournal, RunRecord, RunStrategy,
};
use crate::fault::{FaultSignature, TargetFilter};
use crate::injector::{ArmedInjector, InjectionRecord};
use crate::outcome::{FaultApp, Outcome, OutcomeTally, SubstepSpec};
use crate::profiler::{IoProfiler, ProfileReport};
use crate::rng::Rng;

/// Campaign configuration (the paper's user configuration plus the
/// execution knobs).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Fault signature to inject.
    pub signature: FaultSignature,
    /// Number of injection runs (paper: 1,000 per cell).
    pub runs: usize,
    /// Root seed; run `i` derives child stream `i`.
    pub seed: u64,
    /// Fan runs out across the rayon thread pool.
    pub parallel: bool,
    /// Golden-trace replay fast path (default **on**): instead of
    /// re-executing the application's produce phase per injection run,
    /// capture its mutating I/O once, fork the nearest log-spaced
    /// mid-trace checkpoint preceding each run's target instance,
    /// replay only the trace suffix through the armed injector, and
    /// run the application's [`FaultApp::analyze`] phase. Per-run
    /// outcomes, injection records, and crash messages are identical
    /// to full reruns; [`CampaignResult::mode`] records which strategy
    /// executed and — when the campaign fell back — why.
    pub replay: bool,
    /// Plan-aware replay optimizations (default **on** — see
    /// [`replay_opt_default`]): because every run's injection target
    /// is drawn at plan time (engine law 2), the campaign knows its
    /// full fork-offset demand before any checkpoint is built. With
    /// this knob on it (a) places the trace checkpoints against that
    /// demand instead of log-spaced (zero pre-target replay when the
    /// distinct targets fit the snapshot budget), (b) groups pending
    /// replay runs sharing a checkpoint into fork-once-replay-many
    /// batches (engine law 9), and (c) applies each batched run's
    /// post-target suffix to the mount's inner filesystem with
    /// adjacent sequential writes coalesced. All three are pure
    /// wall-clock optimizations — outcomes, injection records, crash
    /// messages, and run digests are byte-identical either way — and
    /// all three disengage automatically while a liveness watchdog
    /// ([`CampaignConfig::fuel`], [`CampaignConfig::wall_limit`]) is
    /// armed, since fuel counts per-op mount crossings.
    pub replay_opt: bool,
    /// Retain at most this many full [`RunResult`]s in
    /// [`CampaignResult::runs`] (`None`, the default, keeps every
    /// run). The kept set is a seed-stable reservoir chosen at plan
    /// time, so it is identical across reruns and `parallel` on/off;
    /// tallies always cover every run. Bound this for paper-scale
    /// campaigns (n=192 grids × 1,000 runs) where the buffered
    /// per-run records — crash messages, injection records — would
    /// otherwise dominate memory.
    pub keep_runs: Option<usize>,
    /// Shared [`CheckpointStore`]: campaigns whose golden runs record
    /// byte-identical traces (the common repro-experiment case — one
    /// campaign per fault model over one deterministic workload) share
    /// one built [`TraceCheckpoints`] through it instead of each
    /// rebuilding its own. `None` builds privately, as before.
    pub checkpoints: Option<Arc<CheckpointStore>>,
    /// Write every completed run to a [`RunJournal`] at this path. The
    /// journal is an append-only CRC-framed log flushed per run, so a
    /// killed campaign loses at most the runs in flight.
    pub journal: Option<PathBuf>,
    /// Resume from the journal at [`CampaignConfig::journal`] when it
    /// already exists: journaled runs feed the tally at cost 0 and
    /// only the pending set executes. The journal header must match
    /// this campaign's plan fingerprint, seed, and run count — a
    /// mismatch is a [`CampaignError::Journal`] error, never a silent
    /// splice. A missing journal file starts fresh (so `--resume` is
    /// safe to pass unconditionally).
    pub resume: bool,
    /// Cooperative cancellation token, checked between runs. On
    /// cancellation the campaign flushes completed runs to the journal
    /// and returns partial tallies with
    /// [`CompletionStatus::Interrupted`].
    pub cancel: Option<Arc<CancelToken>>,
    /// Per-run I/O-op fuel budget: each injection run's mount unwinds
    /// into crash classification ([`RunAborted::FuelExhausted`]) after
    /// this many primitive crossings. Deterministic — fuel counts
    /// crossings, not seconds — so the resume law holds for aborted
    /// runs. `None` (default) disables the watchdog. The golden run is
    /// never fueled: it must finish for a campaign to exist at all.
    pub fuel: Option<u64>,
    /// Wall-clock backstop per run, enforced at primitive crossings
    /// ([`RunAborted::DeadlineExceeded`]). Non-deterministic; off by
    /// default. Prefer [`CampaignConfig::fuel`].
    pub wall_limit: Option<Duration>,
    /// Live run-event observer (see [`RunObserver`]): called once per
    /// plan index — journal-resumed runs first, in index order, then
    /// each executed run from the worker that ran it. The daemon's
    /// NDJSON stream and live tally counters hang off this; it never
    /// affects results.
    pub observer: Option<RunObserver>,
    /// Execute only the half-open plan-index range `[start, end)` —
    /// this process's shard of a distributed fan-out (engine law 7).
    /// Planning, the golden run, and the journal header are identical
    /// across workers (the plan is always built whole); only execution
    /// and completion accounting restrict to the range. `None` (the
    /// default) runs the whole plan.
    pub index_range: Option<(usize, usize)>,
    /// Analyze memoization (default **on** — see [`memo_default`]):
    /// when the workload declares analyze sub-steps
    /// ([`FaultApp::analyze_substeps`]) and the campaign runs on a
    /// fast path, each injection run re-computes only the sub-steps
    /// whose read fingerprints its fault can actually change (the
    /// dirty cascade) and assembles every clean sub-step from the
    /// content-addressed memo store at cost 0. Engine law 8 guards the
    /// substitution — memoized analyze equals full analyze byte for
    /// byte — and [`CampaignResult::memo`] always records whether the
    /// layer engaged and, when it did not, why.
    pub memo: bool,
    /// Shared [`MemoStore`]: campaigns (and daemon jobs) handed the
    /// same store reuse each other's golden sub-step artifacts and
    /// per-run dirty artifacts — a warm store replays whole runs
    /// without touching the filesystem. `None` builds a private
    /// in-memory store per campaign.
    pub memo_store: Option<Arc<MemoStore>>,
}

/// A shareable live run callback: `(result, resumed)` per plan index,
/// resumed runs flagged `true`. Runs the reservoir drops are still
/// observed — the observer is the engine's event tap
/// ([`crate::engine::RunEvent`]), not the retention set.
///
/// Callbacks run on engine worker threads (possibly concurrently when
/// [`CampaignConfig::parallel`] is set), so they must be cheap and
/// internally synchronized.
#[derive(Clone)]
pub struct RunObserver(Arc<ObserverFn>);

/// The boxed callback type behind [`RunObserver`].
type ObserverFn = dyn Fn(&RunResult, bool) + Send + Sync;

impl RunObserver {
    /// Wrap a callback.
    pub fn new(f: impl Fn(&RunResult, bool) + Send + Sync + 'static) -> Self {
        RunObserver(Arc::new(f))
    }

    /// Invoke the callback for one run.
    pub fn call(&self, result: &RunResult, resumed: bool) {
        (self.0)(result, resumed)
    }
}

impl std::fmt::Debug for RunObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RunObserver(..)")
    }
}

/// Default value of [`CampaignConfig::replay`]: `true`, unless the
/// environment sets `FFIS_REPLAY=0` — the escape hatch CI uses to run
/// the whole test suite over the full-rerun reference path, keeping it
/// exercised without a second copy of every campaign test.
pub fn replay_default() -> bool {
    std::env::var("FFIS_REPLAY").map(|v| v != "0").unwrap_or(true)
}

/// Default value of [`CampaignConfig::memo`]: `true`, unless the
/// environment sets `FFIS_MEMO=0` — the escape hatch CI uses to run
/// multi-file campaigns over the whole-analyze reference path.
pub fn memo_default() -> bool {
    std::env::var("FFIS_MEMO").map(|v| v != "0").unwrap_or(true)
}

/// Default value of [`CampaignConfig::replay_opt`]: `true`, unless
/// the environment sets `FFIS_REPLAY_OPT=0` — the escape hatch CI
/// (and the `replay-opt` differential experiment's control arm) uses
/// to run campaigns over log-spaced placement with per-run mounts.
pub fn replay_opt_default() -> bool {
    std::env::var("FFIS_REPLAY_OPT").map(|v| v != "0").unwrap_or(true)
}

impl CampaignConfig {
    /// Config with paper defaults (1,000 runs, parallel, replay on —
    /// see [`replay_default`]).
    pub fn new(signature: FaultSignature) -> Self {
        CampaignConfig {
            signature,
            runs: 1000,
            seed: 0xFF15_0001,
            parallel: true,
            replay: replay_default(),
            replay_opt: replay_opt_default(),
            keep_runs: None,
            checkpoints: None,
            journal: None,
            resume: false,
            cancel: None,
            fuel: None,
            wall_limit: None,
            observer: None,
            index_range: None,
            memo: memo_default(),
            memo_store: None,
        }
    }

    /// Override the run count.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Execute only a plan-index range (see
    /// [`CampaignConfig::index_range`]).
    pub fn with_index_range(mut self, range: Option<(usize, usize)>) -> Self {
        self.index_range = range;
        self
    }

    /// Enable or disable the golden-trace replay fast path.
    pub fn with_replay(mut self, replay: bool) -> Self {
        self.replay = replay;
        self
    }

    /// Enable or disable the plan-aware replay optimizations (see
    /// [`CampaignConfig::replay_opt`]).
    pub fn with_replay_opt(mut self, replay_opt: bool) -> Self {
        self.replay_opt = replay_opt;
        self
    }

    /// Bound the retained per-run records (see
    /// [`CampaignConfig::keep_runs`]).
    pub fn with_keep_runs(mut self, keep_runs: Option<usize>) -> Self {
        self.keep_runs = keep_runs;
        self
    }

    /// Share a [`CheckpointStore`] across campaigns (see
    /// [`CampaignConfig::checkpoints`]).
    pub fn with_checkpoints(mut self, store: Arc<CheckpointStore>) -> Self {
        self.checkpoints = Some(store);
        self
    }

    /// Journal completed runs to `path` (see
    /// [`CampaignConfig::journal`]).
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Resume from an existing journal (see
    /// [`CampaignConfig::resume`]).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Attach a cooperative cancellation token (see
    /// [`CampaignConfig::cancel`]).
    pub fn with_cancel(mut self, cancel: Arc<CancelToken>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Arm the per-run I/O-op fuel watchdog (see
    /// [`CampaignConfig::fuel`]).
    pub fn with_fuel(mut self, budget: u64) -> Self {
        self.fuel = Some(budget);
        self
    }

    /// Arm the per-run wall-clock backstop (see
    /// [`CampaignConfig::wall_limit`]).
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Attach a live run-event observer (see
    /// [`CampaignConfig::observer`]).
    pub fn with_observer(mut self, observer: RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Enable or disable the analyze memoization layer (see
    /// [`CampaignConfig::memo`]).
    pub fn with_memo(mut self, memo: bool) -> Self {
        self.memo = memo;
        self
    }

    /// Share a [`MemoStore`] across campaigns (see
    /// [`CampaignConfig::memo_store`]).
    pub fn with_memo_store(mut self, store: Arc<MemoStore>) -> Self {
        self.memo_store = Some(store);
        self
    }
}

/// Why a campaign configured for replay executed full reruns instead.
///
/// The fallback is never silent: the reason is recorded in
/// [`CampaignResult::mode`] and surfaced by the bench report tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayFallback {
    /// Replay was disabled in the [`CampaignConfig`].
    Disabled,
    /// The fault signature targets a non-`Write` primitive. Parameter
    /// faults (mknod/chmod/truncate) could make a replayed op *fail*
    /// where the real application would have tolerated the error and
    /// continued — unknowable from a trace.
    NonWritePrimitive,
    /// The fault signature targets a **produce-phase** read instance.
    /// Produce-phase read faults are non-replayable *by construction*:
    /// the fault fires while the application is still writing, so the
    /// rest of the run is downstream of the corrupted transfer and
    /// only a full produce+analyze rerun can model it (the golden
    /// trace records no reads to replay, and no checkpoint of the
    /// fault-free run can predict the steered control flow). Runs
    /// targeting **analyze-phase** read instances do not fall back at
    /// all — they take the [`ExecutionMode::AnalyzeOnly`] fast path.
    ProduceReadFault,
    /// The application's analyze phase mutated the filesystem during
    /// the golden run, violating the read-only-analyze law — the
    /// recorded trace would double-apply those writes.
    AnalyzeWrites,
    /// The golden trace recorded a different number of eligible writes
    /// than the profiler counted (an attempted eligible write failed:
    /// counted at the interceptor, recorded only on success), so
    /// replay instance numbering would diverge from the injectors'.
    TraceMismatch,
    /// Analyze on the golden run's final filesystem state did not
    /// classify [`Outcome::Benign`] — the golden-identity law failed.
    GoldenIdentity,
    /// The uninjected full replay self-check failed to rebuild state
    /// that analyzes benign.
    ReplayCheck,
}

impl ReplayFallback {
    /// Short reason token for report tables.
    pub fn reason(self) -> &'static str {
        match self {
            ReplayFallback::Disabled => "disabled",
            ReplayFallback::NonWritePrimitive => "non-write-primitive",
            ReplayFallback::ProduceReadFault => "produce-read-fault",
            ReplayFallback::AnalyzeWrites => "analyze-writes",
            ReplayFallback::TraceMismatch => "trace-mismatch",
            ReplayFallback::GoldenIdentity => "golden-identity",
            ReplayFallback::ReplayCheck => "replay-check",
        }
    }
}

impl std::fmt::Display for ReplayFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.reason())
    }
}

/// Why the analyze memoization layer did not engage for a campaign.
///
/// Like [`ReplayFallback`], the fallback is never silent: the reason
/// is recorded in [`CampaignResult::memo`] and surfaced by the bench
/// report tables. A campaign that falls back still runs correctly —
/// every run takes the whole-analyze path the memo layer would have
/// shortened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoFallback {
    /// Memoization was disabled in the [`CampaignConfig`].
    Disabled,
    /// The workload declares no analyze sub-steps
    /// ([`FaultApp::analyze_substeps`] returned `None`) — the
    /// single-file regimes of every stock app.
    NoSubsteps,
    /// The campaign is not on a fast path (replay or analyze-only):
    /// full reruns re-execute produce live, so no golden sub-step
    /// basis exists to memoize against.
    NotFastPath,
    /// A liveness watchdog ([`CampaignConfig::fuel`] /
    /// [`CampaignConfig::wall_limit`]) is armed. Skipping clean
    /// sub-steps changes how many primitive crossings a run makes
    /// before the budget trips, so memoized and full analyze could
    /// classify the same run differently — law 8 cannot hold.
    Liveness,
    /// A sub-step read outside its declared input set during golden
    /// validation, so dirty-cascade reachability would be unsound.
    SubstepInputs,
    /// The concatenated sub-step read streams did not equal the golden
    /// whole-analyze read stream, so per-run injector instance
    /// numbering would diverge.
    SubstepStream,
    /// Assembling the golden sub-step artifacts did not classify
    /// [`Outcome::Benign`] (or a golden sub-step failed outright) —
    /// the memo identity law failed on the fault-free run.
    SubstepIdentity,
}

impl MemoFallback {
    /// Short reason token for report tables.
    pub fn reason(self) -> &'static str {
        match self {
            MemoFallback::Disabled => "memo-disabled",
            MemoFallback::NoSubsteps => "no-substeps",
            MemoFallback::NotFastPath => "not-fast-path",
            MemoFallback::Liveness => "liveness-watchdog",
            MemoFallback::SubstepInputs => "substep-inputs",
            MemoFallback::SubstepStream => "substep-stream",
            MemoFallback::SubstepIdentity => "substep-identity",
        }
    }
}

impl std::fmt::Display for MemoFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.reason())
    }
}

/// What the analyze memoization layer did for one campaign: whether it
/// engaged, why it fell back when it did not, and the store traffic it
/// generated (hits = artifacts served from the memo store, misses =
/// live computations, invalidations = dirty sub-steps re-run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoReport {
    /// Did memoized analyze execute the runs?
    pub engaged: bool,
    /// Declared sub-steps (0 when the workload declares none).
    pub substeps: usize,
    /// Why the layer fell back, when it did not engage.
    pub fallback: Option<MemoFallback>,
    /// Memo-store traffic attributable to this campaign (a delta —
    /// shared stores carry traffic from other campaigns too).
    pub stats: MemoStats,
}

impl MemoReport {
    /// A report for a campaign where the layer fell back.
    pub fn not_engaged(fallback: MemoFallback) -> Self {
        MemoReport {
            engaged: false,
            substeps: 0,
            fallback: Some(fallback),
            stats: MemoStats::default(),
        }
    }

    /// Short status token for report tables: `memoized` when engaged,
    /// otherwise the fallback reason.
    pub fn reason(&self) -> &'static str {
        if self.engaged {
            "memoized"
        } else {
            self.fallback.map(MemoFallback::reason).unwrap_or("memoized")
        }
    }
}

/// Which execution strategy ran a campaign's injection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Checkpointed golden-trace replay: fork + suffix replay +
    /// analyze per run.
    Replay,
    /// Analyze-only re-execution for analyze-phase read-site faults:
    /// fork the golden post-produce filesystem, pre-seed the fresh
    /// mount's counters with the golden produce-phase
    /// [`CounterSnapshot`], and run only [`FaultApp::analyze`] live
    /// with the fault armed. Byte-equivalent to a full rerun because
    /// read faults never touch device state and produce's writes are
    /// data-independent by law.
    AnalyzeOnly,
    /// Memoized analyze for analyze-phase read-site faults in a
    /// workload that declares analyze sub-steps: fork the golden
    /// post-produce filesystem, pre-seed the counters captured at the
    /// dirty sub-step's start, re-run only that sub-step with the
    /// fault armed, and assemble it with the cached golden artifacts
    /// of every clean sub-step. Byte-equivalent to
    /// [`ExecutionMode::AnalyzeOnly`] (and hence to a full rerun)
    /// under engine law 8.
    IncrementalAnalyze,
    /// Full application re-execution (produce + analyze) per run.
    FullRerun {
        /// Why the replay fast path did not engage.
        reason: ReplayFallback,
    },
    /// Read-site campaign whose eligible instances straddle the phase
    /// seam: analyze-phase targets execute [`ExecutionMode::AnalyzeOnly`],
    /// produce-phase targets execute full reruns with
    /// [`ReplayFallback::ProduceReadFault`] recorded. Per-run
    /// [`RunResult::mode`] tells which strategy produced each run, so
    /// nothing is silent.
    PhaseSplit,
}

impl ExecutionMode {
    /// Did the replay fast path execute the runs?
    pub fn is_replay(self) -> bool {
        matches!(self, ExecutionMode::Replay)
    }

    /// Does this mode skip re-executing the produce phase (replay or
    /// analyze-only) for at least some runs?
    pub fn is_fast_path(self) -> bool {
        matches!(
            self,
            ExecutionMode::Replay
                | ExecutionMode::AnalyzeOnly
                | ExecutionMode::IncrementalAnalyze
                | ExecutionMode::PhaseSplit
        )
    }
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionMode::Replay => f.write_str("replay"),
            ExecutionMode::AnalyzeOnly => f.write_str("analyze-only"),
            ExecutionMode::IncrementalAnalyze => f.write_str("incremental-analyze"),
            ExecutionMode::FullRerun { reason } => write!(f, "rerun({})", reason),
            ExecutionMode::PhaseSplit => {
                f.write_str("split(analyze-only|rerun(produce-read-fault))")
            }
        }
    }
}

/// Why a watchdog aborted a wedged injection run.
///
/// An aborted run is *data*, not an error: corrupted metadata steering
/// an application into an unbounded I/O loop is a real failure
/// manifestation, and the paper's scheme files it under crash. The
/// watchdogs unwind the run into the normal crash classification path
/// and record the trigger here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunAborted {
    /// The run exhausted its I/O-op fuel budget
    /// ([`CampaignConfig::fuel`]). Deterministic: the abort lands at
    /// the same primitive crossing on every execution.
    FuelExhausted {
        /// The budget that ran out.
        budget: u64,
    },
    /// The run outlived its wall-clock deadline
    /// ([`CampaignConfig::wall_limit`]). Non-deterministic backstop.
    DeadlineExceeded {
        /// The configured limit, in milliseconds.
        limit_ms: u64,
    },
}

impl RunAborted {
    /// Short reason token for report tables.
    pub fn reason(self) -> &'static str {
        match self {
            RunAborted::FuelExhausted { .. } => "fuel-exhausted",
            RunAborted::DeadlineExceeded { .. } => "deadline-exceeded",
        }
    }
}

impl std::fmt::Display for RunAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunAborted::FuelExhausted { budget } => {
                write!(f, "aborted: I/O fuel exhausted (budget {budget} ops)")
            }
            RunAborted::DeadlineExceeded { limit_ms } => {
                write!(f, "aborted: wall-clock deadline exceeded ({limit_ms} ms)")
            }
        }
    }
}

/// Result of one injection run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Run index within the campaign.
    pub run: usize,
    /// Classified outcome.
    pub outcome: Outcome,
    /// The armed instance (1-based) this run targeted.
    pub target_instance: u64,
    /// What the injector actually did (None = never fired).
    pub injection: Option<InjectionRecord>,
    /// Crash message, when the run crashed.
    pub crash_message: Option<String>,
    /// The execution strategy that produced *this* run. Equal to the
    /// campaign-level [`CampaignResult::mode`] for single-signature
    /// campaigns; in a [`MixedCampaign`] it varies per run (write-site
    /// shards replay, read-site shards rerun).
    pub mode: ExecutionMode,
    /// Set when a liveness watchdog aborted this run (always paired
    /// with [`Outcome::Crash`] and a synthesized crash message).
    pub aborted: Option<RunAborted>,
}

/// Stable wire code for a [`ReplayFallback`] (journal payload encoding).
fn fallback_code(f: ReplayFallback) -> u8 {
    match f {
        ReplayFallback::Disabled => 0,
        ReplayFallback::NonWritePrimitive => 1,
        ReplayFallback::ProduceReadFault => 2,
        ReplayFallback::AnalyzeWrites => 3,
        ReplayFallback::TraceMismatch => 4,
        ReplayFallback::GoldenIdentity => 5,
        ReplayFallback::ReplayCheck => 6,
    }
}

fn fallback_from_code(c: u8) -> Option<ReplayFallback> {
    Some(match c {
        0 => ReplayFallback::Disabled,
        1 => ReplayFallback::NonWritePrimitive,
        2 => ReplayFallback::ProduceReadFault,
        3 => ReplayFallback::AnalyzeWrites,
        4 => ReplayFallback::TraceMismatch,
        5 => ReplayFallback::GoldenIdentity,
        6 => ReplayFallback::ReplayCheck,
        _ => return None,
    })
}

impl RunResult {
    /// Serialize the journal payload: everything the engine frame
    /// (`index`, `outcome`, `fired`) does not already carry. The
    /// encoding uses the journal's [`wire`] helpers; bumping its shape
    /// requires bumping [`crate::engine::journal::JOURNAL_SCHEMA`].
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        wire::put_u64(&mut buf, self.target_instance);
        match &self.injection {
            None => buf.push(0),
            Some(i) => {
                buf.push(1);
                buf.push(i.primitive.index() as u8);
                wire::put_u64(&mut buf, i.instance);
                wire::put_u64(&mut buf, i.prim_seq);
                wire::put_opt_str(&mut buf, i.path.as_deref());
                match i.offset {
                    None => buf.push(0),
                    Some(o) => {
                        buf.push(1);
                        wire::put_u64(&mut buf, o);
                    }
                }
                wire::put_u64(&mut buf, i.len as u64);
                wire::put_str(&mut buf, &i.detail);
            }
        }
        wire::put_opt_str(&mut buf, self.crash_message.as_deref());
        match self.mode {
            ExecutionMode::Replay => buf.push(0),
            ExecutionMode::AnalyzeOnly => buf.push(1),
            ExecutionMode::FullRerun { reason } => {
                buf.push(2);
                buf.push(fallback_code(reason));
            }
            ExecutionMode::PhaseSplit => buf.push(3),
            ExecutionMode::IncrementalAnalyze => buf.push(4),
        }
        match self.aborted {
            None => buf.push(0),
            Some(RunAborted::FuelExhausted { budget }) => {
                buf.push(1);
                wire::put_u64(&mut buf, budget);
            }
            Some(RunAborted::DeadlineExceeded { limit_ms }) => {
                buf.push(2);
                wire::put_u64(&mut buf, limit_ms);
            }
        }
        buf
    }

    /// Decode one journaled run. `None` means the payload is corrupt
    /// or inconsistent (e.g. `fired` without an injection record) —
    /// the resume path drops such entries and re-executes the run.
    fn decode(entry: &JournalEntry) -> Option<RunResult> {
        let mut r = wire::Reader::new(&entry.payload);
        let target_instance = r.u64()?;
        let injection = match r.u8()? {
            0 => None,
            1 => {
                let primitive = *PRIMITIVES.get(r.u8()? as usize)?;
                let instance = r.u64()?;
                let prim_seq = r.u64()?;
                let path = r.opt_str()?;
                let offset = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    _ => return None,
                };
                let len = r.u64()? as usize;
                let detail = r.str()?;
                Some(InjectionRecord { primitive, instance, prim_seq, path, offset, len, detail })
            }
            _ => return None,
        };
        if injection.is_some() != entry.fired {
            return None;
        }
        let crash_message = r.opt_str()?;
        let mode = match r.u8()? {
            0 => ExecutionMode::Replay,
            1 => ExecutionMode::AnalyzeOnly,
            2 => ExecutionMode::FullRerun { reason: fallback_from_code(r.u8()?)? },
            3 => ExecutionMode::PhaseSplit,
            4 => ExecutionMode::IncrementalAnalyze,
            _ => return None,
        };
        let aborted = match r.u8()? {
            0 => None,
            1 => Some(RunAborted::FuelExhausted { budget: r.u64()? }),
            2 => Some(RunAborted::DeadlineExceeded { limit_ms: r.u64()? }),
            _ => return None,
        };
        if r.remaining() != 0 {
            return None;
        }
        Some(RunResult {
            run: entry.index,
            outcome: entry.outcome,
            target_instance,
            injection,
            crash_message,
            mode,
            aborted,
        })
    }
}

/// FNV-1a, the workspace's standing digest primitive (the same
/// parameters the differential test suites pin campaign behavior
/// with).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01B3);
        }
    }
}

/// FNV-1a digest over retained run records: run index, outcome,
/// target instance, the full injection record (or the `no-fire`
/// marker), and the crash message. Byte-compatible with the digest the
/// read/write differential suite pins, so resume-law tests can compare
/// an interrupted+resumed campaign against an uninterrupted control
/// with one number.
fn digest_runs(runs: &[RunResult]) -> u64 {
    let mut h = Fnv::new();
    for r in runs {
        h.eat(&(r.run as u64).to_le_bytes());
        h.eat(r.outcome.name().as_bytes());
        h.eat(&r.target_instance.to_le_bytes());
        match &r.injection {
            Some(i) => {
                h.eat(i.primitive.ffis_name().as_bytes());
                h.eat(&i.instance.to_le_bytes());
                h.eat(&i.prim_seq.to_le_bytes());
                h.eat(i.path.as_deref().unwrap_or("-").as_bytes());
                h.eat(&i.offset.unwrap_or(u64::MAX).to_le_bytes());
                h.eat(&(i.len as u64).to_le_bytes());
                h.eat(i.detail.as_bytes());
            }
            None => h.eat(b"no-fire"),
        }
        h.eat(r.crash_message.as_deref().unwrap_or("-").as_bytes());
    }
    h.0
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Outcome tally with CI accessors. Always covers every executed
    /// run, even those whose full records were not retained.
    pub tally: OutcomeTally,
    /// Retained per-run results (in run order). All runs unless
    /// [`CampaignConfig::keep_runs`] bounded the reservoir.
    pub runs: Vec<RunResult>,
    /// The fault-free profile that sized the injection space.
    pub profile: ProfileReport,
    /// The execution strategy that ran the injection runs, including
    /// the reason when a replay-configured campaign fell back.
    pub mode: ExecutionMode,
    /// FNV-1a fingerprint of the execution plan (every run's index,
    /// shard, target instance, injector seed, and strategy). Bound
    /// into the journal header: resume refuses a journal whose
    /// fingerprint differs.
    pub plan_fingerprint: u64,
    /// Did the plan drain fully, or did cancellation stop it early?
    /// Tallies always cover exactly the completed (executed + resumed)
    /// runs.
    pub status: CompletionStatus,
    /// Runs this invocation actually executed (excludes journaled
    /// ones).
    pub executed: usize,
    /// Runs replayed from the journal at cost 0.
    pub resumed: usize,
    /// What the analyze memoization layer did: engaged or the recorded
    /// fallback reason, plus this campaign's memo-store traffic.
    pub memo: MemoReport,
    /// What the plan-aware replay optimizations did: demand placement,
    /// suffix/overshoot accounting, and batched-arm counters. Purely
    /// observational — never part of [`CampaignResult::run_digest`].
    pub replay_opt: ReplayOptReport,
}

impl CampaignResult {
    /// Did the checkpointed replay fast path execute the runs?
    pub fn used_replay(&self) -> bool {
        self.mode.is_replay()
    }

    /// FNV-1a digest over the retained run records — the one number
    /// the resume law compares: an interrupted+resumed campaign must
    /// digest identically to an uninterrupted control.
    pub fn run_digest(&self) -> u64 {
        digest_runs(&self.runs)
    }
    /// Runs with a given outcome.
    pub fn runs_with(&self, o: Outcome) -> impl Iterator<Item = &RunResult> {
        self.runs.iter().filter(move |r| r.outcome == o)
    }

    /// Group crash runs by the leading token of their message — a
    /// quick taxonomy of *where* the stack gave up (file-format
    /// validation vs. application checks vs. analysis tooling).
    /// Returns `(message prefix, count)` sorted by descending count.
    pub fn crash_breakdown(&self) -> Vec<(String, u64)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for r in self.runs_with(Outcome::Crash) {
            let msg = r.crash_message.as_deref().unwrap_or("<no message>");
            // First clause up to ':' keeps the error source, drops the
            // per-run specifics (offsets, sizes).
            let key = msg.split(':').next().unwrap_or(msg).trim().to_string();
            *counts.entry(key).or_insert(0) += 1;
        }
        let mut out: Vec<(String, u64)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The header row matching [`CampaignResult::csv_row`].
    pub fn csv_header() -> &'static str {
        "label,benign,detected,sdc,crash,n,mode"
    }

    /// One CSV row: `label,benign,detected,sdc,crash,n,mode`. Labels
    /// containing commas, quotes, or newlines are RFC 4180-quoted so
    /// the row always parses to exactly seven fields.
    pub fn csv_row(&self, label: &str) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            csv_field(label),
            self.tally.benign,
            self.tally.detected,
            self.tally.sdc,
            self.tally.crash,
            self.tally.total(),
            self.mode
        )
    }
}

/// RFC 4180 field escaping: quote when the value contains a delimiter,
/// a quote, or a line break; double embedded quotes.
fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Campaign errors (distinct from application crashes, which are data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The fault signature failed validation.
    BadSignature(String),
    /// The golden (fault-free) run failed — nothing to compare against.
    GoldenRunFailed(String),
    /// The profiler found no eligible instance to inject into.
    NoEligibleInstances,
    /// The run journal could not be created or resumed (plan
    /// fingerprint mismatch, corrupt header, I/O failure).
    Journal(JournalError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::BadSignature(m) => write!(f, "invalid fault signature: {}", m),
            CampaignError::GoldenRunFailed(m) => write!(f, "golden run failed: {}", m),
            CampaignError::NoEligibleInstances => {
                f.write_str("no eligible primitive instances to inject into")
            }
            CampaignError::Journal(e) => write!(f, "run journal: {}", e),
        }
    }
}

impl std::error::Error for CampaignError {}

/// The campaign driver.
pub struct Campaign<'a, A: FaultApp> {
    app: &'a A,
    config: CampaignConfig,
}

impl<'a, A: FaultApp> Campaign<'a, A> {
    /// New campaign over `app`.
    pub fn new(app: &'a A, config: CampaignConfig) -> Self {
        Campaign { app, config }
    }

    /// Execute the whole workflow.
    pub fn run(&self) -> Result<CampaignResult, CampaignError> {
        self.config.signature.validate().map_err(CampaignError::BadSignature)?;

        // Phase 1+2: golden run doubles as the profiling run — the
        // paper executes the application fault-free once to both count
        // primitives and capture the reference output. When a fast
        // path is configured (the default), the same run also records
        // the golden trace (with a watermark between the two phases so
        // the read-only-analyze law can be checked) and — for
        // read-site signatures — the read ledger plus the
        // phase-boundary counter snapshot the analyze-only strategy
        // pre-seeds its mounts with.
        let site_write = self.config.signature.primitive == Primitive::Write;
        let site_read = self.config.signature.primitive == Primitive::Read;
        let record = self.config.replay && (site_write || site_read);
        let profiler =
            IoProfiler::new(self.config.signature.primitive, self.config.signature.target.clone());
        let recorder = Arc::new(TraceRecorder::new());
        let ledger = Arc::new(ReadLedger::new());
        // The memo gate (engine law 8) needs the golden analyze read
        // stream even for write-site signatures, so the ledger rides
        // along whenever the workload declares sub-steps. Attaching it
        // only records — it never perturbs counters or the trace.
        let substeps = if self.config.memo { self.app.analyze_substeps() } else { None };
        let extras: Vec<Arc<dyn Interceptor>> = match (record, site_read || substeps.is_some()) {
            (false, _) => Vec::new(),
            (true, false) => vec![recorder.clone()],
            (true, true) => vec![recorder.clone(), ledger.clone()],
        };
        let produced_ops = std::cell::Cell::new(0usize);
        let boundary = std::cell::Cell::new(CounterSnapshot::default());
        let (profile, golden, base) = profiler
            .profile_with_mount(&extras, |ffs| {
                self.app.produce(ffs)?;
                produced_ops.set(recorder.len());
                ledger.mark_produce_end();
                boundary.set(ffs.counters());
                self.app.analyze(ffs, None)
            })
            .map_err(CampaignError::GoldenRunFailed)?;
        if profile.eligible == 0 {
            return Err(CampaignError::NoEligibleInstances);
        }

        // Every per-run random draw happens *now*, before any plan is
        // built, from the same per-run child streams as always: run
        // `i` draws from `root.child(i)` (engine law 2). Drawing
        // up front is what makes the fork-offset demand available to
        // checkpoint placement — the specs depend only on the seed and
        // the eligible count, never on the plan.
        let root = Rng::seed_from(self.config.seed);
        let specs: Vec<InjectionSpec> = (0..self.config.runs)
            .map(|i| {
                let mut rng = root.child(i as u64);
                // "generates a random number from 0 to count-1" →
                // 1-based instance index in [1, count].
                let target_instance = rng.gen_range(profile.eligible) + 1;
                let seed = rng.next_u64();
                InjectionSpec { target_instance, seed }
            })
            .collect();
        // The plan-aware replay optimizations disengage while a
        // liveness watchdog is armed: fuel counts per-op mount
        // crossings, so placement- or batching-induced suffix changes
        // would alter exhaustion points (mirrors the memo gate below).
        let replay_opt = self.config.replay_opt
            && self.config.fuel.is_none()
            && self.config.wall_limit.is_none();

        let (mode, plan) = if !self.config.replay {
            (ExecutionMode::FullRerun { reason: ReplayFallback::Disabled }, None)
        } else if site_write {
            let attempted_writes = profile.counters.get(Primitive::Write);
            match self.replay_plan(
                recorder.take_ops(),
                produced_ops.get(),
                profile.eligible,
                attempted_writes,
                &golden,
                &base,
                replay_opt.then_some(specs.as_slice()),
            ) {
                Ok(plan) => (ExecutionMode::Replay, Some(CampaignPlan::Replay(plan))),
                Err(reason) => (ExecutionMode::FullRerun { reason }, None),
            }
        } else if site_read {
            let basis = analyze_only_basis(
                self.app,
                &recorder.take_ops(),
                produced_ops.get(),
                &ledger,
                boundary.get(),
                &profile,
                &golden,
                &base,
            );
            match basis.and_then(|basis| {
                analyze_only_plan(basis, &ledger, &self.config.signature.target, profile.eligible)
            }) {
                Ok(plan) => (plan.campaign_mode(), Some(CampaignPlan::AnalyzeOnly(plan))),
                Err(reason) => (ExecutionMode::FullRerun { reason }, None),
            }
        } else {
            (ExecutionMode::FullRerun { reason: ReplayFallback::NonWritePrimitive }, None)
        };

        // The analyze memoization gate (engine law 8) — never silent:
        // either the sub-step laws validate against the golden run and
        // the basis attaches to the fast-path plan, or the fallback
        // reason lands in [`CampaignResult::memo`].
        let mut plan = plan;
        let mut mode = mode;
        let memo_store = match (&substeps, self.config.memo) {
            (Some(_), true) => Some(
                self.config.memo_store.clone().unwrap_or_else(|| Arc::new(MemoStore::in_memory())),
            ),
            _ => None,
        };
        let stats_before = memo_store.as_ref().map(|s| s.stats()).unwrap_or_default();
        let mut memo_report = MemoReport {
            engaged: false,
            substeps: substeps.as_ref().map(Vec::len).unwrap_or(0),
            fallback: None,
            stats: MemoStats::default(),
        };
        if !self.config.memo {
            memo_report.fallback = Some(MemoFallback::Disabled);
        } else if substeps.is_none() {
            memo_report.fallback = Some(MemoFallback::NoSubsteps);
        } else if self.config.fuel.is_some() || self.config.wall_limit.is_some() {
            memo_report.fallback = Some(MemoFallback::Liveness);
        } else if plan.is_none() {
            memo_report.fallback = Some(MemoFallback::NotFastPath);
        } else if ledger.len() as u64 != profile.counters.get(Primitive::Read) {
            // The stream-identity law compares against the ledger; a
            // ledger that missed counted reads cannot anchor it.
            memo_report.fallback = Some(MemoFallback::SubstepStream);
        } else {
            let specs = substeps.clone().expect("checked above");
            let store = memo_store.clone().expect("created when sub-steps are declared");
            let golden_records = ledger.records();
            let golden_analyze = &golden_records[ledger.produce_reads()..];
            match &mut plan {
                None => unreachable!("gated on plan.is_none() above"),
                Some(CampaignPlan::Replay(rp)) => match substep_memo(
                    self.app,
                    specs,
                    golden_analyze,
                    boundary.get(),
                    &golden,
                    &base,
                    &store,
                ) {
                    Ok(m) => {
                        rp.memo = Some(Arc::new(m));
                        memo_report.engaged = true;
                    }
                    Err(f) => memo_report.fallback = Some(f),
                },
                Some(CampaignPlan::AnalyzeOnly(ap)) => match substep_memo(
                    self.app,
                    specs,
                    golden_analyze,
                    boundary.get(),
                    &golden,
                    &base,
                    &store,
                ) {
                    Ok(m) => {
                        let target = &self.config.signature.target;
                        let eligible_ranges = m
                            .read_ranges
                            .iter()
                            .map(|&(start, end)| {
                                let before = golden_analyze[..start]
                                    .iter()
                                    .filter(|r| target.matches(r.path.as_deref()))
                                    .count() as u64;
                                let within = golden_analyze[start..end]
                                    .iter()
                                    .filter(|r| target.matches(r.path.as_deref()))
                                    .count() as u64;
                                (before, within)
                            })
                            .collect();
                        ap.memo =
                            Some(Arc::new(IncrementalMemo { memo: Arc::new(m), eligible_ranges }));
                        memo_report.engaged = true;
                        mode = ap.campaign_mode();
                    }
                    Err(f) => memo_report.fallback = Some(f),
                },
            }
        }
        let plan = plan.map(Arc::new);

        // Phase 3: N injection runs through the shared engine,
        // resolving each pre-drawn spec to its planned strategy.
        let golden = Arc::new(golden);
        let fallback = match mode {
            ExecutionMode::FullRerun { reason } => Some(reason),
            _ => None,
        };
        let planned: Vec<PlannedRun<InjectionSpec>> = specs
            .iter()
            .enumerate()
            .map(|(i, &spec)| {
                let strategy = match (&plan, fallback) {
                    (Some(p), _) => p.strategy_for(spec.target_instance),
                    (None, Some(reason)) => RunStrategy::Rerun { reason },
                    (None, None) => unreachable!("fast-path modes always carry a plan"),
                };
                PlannedRun { index: i, shard: 0, strategy, spec }
            })
            .collect();
        let replay_report = replay_opt_report(&planned, plan.as_deref(), replay_opt);
        let fingerprint = plan_fingerprint(&planned, 1);
        let meta = JournalMeta {
            fingerprint,
            seed: self.config.seed,
            runs: self.config.runs as u64,
            shards: 1,
            context: format!("app={} mode={} eligible={}", self.app.name(), mode, profile.eligible),
        };
        let (journal, resumed) =
            open_journal(self.config.journal.as_deref(), self.config.resume, meta)?;
        let eplan = ExecutionPlan::new(planned, 1);
        let engine_cfg = EngineConfig {
            parallel: self.config.parallel,
            keep_runs: self.config.keep_runs,
            keep_seed: self.config.seed,
        };
        let liveness = Liveness { fuel: self.config.fuel, wall: self.config.wall_limit };
        let persist_fn = journal.as_ref().map(|j| {
            move |index: usize, outcome: Outcome, fired: bool, r: &RunResult| {
                j.lock().unwrap_or_else(|e| e.into_inner()).append(
                    index,
                    outcome,
                    fired,
                    &r.encode(),
                );
            }
        });
        let observe_fn = self
            .config
            .observer
            .as_ref()
            .map(|obs| move |ev: RunEvent<'_, RunResult>| obs.call(ev.payload, ev.resumed));
        let durability = Durability {
            resumed,
            cancel: self.config.cancel.as_deref(),
            persist: persist_fn
                .as_ref()
                .map(|f| f as &(dyn Fn(usize, Outcome, bool, &RunResult) + Sync)),
            observe: observe_fn.as_ref().map(|f| f as &(dyn Fn(RunEvent<'_, RunResult>) + Sync)),
            index_range: self.config.index_range,
        };
        // Checkpoint-grouped batch execution (engine law 9): pending
        // replay runs sharing a checkpoint get a lazily built batch of
        // per-target mini-forks; memoized replay runs batch through
        // the same reconstruction with the dirty-cascade analyze. A
        // batch that fails to build (or lacks a run's target) degrades
        // to the classic per-run arm — byte-identical either way.
        let opt_counters = ReplayOptCounters::default();
        let batching = replay_opt && matches!(plan.as_deref(), Some(CampaignPlan::Replay(_)));
        let out = engine::execute_durable_batched(
            &eplan,
            &engine_cfg,
            durability,
            |pr| if batching { pr.strategy.batch_key() } else { None },
            |members| {
                let Some(CampaignPlan::Replay(rp)) = plan.as_deref() else { return None };
                let targets: Vec<usize> = members
                    .iter()
                    .map(|&i| rp.eligible_ops[(specs[i].target_instance - 1) as usize])
                    .collect();
                let RunStrategy::Replay { checkpoint, .. } =
                    rp.strategy_for(specs[members[0]].target_instance)
                else {
                    return None;
                };
                let batch = rp.cache.fork_at_targets(checkpoint, &targets).ok()?;
                opt_counters.batches.fetch_add(1, Ordering::Relaxed);
                Some(batch)
            },
            |pr, batch| {
                let result = match (batch, plan.as_deref()) {
                    (Some(batch), Some(CampaignPlan::Replay(rp))) => match &rp.memo {
                        Some(memo) => execute_memoized_batched(
                            self.app,
                            &self.config.signature,
                            rp,
                            memo,
                            batch,
                            &golden,
                            pr.index,
                            pr.spec.target_instance,
                            pr.spec.seed,
                            &opt_counters,
                        ),
                        None => execute_run_batched(
                            self.app,
                            &self.config.signature,
                            rp,
                            batch,
                            &golden,
                            pr.index,
                            pr.spec.target_instance,
                            pr.spec.seed,
                            &opt_counters,
                        ),
                    },
                    _ => None,
                }
                .unwrap_or_else(|| {
                    execute_run(
                        self.app,
                        &self.config.signature,
                        plan.as_deref(),
                        pr.strategy,
                        &golden,
                        pr.index,
                        pr.spec.target_instance,
                        pr.spec.seed,
                        liveness,
                    )
                });
                RunRecord {
                    outcome: result.outcome,
                    fired: result.injection.is_some(),
                    payload: result,
                }
            },
        );
        let replay_report = replay_report.with_counters(&opt_counters);

        if let Some(store) = &memo_store {
            let after = store.stats();
            memo_report.stats = MemoStats {
                hits: after.hits.saturating_sub(stats_before.hits),
                misses: after.misses.saturating_sub(stats_before.misses),
                invalidations: after.invalidations.saturating_sub(stats_before.invalidations),
            };
        }

        Ok(CampaignResult {
            tally: out.tally,
            runs: out.kept,
            profile,
            mode,
            plan_fingerprint: fingerprint,
            status: out.status,
            executed: out.executed,
            resumed: out.resumed,
            memo: memo_report,
            replay_opt: replay_report,
        })
    }

    /// Gate and validate the replay fast path, building the mid-trace
    /// checkpoint cache. The campaign-wide replay laws (read-only
    /// analyze, attempted-vs-recorded write counts, golden identity,
    /// uninjected-replay fidelity) live in [`shared_replay_cache`] —
    /// one implementation, shared with [`MixedCampaign`]'s write-site
    /// shards so the engagement rules cannot drift apart. This adds
    /// the per-signature check: the trace must contain exactly as many
    /// eligible writes as the profiler counted, or replay instance
    /// numbering would diverge from the injector's.
    ///
    /// (The `Write`-primitive gate is applied by the caller before any
    /// trace is recorded: buffer-level faults — `Replace` keeps the
    /// length, `Drop` skips the device write — can never make a
    /// replayed op fail, so the straight-line trace stays faithful.)
    #[allow(clippy::too_many_arguments)]
    fn replay_plan(
        &self,
        ops: Vec<TraceOp>,
        produced_ops: usize,
        eligible: u64,
        attempted_writes: u64,
        golden: &A::Output,
        golden_fs: &MemFs,
        demand_specs: Option<&[InjectionSpec]>,
    ) -> Result<ReplayPlan, ReplayFallback> {
        let eligible_ops = eligible_write_ops(&ops, &self.config.signature.target);
        if eligible_ops.len() as u64 != eligible {
            return Err(ReplayFallback::TraceMismatch);
        }
        // With plan-aware placement enabled, the pre-drawn injection
        // specs resolve to trace op indices — the exact fork offsets
        // the checkpoint builder should place snapshots at.
        let demand: Option<Vec<usize>> = demand_specs.map(|specs| {
            specs.iter().map(|s| eligible_ops[(s.target_instance - 1) as usize]).collect()
        });
        let cache = shared_replay_cache(
            self.app,
            ops,
            produced_ops,
            attempted_writes,
            golden,
            golden_fs,
            self.config.checkpoints.as_deref(),
            demand.as_deref(),
        )?;
        Ok(ReplayPlan { cache, eligible_ops, memo: None })
    }
}

/// Plan-time per-run data of an injection campaign: the uniformly
/// drawn 1-based target instance and the injector's seed, both fixed
/// before execution starts (engine law 2).
#[derive(Debug, Clone, Copy)]
struct InjectionSpec {
    target_instance: u64,
    seed: u64,
}

/// FNV-1a fingerprint of an execution plan: shard count, run count,
/// and every run's `(index, shard, target instance, injector seed,
/// strategy)`. Because all random draws happen at plan time (engine
/// law 2), two invocations with the same configuration fingerprint
/// identically — and any change to grid, seed, signature, strategy
/// regime, or run count changes the fingerprint, which is exactly the
/// set of things a journal resume must refuse to splice across.
fn plan_fingerprint(planned: &[PlannedRun<InjectionSpec>], shards: usize) -> u64 {
    let mut h = Fnv::new();
    h.eat(&(shards as u64).to_le_bytes());
    h.eat(&(planned.len() as u64).to_le_bytes());
    for pr in planned {
        h.eat(&(pr.index as u64).to_le_bytes());
        h.eat(&(pr.shard as u64).to_le_bytes());
        h.eat(&pr.spec.target_instance.to_le_bytes());
        h.eat(&pr.spec.seed.to_le_bytes());
        match pr.strategy {
            RunStrategy::Replay { checkpoint, suffix_len } => {
                h.eat(&[0]);
                h.eat(&(checkpoint as u64).to_le_bytes());
                h.eat(&(suffix_len as u64).to_le_bytes());
            }
            RunStrategy::AnalyzeOnly => h.eat(&[1]),
            RunStrategy::Rerun { reason } => h.eat(&[2, fallback_code(reason)]),
            RunStrategy::IncrementalAnalyze { cost } => {
                h.eat(&[3]);
                h.eat(&(cost as u64).to_le_bytes());
            }
        }
    }
    h.0
}

/// Per-run watchdog bundle, armed on every injection run's mount —
/// never on the golden run, which must complete for the campaign to
/// exist at all.
#[derive(Debug, Clone, Copy)]
struct Liveness {
    fuel: Option<u64>,
    wall: Option<Duration>,
}

impl Liveness {
    fn arm(&self, ffs: &FfisFs) {
        if let Some(budget) = self.fuel {
            ffs.set_fuel(budget);
        }
        if let Some(limit) = self.wall {
            ffs.set_deadline(limit);
        }
    }
}

/// What the plan-aware replay optimizations
/// ([`CampaignConfig::replay_opt`]) did for one campaign: plan-level
/// suffix/overshoot accounting plus the batched arm's run-time
/// counters. Purely observational — none of this feeds run digests or
/// journal payloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayOptReport {
    /// Were the optimizations armed (knob on, no liveness watchdog)?
    pub engaged: bool,
    /// Did the checkpoint set come from demand-driven placement?
    pub demand_placed: bool,
    /// Σ over planned replay runs of the suffix each replays from its
    /// checkpoint (plan-level; resumed runs included).
    pub replayed_suffix_ops: u64,
    /// Σ over planned replay runs of the minimal possible suffix
    /// (`trace len − target op`).
    pub minimal_suffix_ops: u64,
    /// `replayed − minimal`: pre-target ops the placement failed to
    /// skip. Demand placement drives this toward zero.
    pub overshoot: u64,
    /// Batch contexts built this invocation (resumed runs never
    /// batch).
    pub batches: u64,
    /// Runs executed through a batch context.
    pub batched_runs: u64,
    /// Vectored write applications issued while coalescing batched
    /// suffixes.
    pub coalesced_calls: u64,
    /// Trace ops folded into those vectored applications.
    pub coalesced_ops: u64,
    /// Tail ops the memoized batched arm dropped because no dirty
    /// analyze sub-step declares their path as input — suffix bytes
    /// never copied at all.
    pub skipped_tail_ops: u64,
}

impl ReplayOptReport {
    /// Fold the executor-side counters into the plan-level report.
    fn with_counters(mut self, c: &ReplayOptCounters) -> Self {
        self.batches = c.batches.load(Ordering::Relaxed);
        self.batched_runs = c.batched_runs.load(Ordering::Relaxed);
        self.coalesced_calls = c.coalesced_calls.load(Ordering::Relaxed);
        self.coalesced_ops = c.coalesced_ops.load(Ordering::Relaxed);
        self.skipped_tail_ops = c.skipped_tail_ops.load(Ordering::Relaxed);
        self
    }
}

/// Shared run-time counters of the batched replay arm (referenced by
/// the engine's worker closures; relaxed ordering — they are pure
/// telemetry).
#[derive(Debug, Default)]
struct ReplayOptCounters {
    batches: AtomicU64,
    batched_runs: AtomicU64,
    coalesced_calls: AtomicU64,
    coalesced_ops: AtomicU64,
    skipped_tail_ops: AtomicU64,
}

/// Plan-level half of [`ReplayOptReport`]: suffix and overshoot
/// accounting over the planned replay runs, against the write-site
/// plan's placement.
fn replay_opt_report(
    planned: &[PlannedRun<InjectionSpec>],
    plan: Option<&CampaignPlan>,
    engaged: bool,
) -> ReplayOptReport {
    let mut report = ReplayOptReport { engaged, ..ReplayOptReport::default() };
    let Some(CampaignPlan::Replay(rp)) = plan else {
        return report;
    };
    let n = rp.cache.ops().len() as u64;
    for pr in planned {
        if let RunStrategy::Replay { suffix_len, .. } = pr.strategy {
            report.replayed_suffix_ops += suffix_len as u64;
            let target_op = rp.eligible_ops[(pr.spec.target_instance - 1) as usize] as u64;
            report.minimal_suffix_ops += n - target_op;
        }
    }
    report.overshoot = report.replayed_suffix_ops.saturating_sub(report.minimal_suffix_ops);
    report.demand_placed = matches!(rp.cache.placement(), Placement::Demand(_));
    report
}

/// Execute one batched replay run (engine law 9): fork the batch's
/// pre-target mini-checkpoint, step only the target op through the
/// mount (the armed crossing, observing full-replay numbering from
/// the mini-point's pre-seeded prefix counters), apply the remaining
/// suffix to the mount's inner filesystem with sequential writes
/// coalesced, restore analyze-time counter numbering from the
/// recorded tail delta, then analyze. Returns `None` when the batch
/// carries no fork for this run's target — the caller falls back to
/// the classic arm, which is byte-identical.
#[allow(clippy::too_many_arguments)]
fn execute_run_batched<A: FaultApp>(
    app: &A,
    signature: &FaultSignature,
    plan: &ReplayPlan,
    batch: &BatchForks,
    golden: &A::Output,
    run: usize,
    target_instance: u64,
    seed: u64,
    counters: &ReplayOptCounters,
) -> Option<RunResult> {
    let target_op = plan.eligible_ops[(target_instance - 1) as usize];
    let fork = batch.for_target(target_op)?;
    counters.batched_runs.fetch_add(1, Ordering::Relaxed);
    // The mini-point sits exactly at the target op, so the eligible
    // writes already "seen" are precisely the earlier instances.
    let injector = Arc::new(ArmedInjector::resuming(
        signature.clone(),
        target_instance,
        seed,
        target_instance - 1,
    ));
    let (ffs, mut cursor) = fork.point().mount_fork();
    ffs.attach(injector.clone());
    let ops = plan.cache.ops();
    let app_result = catch_unwind(AssertUnwindSafe(|| -> Result<A::Output, String> {
        cursor.step(&*ffs, &ops[target_op]).map_err(|e| e.to_string())?;
        // The fault has fired (or deliberately dropped its write);
        // nothing needs per-op visibility any more, so the tail
        // applies straight to the inner filesystem, coalesced.
        let stats = cursor
            .replay_coalesced(&**ffs.inner(), &ops[target_op + 1..])
            .map_err(|e| e.to_string())?;
        counters.coalesced_calls.fetch_add(stats.coalesced_calls as u64, Ordering::Relaxed);
        counters.coalesced_ops.fetch_add(stats.coalesced_ops as u64, Ordering::Relaxed);
        ffs.preseed_counters(&fork.tail_counters());
        app.analyze(&*ffs, Some(golden))
    }));
    ffs.unmount();
    Some(finish_run(
        app,
        golden,
        run,
        target_instance,
        injector.record(),
        ExecutionMode::Replay,
        app_result,
    ))
}

/// The memoized sibling of [`execute_run_batched`]: the same
/// mini-fork / armed-target-step / coalesced-tail state
/// reconstruction, followed by the dirty-cascade analyze of
/// [`execute_replay_memoized`] instead of a whole analyze (the dirty
/// set and run-key memoization are plan-derived, so they are
/// identical to the unbatched arm's). Returns `None` when the batch
/// carries no fork for this run's target — the caller falls back to
/// the classic memoized arm, which is byte-identical.
#[allow(clippy::too_many_arguments)]
fn execute_memoized_batched<A: FaultApp>(
    app: &A,
    signature: &FaultSignature,
    plan: &ReplayPlan,
    memo: &SubstepMemo,
    batch: &BatchForks,
    golden: &A::Output,
    run: usize,
    target_instance: u64,
    seed: u64,
    counters: &ReplayOptCounters,
) -> Option<RunResult> {
    let mode = ExecutionMode::Replay;
    let target_op = plan.eligible_ops[(target_instance - 1) as usize];
    let fork = batch.for_target(target_op)?;
    let dirty: Vec<usize> = match plan.cache.ops()[target_op].write_path() {
        Some(p) => {
            memo.specs.iter().enumerate().filter(|(_, s)| s.reads(p)).map(|(i, _)| i).collect()
        }
        // A write op without a path cannot be attributed; treat every
        // sub-step as dirty (conservative, still exact).
        None => (0..memo.specs.len()).collect(),
    };
    memo.store.note_hits((memo.specs.len() - dirty.len()) as u64);
    memo.store.note_invalidations(dirty.len() as u64);
    let run_key = memo_run_key(memo.golden_key, signature, target_instance, seed);
    if let Some(bytes) = memo.store.get(&run_key) {
        if let Some(entry) = decode_memo_run(&bytes) {
            return Some(finish_memo_run(app, memo, golden, run, target_instance, mode, entry));
        }
    }
    counters.batched_runs.fetch_add(1, Ordering::Relaxed);
    let injector = Arc::new(ArmedInjector::resuming(
        signature.clone(),
        target_instance,
        seed,
        target_instance - 1,
    ));
    let (ffs, mut cursor) = fork.point().mount_fork();
    ffs.attach(injector.clone());
    let ops = plan.cache.ops();
    let result = catch_unwind(AssertUnwindSafe(|| -> MemoRunOutput<A> {
        cursor.step(&*ffs, &ops[target_op]).map_err(|e| e.to_string())?;
        // Only the dirty sub-steps re-read reconstructed state (the
        // clean ones assemble from memo artifacts, and analyze-time
        // counters preseed from the recorded tail delta either way),
        // so the tail filters down to the paths the dirty set
        // declares — the same read-set contract the dirty cascade
        // itself rests on. For a multi-file app this drops almost the
        // whole tail: only the injected file's ops replay.
        let keep = |p: &str| dirty.iter().any(|&i| memo.specs[i].reads(p));
        let stats = cursor
            .replay_coalesced_filtered(&**ffs.inner(), &ops[target_op + 1..], &keep)
            .map_err(|e| e.to_string())?;
        counters.coalesced_calls.fetch_add(stats.coalesced_calls as u64, Ordering::Relaxed);
        counters.coalesced_ops.fetch_add(stats.coalesced_ops as u64, Ordering::Relaxed);
        counters.skipped_tail_ops.fetch_add(stats.skipped_ops as u64, Ordering::Relaxed);
        ffs.preseed_counters(&fork.tail_counters());
        let mut assembled: Vec<Vec<u8>> = Vec::with_capacity(memo.specs.len());
        let mut dirty_artifacts: Vec<(usize, Vec<u8>)> = Vec::with_capacity(dirty.len());
        for i in 0..memo.specs.len() {
            if dirty.contains(&i) {
                let art = app.analyze_substep(&*ffs, i, Some(golden))?;
                dirty_artifacts.push((i, art.clone()));
                assembled.push(art);
            } else {
                assembled.push(memo.artifacts[i].as_ref().clone());
            }
        }
        let out = app.assemble(&assembled, Some(golden))?;
        Ok((out, dirty_artifacts))
    }));
    ffs.unmount();
    let injection = injector.record();
    match &result {
        Ok(Ok((_, arts))) => memo.store.put(&run_key, &encode_memo_run(&injection, Ok(arts))),
        Ok(Err(msg)) => memo.store.put(&run_key, &encode_memo_run(&injection, Err(msg))),
        Err(_) => {} // Panicked runs are never memoized.
    }
    let app_result = match result {
        Ok(Ok((out, _))) => Ok(Ok(out)),
        Ok(Err(e)) => Ok(Err(e)),
        Err(p) => Err(p),
    };
    Some(finish_run(app, golden, run, target_instance, injection, mode, app_result))
}

/// Open (create or resume) the configured journal and decode any
/// journaled runs — the one implementation both campaign drivers use,
/// so resume validation cannot drift between them. Resume with no
/// journal file on disk starts fresh; entries whose payload fails to
/// decode are dropped (the run re-executes) rather than trusted.
#[allow(clippy::type_complexity)]
fn open_journal(
    path: Option<&std::path::Path>,
    resume: bool,
    meta: JournalMeta,
) -> Result<(Option<Mutex<RunJournal>>, HashMap<usize, (Outcome, bool, RunResult)>), CampaignError>
{
    let Some(path) = path else {
        return Ok((None, HashMap::new()));
    };
    if resume && path.exists() {
        let (journal, entries) = RunJournal::resume(path, &meta).map_err(CampaignError::Journal)?;
        let resumed = entries
            .values()
            .filter_map(|e| RunResult::decode(e).map(|r| (e.index, (e.outcome, e.fired, r))))
            .collect();
        Ok((Some(Mutex::new(journal)), resumed))
    } else {
        let journal = RunJournal::create(path, meta).map_err(CampaignError::Journal)?;
        Ok((Some(Mutex::new(journal)), HashMap::new()))
    }
}

/// Op indices of the trace's eligible writes under `target` (instance
/// `k` is element `k-1`) — the one definition of write-site
/// eligibility both campaign drivers index injections with. Takes the
/// raw op stream (not a built [`TraceCheckpoints`]) so the planner
/// can derive its fork-offset demand *before* checkpoint placement.
fn eligible_write_ops(ops: &[TraceOp], target: &TargetFilter) -> Vec<usize> {
    ops.iter()
        .enumerate()
        .filter(|(_, op)| op.is_write() && target.matches(op.write_path()))
        .map(|(i, _)| i)
        .collect()
}

/// The campaign's prepared replay fast path: the checkpointed golden
/// trace plus the op index of every eligible write (instance `k` is
/// `eligible_ops[k-1]`). The checkpoint cache sits behind an `Arc` so
/// a [`MixedCampaign`] can share one cache across all its write-site
/// shards.
struct ReplayPlan {
    cache: Arc<TraceCheckpoints>,
    eligible_ops: Vec<usize>,
    /// Engaged analyze memoization basis (engine law 8). When present,
    /// the replay arm re-computes only the sub-steps that declare the
    /// injected op's path as an input and assembles the rest from the
    /// memo store. The per-run strategy, mode, and plan fingerprint
    /// stay `Replay` — memoization is a pure analyze-side substitution
    /// on the write-site path.
    memo: Option<Arc<SubstepMemo>>,
}

impl ReplayPlan {
    /// Resolve the planned strategy for one target instance: the
    /// nearest checkpoint preceding its trace op, and the suffix
    /// length the run will replay from there (the scheduler's cost
    /// key).
    fn strategy_for(&self, target_instance: u64) -> RunStrategy {
        let target_op = self.eligible_ops[(target_instance - 1) as usize];
        let points = self.cache.points();
        let checkpoint = points.partition_point(|p| p.index() <= target_op).saturating_sub(1);
        let suffix_len = self.cache.ops().len() - points[checkpoint].index();
        RunStrategy::Replay { checkpoint, suffix_len }
    }
}

/// The validated per-campaign basis of the analyze-only read-site fast
/// path: the golden post-produce filesystem (read-only analyze means
/// the golden run's *final* state is byte-identical to its
/// post-produce state) and the phase-boundary counter snapshot every
/// analyze-only mount pre-seeds. Shards of a [`MixedCampaign`] share
/// one basis behind `Arc`s; the per-signature phase split lives in
/// [`AnalyzeOnlyPlan`].
#[derive(Clone)]
struct AnalyzeOnlyBasis {
    base: Arc<MemFs>,
    boundary: CounterSnapshot,
}

/// A read-site campaign's prepared fast path: the shared
/// [`AnalyzeOnlyBasis`] plus the signature's phase seam in eligible
/// instance space — instances `1..=produce_eligible` fire during
/// produce (full rerun, [`ReplayFallback::ProduceReadFault`]), later
/// instances fire during analyze ([`RunStrategy::AnalyzeOnly`]).
struct AnalyzeOnlyPlan {
    basis: AnalyzeOnlyBasis,
    produce_eligible: u64,
    eligible: u64,
    /// Engaged analyze memoization basis plus the per-sub-step
    /// eligible-read ranges for this signature. When present,
    /// analyze-phase targets plan [`RunStrategy::IncrementalAnalyze`]:
    /// only the sub-step whose eligible-read range contains the target
    /// re-executes live; every other artifact assembles from the memo
    /// store.
    memo: Option<Arc<IncrementalMemo>>,
}

impl AnalyzeOnlyPlan {
    /// The campaign-level [`ExecutionMode`] the phase seam implies.
    fn campaign_mode(&self) -> ExecutionMode {
        if self.produce_eligible == 0 {
            if self.memo.is_some() {
                ExecutionMode::IncrementalAnalyze
            } else {
                ExecutionMode::AnalyzeOnly
            }
        } else if self.produce_eligible >= self.eligible {
            ExecutionMode::FullRerun { reason: ReplayFallback::ProduceReadFault }
        } else {
            ExecutionMode::PhaseSplit
        }
    }

    /// Resolve the planned strategy for one target instance by its
    /// side of the phase seam.
    fn strategy_for(&self, target_instance: u64) -> RunStrategy {
        if target_instance <= self.produce_eligible {
            RunStrategy::Rerun { reason: ReplayFallback::ProduceReadFault }
        } else if let Some(ia) = &self.memo {
            let analyze_instance = target_instance - self.produce_eligible;
            match ia.substep_for(analyze_instance) {
                Some(d) => {
                    let (start, end) = ia.memo.read_ranges[d];
                    RunStrategy::IncrementalAnalyze { cost: (end - start) as u32 }
                }
                // Unreachable when the sub-step stream-identity law
                // holds (the ranges partition the analyze stream), but
                // the whole-analyze path is always a correct refuge.
                None => RunStrategy::AnalyzeOnly,
            }
        } else {
            RunStrategy::AnalyzeOnly
        }
    }
}

/// The validated golden basis of the analyze memoization layer: the
/// declared sub-steps, their golden artifacts (pinned `Arc` handles
/// into the memo store), each sub-step's golden analyze-phase read
/// range and start-of-sub-step counter snapshot, and the campaign's
/// golden memo key (an FNV-1a digest over every sub-step's input
/// fingerprint stream — two campaigns over byte-identical inputs share
/// run-level memo entries through it).
struct SubstepMemo {
    specs: Vec<SubstepSpec>,
    artifacts: Vec<Arc<Vec<u8>>>,
    /// Half-open index ranges into the golden *analyze-phase* read
    /// stream, one per sub-step, covering it exactly.
    read_ranges: Vec<(usize, usize)>,
    /// Absolute counter snapshot at each sub-step's start (produce
    /// phase plus all earlier sub-steps) — pre-seeded onto
    /// incremental-analyze mounts so the armed crossing observes
    /// full-execution `prim_seq`/`seq` numbering.
    counters: Vec<CounterSnapshot>,
    golden_key: u64,
    store: Arc<MemoStore>,
}

/// Read-site half of an engaged memo basis: the shared [`SubstepMemo`]
/// plus, per sub-step, how many of this signature's eligible
/// analyze-phase reads precede it and how many fall inside it.
struct IncrementalMemo {
    memo: Arc<SubstepMemo>,
    eligible_ranges: Vec<(u64, u64)>,
}

impl IncrementalMemo {
    /// Which sub-step does the 1-based eligible *analyze-phase*
    /// instance land in?
    fn substep_for(&self, analyze_instance: u64) -> Option<usize> {
        self.eligible_ranges.iter().position(|&(before, within)| {
            analyze_instance > before && analyze_instance <= before + within
        })
    }
}

/// Validate the sub-step laws against the golden run and build the
/// memo basis — the one implementation of the engine law 8 gate.
/// Returns the [`MemoFallback`] reason — never silently — when any law
/// fails:
///
/// * **input soundness** — every read a sub-step issued during golden
///   validation must target a path in its declared input set (else
///   dirty-cascade reachability would be unsound);
/// * **stream identity** — the concatenated sub-step read streams must
///   equal the golden whole-analyze read stream exactly (same
///   `prim_seq`/`seq` numbering, addressing, returned lengths, and
///   content fingerprints), so per-run injector instance numbering
///   cannot diverge;
/// * **assembly identity** — assembling the golden artifacts must
///   classify [`Outcome::Benign`].
///
/// The golden artifacts are published to the memo store keyed on each
/// sub-step's input fingerprint stream, so a warm store serves them
/// (and the run-level entries derived from them) across campaigns.
fn substep_memo<A: FaultApp>(
    app: &A,
    specs: Vec<SubstepSpec>,
    golden_analyze: &[ReadRecord],
    boundary: CounterSnapshot,
    golden: &A::Output,
    golden_fs: &Arc<MemFs>,
    store: &Arc<MemoStore>,
) -> Result<SubstepMemo, MemoFallback> {
    if specs.is_empty() {
        return Err(MemoFallback::NoSubsteps);
    }
    let ffs = FfisFs::mount(Arc::new(golden_fs.fork()));
    ffs.preseed_counters(&boundary);
    let check = Arc::new(ReadLedger::new());
    ffs.attach(check.clone());
    let mut raw: Vec<Vec<u8>> = Vec::with_capacity(specs.len());
    let mut read_ranges = Vec::with_capacity(specs.len());
    let mut counters = Vec::with_capacity(specs.len());
    for (i, _) in specs.iter().enumerate() {
        counters.push(ffs.counters());
        let start = check.len();
        match app.analyze_substep(&*ffs, i, Some(golden)) {
            Ok(a) => raw.push(a),
            Err(_) => {
                ffs.unmount();
                return Err(MemoFallback::SubstepIdentity);
            }
        }
        read_ranges.push((start, check.len()));
    }
    ffs.unmount();
    let records = check.records();
    for (spec, &(start, end)) in specs.iter().zip(&read_ranges) {
        let sound =
            records[start..end].iter().all(|r| r.path.as_deref().is_some_and(|p| spec.reads(p)));
        if !sound {
            return Err(MemoFallback::SubstepInputs);
        }
    }
    if records != golden_analyze {
        return Err(MemoFallback::SubstepStream);
    }
    match app.assemble(&raw, Some(golden)) {
        Ok(out) if app.classify(golden, &out) == Outcome::Benign => {}
        _ => return Err(MemoFallback::SubstepIdentity),
    }

    // Publish the golden artifacts keyed on each sub-step's input
    // fingerprint stream and pin `Arc` handles for per-run assembly.
    let mut golden_hash = Fnv::new();
    golden_hash.eat(app.name().as_bytes());
    let mut artifacts = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let (start, end) = read_ranges[i];
        let mut key = Vec::with_capacity(64 + (end - start) * 16);
        key.extend_from_slice(b"ffis-memo-v1|golden|");
        key.extend_from_slice(app.name().as_bytes());
        key.push(b'|');
        key.extend_from_slice(spec.name.as_bytes());
        key.push(b'|');
        for r in &records[start..end] {
            key.extend_from_slice(&r.fingerprint.to_le_bytes());
            key.extend_from_slice(&r.returned.map(|n| n as u64).unwrap_or(u64::MAX).to_le_bytes());
        }
        golden_hash.eat(&key);
        let art = raw[i].clone();
        let cached = store
            .get_or_compute(&key, move || Ok(art))
            .expect("publishing a computed golden artifact cannot fail");
        artifacts.push(cached);
    }
    Ok(SubstepMemo {
        specs,
        artifacts,
        read_ranges,
        counters,
        golden_key: golden_hash.0,
        store: store.clone(),
    })
}

/// Key material of one run-level memo entry: the campaign's golden
/// key, the full fault signature, and the run's plan-time draws. Two
/// runs with identical key material produce identical results (engine
/// laws 2 and 8), so serving one from the store is exact.
fn memo_run_key(
    golden_key: u64,
    signature: &FaultSignature,
    target_instance: u64,
    seed: u64,
) -> Vec<u8> {
    let mut key = Vec::with_capacity(128);
    key.extend_from_slice(b"ffis-memo-v1|run|");
    key.extend_from_slice(&golden_key.to_le_bytes());
    key.extend_from_slice(format!("|{signature:?}|").as_bytes());
    key.extend_from_slice(&target_instance.to_le_bytes());
    key.extend_from_slice(&seed.to_le_bytes());
    key
}

/// A decoded run-level memo entry: what the injector did plus either
/// the dirty sub-steps' artifacts or the run's error message. Panicked
/// runs are never memoized — a warm store re-executes them live.
struct MemoRunEntry {
    injection: Option<InjectionRecord>,
    body: Result<Vec<(usize, Vec<u8>)>, String>,
}

fn encode_memo_run(
    injection: &Option<InjectionRecord>,
    body: Result<&[(usize, Vec<u8>)], &str>,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    buf.push(1); // entry version
    match injection {
        None => buf.push(0),
        Some(i) => {
            buf.push(1);
            buf.push(i.primitive.index() as u8);
            wire::put_u64(&mut buf, i.instance);
            wire::put_u64(&mut buf, i.prim_seq);
            wire::put_opt_str(&mut buf, i.path.as_deref());
            match i.offset {
                None => buf.push(0),
                Some(o) => {
                    buf.push(1);
                    wire::put_u64(&mut buf, o);
                }
            }
            wire::put_u64(&mut buf, i.len as u64);
            wire::put_str(&mut buf, &i.detail);
        }
    }
    match body {
        Err(msg) => {
            buf.push(0);
            wire::put_str(&mut buf, msg);
        }
        Ok(arts) => {
            buf.push(1);
            wire::put_u64(&mut buf, arts.len() as u64);
            for (i, a) in arts {
                wire::put_u64(&mut buf, *i as u64);
                wire::put_u64(&mut buf, a.len() as u64);
                buf.extend_from_slice(a);
            }
        }
    }
    buf
}

fn decode_memo_run(bytes: &[u8]) -> Option<MemoRunEntry> {
    let mut r = wire::Reader::new(bytes);
    if r.u8()? != 1 {
        return None;
    }
    let injection = match r.u8()? {
        0 => None,
        1 => {
            let primitive = *PRIMITIVES.get(r.u8()? as usize)?;
            let instance = r.u64()?;
            let prim_seq = r.u64()?;
            let path = r.opt_str()?;
            let offset = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return None,
            };
            let len = r.u64()? as usize;
            let detail = r.str()?;
            Some(InjectionRecord { primitive, instance, prim_seq, path, offset, len, detail })
        }
        _ => return None,
    };
    let body = match r.u8()? {
        0 => Err(r.str()?),
        1 => {
            let n = r.u64()? as usize;
            let mut arts = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let i = r.u64()? as usize;
                let len = r.u64()? as usize;
                arts.push((i, r.bytes(len)?.to_vec()));
            }
            Ok(arts)
        }
        _ => return None,
    };
    if r.remaining() != 0 {
        return None;
    }
    Some(MemoRunEntry { injection, body })
}

/// A campaign's prepared fast path — checkpointed trace replay for
/// write-site signatures, analyze-only re-execution for read-site
/// ones. [`execute_run`] dispatches on the planned [`RunStrategy`]
/// and reaches back into the matching plan variant.
enum CampaignPlan {
    Replay(ReplayPlan),
    AnalyzeOnly(AnalyzeOnlyPlan),
}

impl CampaignPlan {
    fn strategy_for(&self, target_instance: u64) -> RunStrategy {
        match self {
            CampaignPlan::Replay(p) => p.strategy_for(target_instance),
            CampaignPlan::AnalyzeOnly(p) => p.strategy_for(target_instance),
        }
    }
}

/// The one implementation of the campaign-wide **analyze-only laws** —
/// validated once per golden run and shared by [`Campaign`] and
/// [`MixedCampaign`] so the engagement rules cannot drift apart.
/// Returns the [`ReplayFallback`] reason — never silently — when any
/// law fails:
///
/// * the analyze phase must not have mutated the filesystem during
///   the golden run (same predicate as the replay gate: recorded ops
///   past the produce watermark, bookkeeping excepted) — otherwise
///   the golden final state is not the post-produce state and forking
///   it would double-apply analyze's writes;
/// * the application's declared phase-boundary read count
///   ([`FaultApp::produce_read_count`]), when present, must match the
///   ledger's measured produce-phase count;
/// * the ledger must have seen every `FFIS_read` the mount counted
///   (a divergence means the golden read stream is not the one the
///   planner is slicing);
/// * re-executing analyze on a pre-seeded fork of the golden state —
///   uninjected — must classify benign (golden identity) *and*
///   re-issue the exact golden analyze-phase read stream: same
///   `prim_seq`/`seq` numbering, same addressing, same returned
///   lengths, same content fingerprints. This is the analyze-only
///   analogue of the uninjected-replay self-check.
#[allow(clippy::too_many_arguments)]
fn analyze_only_basis<A: FaultApp>(
    app: &A,
    ops: &[TraceOp],
    produced_ops: usize,
    ledger: &ReadLedger,
    boundary: CounterSnapshot,
    profile: &ProfileReport,
    golden: &A::Output,
    golden_fs: &Arc<MemFs>,
) -> Result<AnalyzeOnlyBasis, ReplayFallback> {
    let analyze_mutates =
        ops[produced_ops.min(ops.len())..].iter().any(|op| op.bookkeeping_fd().is_none());
    if analyze_mutates {
        return Err(ReplayFallback::AnalyzeWrites);
    }
    if let Some(declared) = app.produce_read_count() {
        if declared != ledger.produce_reads() as u64 {
            return Err(ReplayFallback::TraceMismatch);
        }
    }
    if ledger.len() as u64 != profile.counters.get(Primitive::Read) {
        return Err(ReplayFallback::TraceMismatch);
    }

    // The self-check: fork the golden state, pre-seed the boundary
    // counters, and run analyze uninjected with a fresh ledger
    // attached. Classification must be benign and the re-executed read
    // stream must reproduce the golden analyze-phase stream exactly.
    let ffs = FfisFs::mount(Arc::new(golden_fs.fork()));
    ffs.preseed_counters(&boundary);
    let check = Arc::new(ReadLedger::new());
    ffs.attach(check.clone());
    let ok = crate::outcome::analyze_matches_golden(app, &*ffs, golden);
    ffs.unmount();
    if !ok {
        return Err(ReplayFallback::GoldenIdentity);
    }
    let golden_reads = ledger.records();
    let golden_analyze = &golden_reads[ledger.produce_reads()..];
    if check.records() != golden_analyze {
        return Err(ReplayFallback::ReplayCheck);
    }
    Ok(AnalyzeOnlyBasis { base: golden_fs.clone(), boundary })
}

/// Per-signature half of the analyze-only gate: slice the golden read
/// ledger by the signature's target filter, locate the phase seam in
/// eligible instance space, and cross-check the eligible count against
/// the profiler's (the read-site analogue of the write path's
/// trace-vs-profiler instance check).
fn analyze_only_plan(
    basis: AnalyzeOnlyBasis,
    ledger: &ReadLedger,
    target: &TargetFilter,
    eligible: u64,
) -> Result<AnalyzeOnlyPlan, ReplayFallback> {
    let records = ledger.records();
    let produce_len = ledger.produce_reads();
    let matching = records.iter().filter(|r| target.matches(r.path.as_deref())).count() as u64;
    if matching != eligible {
        return Err(ReplayFallback::TraceMismatch);
    }
    let produce_eligible =
        records[..produce_len].iter().filter(|r| target.matches(r.path.as_deref())).count() as u64;
    Ok(AnalyzeOnlyPlan { basis, produce_eligible, eligible, memo: None })
}

/// Classify one finished application result into a [`RunResult`] —
/// shared by the single-signature and mixed campaign drivers so crash
/// capture (messages, panic downcasts) cannot drift between them.
fn finish_run<A: FaultApp>(
    app: &A,
    golden: &A::Output,
    run: usize,
    target_instance: u64,
    injection: Option<InjectionRecord>,
    mode: ExecutionMode,
    app_result: std::thread::Result<Result<A::Output, String>>,
) -> RunResult {
    match app_result {
        Ok(Ok(faulty)) => RunResult {
            run,
            outcome: app.classify(golden, &faulty),
            target_instance,
            injection,
            crash_message: None,
            mode,
            aborted: None,
        },
        Ok(Err(msg)) => RunResult {
            run,
            outcome: Outcome::Crash,
            target_instance,
            injection,
            crash_message: Some(msg),
            mode,
            aborted: None,
        },
        Err(panic) => {
            // Watchdog unwinds carry typed payloads; check them before
            // the generic message downcasts so an aborted run is
            // attributed to its trigger, not filed as an anonymous
            // panic.
            let aborted = panic
                .downcast_ref::<ffis_vfs::FuelExhausted>()
                .map(|fe| RunAborted::FuelExhausted { budget: fe.budget })
                .or_else(|| {
                    panic
                        .downcast_ref::<ffis_vfs::DeadlineExceeded>()
                        .map(|de| RunAborted::DeadlineExceeded { limit_ms: de.limit_ms })
                });
            let msg = aborted
                .map(|a| a.to_string())
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            RunResult {
                run,
                outcome: Outcome::Crash,
                target_instance,
                injection,
                crash_message: Some(msg),
                mode,
                aborted,
            }
        }
    }
}

/// Execute one injection run — checkpointed suffix replay when the
/// planned strategy is `Replay`, analyze-only re-execution when it is
/// `AnalyzeOnly`, full produce+analyze re-execution otherwise — and
/// classify it. The single-signature [`Campaign`] and the sharded
/// [`MixedCampaign`] both funnel through here (via the engine
/// executor), so every strategy behaves identically across the
/// drivers.
#[allow(clippy::too_many_arguments)]
fn execute_run<A: FaultApp>(
    app: &A,
    signature: &FaultSignature,
    plan: Option<&CampaignPlan>,
    strategy: RunStrategy,
    golden: &A::Output,
    run: usize,
    target_instance: u64,
    seed: u64,
    liveness: Liveness,
) -> RunResult {
    let mode = strategy.mode();
    match (strategy, plan) {
        // Write-site fast path: fork the planner-chosen checkpoint
        // (the nearest one preceding the target instance), replay only
        // the trace suffix through the armed injector (the fault lands
        // in the same instance, with the same record numbering, it
        // would during a real execution), then analyze.
        (RunStrategy::Replay { checkpoint, .. }, Some(CampaignPlan::Replay(plan))) => {
            if let Some(memo) = &plan.memo {
                // The memo gate refuses to engage while a liveness
                // watchdog is armed, so the memoized arm never arms
                // one.
                return execute_replay_memoized(
                    app,
                    signature,
                    plan,
                    memo,
                    checkpoint,
                    golden,
                    run,
                    target_instance,
                    seed,
                );
            }
            let point = &plan.cache.points()[checkpoint];
            let already_seen = plan.eligible_ops.partition_point(|&op| op < point.index()) as u64;
            let injector = Arc::new(ArmedInjector::resuming(
                signature.clone(),
                target_instance,
                seed,
                already_seen,
            ));
            let (ffs, mut cursor) = point.mount_fork();
            liveness.arm(&ffs);
            ffs.attach(injector.clone());
            let app_result = catch_unwind(AssertUnwindSafe(|| -> Result<A::Output, String> {
                cursor.replay(&*ffs, plan.cache.suffix(point)).map_err(|e| e.to_string())?;
                app.analyze(&*ffs, Some(golden))
            }));
            ffs.unmount();
            finish_run(app, golden, run, target_instance, injector.record(), mode, app_result)
        }
        // Read-site fast path: the golden post-produce state *is* the
        // checkpoint. Fork it, pre-seed the phase-boundary counters
        // (so the armed crossing observes full-execution
        // `prim_seq`/`seq` numbering), arm the injector with the
        // produce-phase eligible reads already "seen", and run only
        // analyze — live, so the transfer the fault corrupts actually
        // exists.
        (RunStrategy::AnalyzeOnly, Some(CampaignPlan::AnalyzeOnly(plan))) => {
            let injector = Arc::new(ArmedInjector::resuming(
                signature.clone(),
                target_instance,
                seed,
                plan.produce_eligible,
            ));
            let ffs = FfisFs::mount(Arc::new(plan.basis.base.fork()));
            liveness.arm(&ffs);
            ffs.preseed_counters(&plan.basis.boundary);
            ffs.attach(injector.clone());
            let app_result = catch_unwind(AssertUnwindSafe(|| app.analyze(&*ffs, Some(golden))));
            ffs.unmount();
            finish_run(app, golden, run, target_instance, injector.record(), mode, app_result)
        }
        // Incremental-analyze fast path (engine law 8): the fault can
        // only perturb reads inside one sub-step's declared input set,
        // so re-execute exactly that sub-step live — pre-seeded with
        // its start-of-sub-step counters so the armed crossing
        // observes full-execution numbering — and assemble every clean
        // artifact from the memo store.
        (RunStrategy::IncrementalAnalyze { .. }, Some(CampaignPlan::AnalyzeOnly(plan)))
            if plan.memo.is_some() =>
        {
            let ia = plan.memo.as_ref().expect("guarded by match arm");
            execute_incremental_analyze(
                app,
                signature,
                plan,
                ia,
                golden,
                run,
                target_instance,
                seed,
            )
        }
        // Reference path: full application re-execution. (A fast
        // strategy without its matching plan cannot be planned — the
        // strategies are derived from the plan itself.)
        (
            RunStrategy::Replay { .. }
            | RunStrategy::AnalyzeOnly
            | RunStrategy::IncrementalAnalyze { .. },
            _,
        )
        | (RunStrategy::Rerun { .. }, _) => {
            let injector = Arc::new(ArmedInjector::new(signature.clone(), target_instance, seed));
            let ffs = FfisFs::mount(Arc::new(MemFs::new()));
            liveness.arm(&ffs);
            ffs.attach(injector.clone());
            let app_result = catch_unwind(AssertUnwindSafe(|| {
                app.produce(&*ffs)?;
                app.analyze(&*ffs, Some(golden))
            }));
            ffs.unmount();
            finish_run(app, golden, run, target_instance, injector.record(), mode, app_result)
        }
    }
}

/// A memoized run's live half: the assembled output plus the dirty
/// `(sub-step index, artifact)` pairs worth caching.
type MemoRunOutput<A> = Result<(<A as FaultApp>::Output, Vec<(usize, Vec<u8>)>), String>;

/// Write-site memoized analyze: checkpointed suffix replay as usual,
/// then re-compute only the sub-steps that declare the injected op's
/// path as an input (the dirty cascade — a write fault perturbs
/// exactly the file the op targets), assembling the rest from the
/// memo store. Non-panicked results are memoized at run granularity,
/// so a warm store replays the whole run without mounting anything.
#[allow(clippy::too_many_arguments)]
fn execute_replay_memoized<A: FaultApp>(
    app: &A,
    signature: &FaultSignature,
    plan: &ReplayPlan,
    memo: &SubstepMemo,
    checkpoint: usize,
    golden: &A::Output,
    run: usize,
    target_instance: u64,
    seed: u64,
) -> RunResult {
    let mode = ExecutionMode::Replay;
    let target_op = plan.eligible_ops[(target_instance - 1) as usize];
    let dirty: Vec<usize> = match plan.cache.ops()[target_op].write_path() {
        Some(p) => {
            memo.specs.iter().enumerate().filter(|(_, s)| s.reads(p)).map(|(i, _)| i).collect()
        }
        // A write op without a path cannot be attributed; treat every
        // sub-step as dirty (conservative, still exact).
        None => (0..memo.specs.len()).collect(),
    };
    memo.store.note_hits((memo.specs.len() - dirty.len()) as u64);
    memo.store.note_invalidations(dirty.len() as u64);
    let run_key = memo_run_key(memo.golden_key, signature, target_instance, seed);
    if let Some(bytes) = memo.store.get(&run_key) {
        if let Some(entry) = decode_memo_run(&bytes) {
            return finish_memo_run(app, memo, golden, run, target_instance, mode, entry);
        }
    }
    let point = &plan.cache.points()[checkpoint];
    let already_seen = plan.eligible_ops.partition_point(|&op| op < point.index()) as u64;
    let injector =
        Arc::new(ArmedInjector::resuming(signature.clone(), target_instance, seed, already_seen));
    let (ffs, mut cursor) = point.mount_fork();
    ffs.attach(injector.clone());
    let result = catch_unwind(AssertUnwindSafe(|| -> MemoRunOutput<A> {
        cursor.replay(&*ffs, plan.cache.suffix(point)).map_err(|e| e.to_string())?;
        let mut assembled: Vec<Vec<u8>> = Vec::with_capacity(memo.specs.len());
        let mut dirty_artifacts: Vec<(usize, Vec<u8>)> = Vec::with_capacity(dirty.len());
        for i in 0..memo.specs.len() {
            if dirty.contains(&i) {
                let art = app.analyze_substep(&*ffs, i, Some(golden))?;
                dirty_artifacts.push((i, art.clone()));
                assembled.push(art);
            } else {
                assembled.push(memo.artifacts[i].as_ref().clone());
            }
        }
        let out = app.assemble(&assembled, Some(golden))?;
        Ok((out, dirty_artifacts))
    }));
    ffs.unmount();
    let injection = injector.record();
    match &result {
        Ok(Ok((_, arts))) => memo.store.put(&run_key, &encode_memo_run(&injection, Ok(arts))),
        Ok(Err(msg)) => memo.store.put(&run_key, &encode_memo_run(&injection, Err(msg))),
        Err(_) => {} // Panicked runs are never memoized.
    }
    let app_result = match result {
        Ok(Ok((out, _))) => Ok(Ok(out)),
        Ok(Err(e)) => Ok(Err(e)),
        Err(p) => Err(p),
    };
    finish_run(app, golden, run, target_instance, injection, mode, app_result)
}

/// Read-site memoized analyze ([`RunStrategy::IncrementalAnalyze`]):
/// fork the golden post-produce state, pre-seed the dirty sub-step's
/// start-of-sub-step counters, arm the injector with every earlier
/// eligible read already "seen", run exactly that sub-step live, and
/// assemble with the clean golden artifacts. Read faults never touch
/// device state, so downstream sub-steps are provably clean.
#[allow(clippy::too_many_arguments)]
fn execute_incremental_analyze<A: FaultApp>(
    app: &A,
    signature: &FaultSignature,
    plan: &AnalyzeOnlyPlan,
    ia: &IncrementalMemo,
    golden: &A::Output,
    run: usize,
    target_instance: u64,
    seed: u64,
) -> RunResult {
    let mode = ExecutionMode::IncrementalAnalyze;
    let memo = &ia.memo;
    let analyze_instance = target_instance - plan.produce_eligible;
    let d = ia
        .substep_for(analyze_instance)
        .expect("IncrementalAnalyze is only planned for in-range instances");
    memo.store.note_hits((memo.specs.len() - 1) as u64);
    memo.store.note_invalidations(1);
    let run_key = memo_run_key(memo.golden_key, signature, target_instance, seed);
    if let Some(bytes) = memo.store.get(&run_key) {
        if let Some(entry) = decode_memo_run(&bytes) {
            return finish_memo_run(app, memo, golden, run, target_instance, mode, entry);
        }
    }
    let (before, _) = ia.eligible_ranges[d];
    let injector = Arc::new(ArmedInjector::resuming(
        signature.clone(),
        target_instance,
        seed,
        plan.produce_eligible + before,
    ));
    let ffs = FfisFs::mount(Arc::new(plan.basis.base.fork()));
    ffs.preseed_counters(&memo.counters[d]);
    ffs.attach(injector.clone());
    let result = catch_unwind(AssertUnwindSafe(|| -> MemoRunOutput<A> {
        let art = app.analyze_substep(&*ffs, d, Some(golden))?;
        let mut assembled: Vec<Vec<u8>> =
            memo.artifacts.iter().map(|a| a.as_ref().clone()).collect();
        assembled[d] = art.clone();
        let out = app.assemble(&assembled, Some(golden))?;
        Ok((out, vec![(d, art)]))
    }));
    ffs.unmount();
    let injection = injector.record();
    match &result {
        Ok(Ok((_, arts))) => memo.store.put(&run_key, &encode_memo_run(&injection, Ok(arts))),
        Ok(Err(msg)) => memo.store.put(&run_key, &encode_memo_run(&injection, Err(msg))),
        Err(_) => {} // Panicked runs are never memoized.
    }
    let app_result = match result {
        Ok(Ok((out, _))) => Ok(Ok(out)),
        Ok(Err(e)) => Ok(Err(e)),
        Err(p) => Err(p),
    };
    finish_run(app, golden, run, target_instance, injection, mode, app_result)
}

/// Classify a run served whole from the run-level memo store: rebuild
/// the artifact vector (clean golden artifacts with the cached dirty
/// ones swapped in), assemble, and classify — no filesystem is ever
/// mounted. Cached error messages reproduce the crash classification
/// the live run recorded.
fn finish_memo_run<A: FaultApp>(
    app: &A,
    memo: &SubstepMemo,
    golden: &A::Output,
    run: usize,
    target_instance: u64,
    mode: ExecutionMode,
    entry: MemoRunEntry,
) -> RunResult {
    let MemoRunEntry { injection, body } = entry;
    let app_result: Result<A::Output, String> = match body {
        Err(msg) => Err(msg),
        Ok(dirty_artifacts) => {
            let mut assembled: Vec<Vec<u8>> =
                memo.artifacts.iter().map(|a| a.as_ref().clone()).collect();
            let mut in_range = true;
            for (i, a) in dirty_artifacts {
                if i < assembled.len() {
                    assembled[i] = a;
                } else {
                    in_range = false;
                }
            }
            if in_range {
                app.assemble(&assembled, Some(golden))
            } else {
                Err("memoized run entry indexes out of range".to_string())
            }
        }
    };
    finish_run(app, golden, run, target_instance, injection, mode, Ok(app_result))
}

/// Configuration for a [`MixedCampaign`]: several fault signatures —
/// typically read-site and write-site variants of the same models —
/// sharing one golden run and one interleaved, seed-deterministic run
/// schedule.
#[derive(Debug, Clone)]
pub struct MixedCampaignConfig {
    /// The shard signatures. Global run `i` belongs to shard
    /// `i % signatures.len()` (round-robin), so replay-backed
    /// write-site runs and rerun-backed read-site runs interleave
    /// deterministically in run order.
    pub signatures: Vec<FaultSignature>,
    /// Total runs across all shards.
    pub runs: usize,
    /// Root seed. Shard `s` owns the independent stream
    /// `root.child(s)`, and its `j`-th run draws from
    /// `root.child(s).child(j)` — per-shard RNG streams, so a shard's
    /// instance choices depend only on the root seed and its own run
    /// schedule, never on sibling shards, scheduling order, or
    /// [`MixedCampaignConfig::parallel`].
    pub seed: u64,
    /// Fan runs out across the rayon thread pool.
    pub parallel: bool,
    /// Fast paths for the shards: golden-trace replay for write-site
    /// shards, analyze-only re-execution for read-site shards whose
    /// targets fire during analyze. Produce-phase read targets always
    /// take the full-rerun path with
    /// [`ReplayFallback::ProduceReadFault`] recorded.
    pub replay: bool,
    /// Plan-aware replay optimizations for the write-site shards (see
    /// [`CampaignConfig::replay_opt`]): demand-driven checkpoint
    /// placement over the union of all write shards' fork offsets,
    /// checkpoint-grouped batch execution keyed per `(shard,
    /// checkpoint)`, and coalesced off-mount suffix application.
    /// Disengages while a liveness watchdog is armed.
    pub replay_opt: bool,
    /// Retain at most this many full [`RunResult`]s (see
    /// [`CampaignConfig::keep_runs`]); shard tallies always cover
    /// every run.
    pub keep_runs: Option<usize>,
    /// Shared [`CheckpointStore`] (see
    /// [`CampaignConfig::checkpoints`]).
    pub checkpoints: Option<Arc<CheckpointStore>>,
    /// Journal completed runs to this path (see
    /// [`CampaignConfig::journal`]).
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal (see
    /// [`CampaignConfig::resume`]).
    pub resume: bool,
    /// Cooperative cancellation token (see [`CampaignConfig::cancel`]).
    pub cancel: Option<Arc<CancelToken>>,
    /// Per-run I/O-op fuel budget (see [`CampaignConfig::fuel`]).
    pub fuel: Option<u64>,
    /// Per-run wall-clock backstop (see
    /// [`CampaignConfig::wall_limit`]).
    pub wall_limit: Option<Duration>,
    /// Live run-event observer (see [`CampaignConfig::observer`]).
    pub observer: Option<RunObserver>,
    /// Execute only a plan-index range (see
    /// [`CampaignConfig::index_range`]): this process's shard of a
    /// distributed fan-out.
    pub index_range: Option<(usize, usize)>,
}

impl MixedCampaignConfig {
    /// Config with paper defaults (1,000 total runs, parallel, replay
    /// on for write-site shards).
    pub fn new(signatures: Vec<FaultSignature>) -> Self {
        MixedCampaignConfig {
            signatures,
            runs: 1000,
            seed: 0xFF15_0002,
            parallel: true,
            replay: replay_default(),
            replay_opt: replay_opt_default(),
            keep_runs: None,
            checkpoints: None,
            journal: None,
            resume: false,
            cancel: None,
            fuel: None,
            wall_limit: None,
            observer: None,
            index_range: None,
        }
    }

    /// Override the total run count.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Execute only a plan-index range (see
    /// [`CampaignConfig::index_range`]).
    pub fn with_index_range(mut self, range: Option<(usize, usize)>) -> Self {
        self.index_range = range;
        self
    }

    /// Enable or disable the write-site replay fast path.
    pub fn with_replay(mut self, replay: bool) -> Self {
        self.replay = replay;
        self
    }

    /// Enable or disable the plan-aware replay optimizations (see
    /// [`MixedCampaignConfig::replay_opt`]).
    pub fn with_replay_opt(mut self, replay_opt: bool) -> Self {
        self.replay_opt = replay_opt;
        self
    }

    /// Bound the retained per-run records (see
    /// [`CampaignConfig::keep_runs`]).
    pub fn with_keep_runs(mut self, keep_runs: Option<usize>) -> Self {
        self.keep_runs = keep_runs;
        self
    }

    /// Share a [`CheckpointStore`] across campaigns (see
    /// [`CampaignConfig::checkpoints`]).
    pub fn with_checkpoints(mut self, store: Arc<CheckpointStore>) -> Self {
        self.checkpoints = Some(store);
        self
    }

    /// Journal completed runs to `path` (see
    /// [`CampaignConfig::journal`]).
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Resume from an existing journal (see
    /// [`CampaignConfig::resume`]).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Attach a cooperative cancellation token (see
    /// [`CampaignConfig::cancel`]).
    pub fn with_cancel(mut self, cancel: Arc<CancelToken>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Arm the per-run I/O-op fuel watchdog (see
    /// [`CampaignConfig::fuel`]).
    pub fn with_fuel(mut self, budget: u64) -> Self {
        self.fuel = Some(budget);
        self
    }

    /// Arm the per-run wall-clock backstop (see
    /// [`CampaignConfig::wall_limit`]).
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Attach a live run-event observer (see
    /// [`CampaignConfig::observer`]).
    pub fn with_observer(mut self, observer: RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }
}

/// Per-shard summary of a [`MixedCampaignResult`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The shard's fault signature.
    pub signature: FaultSignature,
    /// Eligible-instance count for the shard's `(primitive, target)`
    /// scope, measured on the shared golden run.
    pub eligible: u64,
    /// The execution strategy the shard's runs took.
    pub mode: ExecutionMode,
    /// Outcome tally over the shard's runs only.
    pub tally: OutcomeTally,
}

/// Result of a mixed campaign.
#[derive(Debug, Clone)]
pub struct MixedCampaignResult {
    /// Outcome tally across all shards (the shard tallies merged);
    /// always covers every executed run.
    pub tally: OutcomeTally,
    /// Retained per-run results in global run order (all runs unless
    /// [`MixedCampaignConfig::keep_runs`] bounded the reservoir);
    /// [`RunResult::mode`] tells which strategy produced each run.
    pub runs: Vec<RunResult>,
    /// The shared fault-free profile.
    pub profile: ProfileReport,
    /// Per-shard signatures, eligible counts, modes, and tallies.
    pub shards: Vec<ShardReport>,
    /// FNV-1a fingerprint of the execution plan (see
    /// [`CampaignResult::plan_fingerprint`]).
    pub plan_fingerprint: u64,
    /// Did the plan drain fully, or did cancellation stop it early?
    pub status: CompletionStatus,
    /// Runs this invocation actually executed (excludes journaled
    /// ones).
    pub executed: usize,
    /// Runs replayed from the journal at cost 0.
    pub resumed: usize,
}

impl MixedCampaignResult {
    /// Runs belonging to shard `s` (in run order).
    pub fn shard_runs(&self, s: usize) -> impl Iterator<Item = &RunResult> {
        let k = self.shards.len();
        self.runs.iter().filter(move |r| r.run % k == s)
    }

    /// FNV-1a digest over the retained run records (see
    /// [`CampaignResult::run_digest`]).
    pub fn run_digest(&self) -> u64 {
        digest_runs(&self.runs)
    }
}

/// The one implementation of the campaign-wide replay laws — called
/// by [`Campaign::run`]'s `replay_plan` and checked once per
/// [`MixedCampaign`] golden trace, so the engagement rules cannot
/// drift between the drivers. Returns the [`ReplayFallback`] reason —
/// never silently — when any law fails:
///
/// * the analyze phase must not have written during the golden run
///   (the recorded op stream would double-apply those writes);
/// * the trace must record exactly as many writes as the mount's
///   Write counter attempted — a failed write attempt (counted when
///   attempted, recorded only on success) would shift replayed
///   `prim_seq` numbering off a real rerun's;
/// * analyze must satisfy the golden-identity law on the captured
///   snapshot;
/// * an uninjected full replay must rebuild state that analyzes
///   benign (the fidelity self-check).
///
/// Per-signature eligible-write numbering is validated separately by
/// each caller against its target filter ([`eligible_write_ops`]).
#[allow(clippy::too_many_arguments)]
fn shared_replay_cache<A: FaultApp>(
    app: &A,
    ops: Vec<TraceOp>,
    produced_ops: usize,
    attempted_writes: u64,
    golden: &A::Output,
    golden_fs: &MemFs,
    store: Option<&CheckpointStore>,
    demand: Option<&[usize]>,
) -> Result<Arc<TraceCheckpoints>, ReplayFallback> {
    // Ops recorded after the produce watermark violate the
    // read-only-analyze law — except state-neutral bookkeeping
    // (release/fsync/lock/unlock of analyze's own read-only
    // descriptors, which the recorder logs but a replay skips).
    let analyze_mutates =
        ops[produced_ops.min(ops.len())..].iter().any(|op| op.bookkeeping_fd().is_none());
    if analyze_mutates {
        return Err(ReplayFallback::AnalyzeWrites);
    }
    if ops.iter().filter(|op| op.is_write()).count() as u64 != attempted_writes {
        return Err(ReplayFallback::TraceMismatch);
    }
    if !crate::outcome::analyze_matches_golden(app, golden_fs, golden) {
        return Err(ReplayFallback::GoldenIdentity);
    }
    // Checkpoint construction goes through the shared store when one
    // is configured: identical golden traces (several fault models
    // over one deterministic workload) then share a single built
    // cache. The per-campaign laws above and the fidelity self-check
    // below still run for every campaign — sharing only skips the
    // redundant prefix replays that build the snapshots. With a
    // fork-offset demand the snapshots are placed against the
    // campaign's actual targets (demand-placed and log-spaced sets
    // coexist in the store — the placement is part of the cache key).
    let cache = match (store, demand) {
        (Some(store), Some(d)) => {
            store.get_or_build_for_demand(ops, d).map_err(|_| ReplayFallback::ReplayCheck)?
        }
        (Some(store), None) => store.get_or_build(ops).map_err(|_| ReplayFallback::ReplayCheck)?,
        (None, Some(d)) => Arc::new(
            TraceCheckpoints::build_for_demand(ops, d).map_err(|_| ReplayFallback::ReplayCheck)?,
        ),
        (None, None) => {
            Arc::new(TraceCheckpoints::build(ops).map_err(|_| ReplayFallback::ReplayCheck)?)
        }
    };
    let (ffs, mut cursor) = cache.points()[0].mount_fork();
    if cursor.replay(&*ffs, cache.ops()).is_err()
        || !crate::outcome::analyze_matches_golden(app, &*ffs, golden)
    {
        return Err(ReplayFallback::ReplayCheck);
    }
    Ok(cache)
}

/// One prepared shard of a mixed campaign.
struct Shard {
    signature: FaultSignature,
    eligible: u64,
    mode: ExecutionMode,
    plan: Option<CampaignPlan>,
}

/// Campaign driver interleaving several fault signatures over one
/// golden run — the engine behind mixed read+write characterization.
///
/// Write-site shards ride the checkpointed golden-trace replay exactly
/// like a single-signature [`Campaign`]; read-site shards take the
/// analyze-only fast path for analyze-phase targets and the full-rerun
/// path (recording [`ReplayFallback::ProduceReadFault`]) for
/// produce-phase ones, and the round-robin schedule interleaves the
/// strategies deterministically: rerunning the same config — serial or
/// parallel — reproduces every outcome, per-run [`ExecutionMode`], and
/// instance choice.
pub struct MixedCampaign<'a, A: FaultApp> {
    app: &'a A,
    config: MixedCampaignConfig,
}

impl<'a, A: FaultApp> MixedCampaign<'a, A> {
    /// New mixed campaign over `app`.
    pub fn new(app: &'a A, config: MixedCampaignConfig) -> Self {
        MixedCampaign { app, config }
    }

    /// Execute the whole workflow.
    pub fn run(&self) -> Result<MixedCampaignResult, CampaignError> {
        let k = self.config.signatures.len();
        if k == 0 {
            return Err(CampaignError::BadSignature(
                "mixed campaign needs at least one signature".into(),
            ));
        }
        for sig in &self.config.signatures {
            sig.validate().map_err(CampaignError::BadSignature)?;
        }

        // One shared golden/profiling run. The trace interceptor
        // records every primitive crossing, so each shard's eligible
        // population is derived from the same execution; the op
        // recorder is attached when any shard can use a fast path
        // (write shards need the trace to replay, read shards need it
        // for the read-only-analyze law), and the read ledger when
        // some read-site shard may qualify for analyze-only
        // re-execution.
        let wants_write_fast = self.config.replay
            && self.config.signatures.iter().any(|s| s.primitive == Primitive::Write);
        let wants_read_fast = self.config.replay
            && self.config.signatures.iter().any(|s| s.primitive == Primitive::Read);
        let record = wants_write_fast || wants_read_fast;
        let profiler = IoProfiler::new(Primitive::Write, TargetFilter::Any);
        let recorder = Arc::new(TraceRecorder::new());
        let ledger = Arc::new(ReadLedger::new());
        let mut extras: Vec<Arc<dyn Interceptor>> = Vec::new();
        if record {
            extras.push(recorder.clone());
        }
        if wants_read_fast {
            extras.push(ledger.clone());
        }
        let produced_ops = std::cell::Cell::new(0usize);
        let boundary = std::cell::Cell::new(CounterSnapshot::default());
        let (profile, golden, base) = profiler
            .profile_with_mount(&extras, |ffs| {
                self.app.produce(ffs)?;
                produced_ops.set(recorder.len());
                ledger.mark_produce_end();
                boundary.set(ffs.counters());
                self.app.analyze(ffs, None)
            })
            .map_err(CampaignError::GoldenRunFailed)?;

        let eligible: Vec<u64> = self
            .config
            .signatures
            .iter()
            .map(|sig| {
                profile
                    .trace
                    .iter()
                    .filter(|r| r.in_scope(sig.primitive, |p| sig.target.matches(p)))
                    .count() as u64
            })
            .collect();
        if eligible.contains(&0) {
            return Err(CampaignError::NoEligibleInstances);
        }

        // Every per-run draw happens now, before any plan is built
        // (engine law 2): global run `i` belongs to shard `i % k` and
        // draws from `root.child(shard).child(i / k)`, exactly as
        // before the engine refactor. Drawing up front exposes the
        // write shards' fork-offset demand to checkpoint placement.
        let root = Rng::seed_from(self.config.seed);
        let shard_roots: Vec<Rng> = (0..k).map(|s| root.child(s as u64)).collect();
        let specs: Vec<InjectionSpec> = (0..self.config.runs)
            .map(|i| {
                let s = i % k;
                let mut rng = shard_roots[s].child((i / k) as u64);
                let target_instance = rng.gen_range(eligible[s]) + 1;
                let seed = rng.next_u64();
                InjectionSpec { target_instance, seed }
            })
            .collect();
        // Liveness watchdogs gate the replay optimizations off, as in
        // the single-signature driver.
        let replay_opt = self.config.replay_opt
            && self.config.fuel.is_none()
            && self.config.wall_limit.is_none();

        // The golden trace is taken once and serves both fast paths:
        // the analyze-only basis borrows it (read-only-analyze law),
        // the write-site checkpoint cache consumes it.
        let ops = recorder.take_ops();
        // The union of all write shards' fork offsets — the demand
        // checkpoint placement serves when the optimizations are on.
        // A count mismatch surfaces later as that shard's
        // TraceMismatch fallback; stray demand entries are harmless
        // placement advice.
        let demand: Option<Vec<usize>> = (replay_opt && wants_write_fast).then(|| {
            let mut d = Vec::new();
            for (s, sig) in self.config.signatures.iter().enumerate() {
                if sig.primitive != Primitive::Write {
                    continue;
                }
                let elig_ops = eligible_write_ops(&ops, &sig.target);
                for (i, spec) in specs.iter().enumerate() {
                    if i % k == s {
                        if let Some(&op) = elig_ops.get((spec.target_instance - 1) as usize) {
                            d.push(op);
                        }
                    }
                }
            }
            d
        });
        let basis: Result<AnalyzeOnlyBasis, ReplayFallback> = if !wants_read_fast {
            Err(ReplayFallback::Disabled)
        } else {
            analyze_only_basis(
                self.app,
                &ops,
                produced_ops.get(),
                &ledger,
                boundary.get(),
                &profile,
                &golden,
                &base,
            )
        };
        let cache: Result<Arc<TraceCheckpoints>, ReplayFallback> = if !wants_write_fast {
            Err(ReplayFallback::Disabled)
        } else {
            shared_replay_cache(
                self.app,
                ops,
                produced_ops.get(),
                profile.counters.get(Primitive::Write),
                &golden,
                &base,
                self.config.checkpoints.as_deref(),
                demand.as_deref(),
            )
        };

        let shards: Vec<Shard> = self
            .config
            .signatures
            .iter()
            .zip(&eligible)
            .map(|(sig, &elig)| {
                let (mode, plan) = if !self.config.replay {
                    (ExecutionMode::FullRerun { reason: ReplayFallback::Disabled }, None)
                } else {
                    match sig.primitive {
                        Primitive::Read => match basis
                            .clone()
                            .and_then(|b| analyze_only_plan(b, &ledger, &sig.target, elig))
                        {
                            Ok(plan) => {
                                (plan.campaign_mode(), Some(CampaignPlan::AnalyzeOnly(plan)))
                            }
                            Err(reason) => (ExecutionMode::FullRerun { reason }, None),
                        },
                        Primitive::Write => match &cache {
                            Ok(cache) => {
                                let eligible_ops = eligible_write_ops(cache.ops(), &sig.target);
                                if eligible_ops.len() as u64 != elig {
                                    (
                                        ExecutionMode::FullRerun {
                                            reason: ReplayFallback::TraceMismatch,
                                        },
                                        None,
                                    )
                                } else {
                                    (
                                        ExecutionMode::Replay,
                                        Some(CampaignPlan::Replay(ReplayPlan {
                                            cache: cache.clone(),
                                            eligible_ops,
                                            // Mixed campaigns stay
                                            // memo-free: the layer is a
                                            // single-signature fast
                                            // path today.
                                            memo: None,
                                        })),
                                    )
                                }
                            }
                            Err(reason) => (ExecutionMode::FullRerun { reason: *reason }, None),
                        },
                        _ => (
                            ExecutionMode::FullRerun { reason: ReplayFallback::NonWritePrimitive },
                            None,
                        ),
                    }
                };
                Shard { signature: sig.clone(), eligible: elig, mode, plan }
            })
            .collect();

        // Resolve each pre-drawn spec to its shard's planned strategy.
        let golden = Arc::new(golden);
        let planned: Vec<PlannedRun<InjectionSpec>> = specs
            .iter()
            .enumerate()
            .map(|(i, &spec)| {
                let s = i % k;
                let shard = &shards[s];
                let strategy = match (&shard.plan, shard.mode) {
                    (Some(p), _) => p.strategy_for(spec.target_instance),
                    (None, ExecutionMode::FullRerun { reason }) => RunStrategy::Rerun { reason },
                    (None, _) => unreachable!("fast-path shards always carry a plan"),
                };
                PlannedRun { index: i, shard: s, strategy, spec }
            })
            .collect();
        let fingerprint = plan_fingerprint(&planned, k);
        let meta = JournalMeta {
            fingerprint,
            seed: self.config.seed,
            runs: self.config.runs as u64,
            shards: k as u32,
            context: format!("app={} shards={}", self.app.name(), k),
        };
        let (journal, resumed) =
            open_journal(self.config.journal.as_deref(), self.config.resume, meta)?;
        let eplan = ExecutionPlan::new(planned, k);
        let engine_cfg = EngineConfig {
            parallel: self.config.parallel,
            keep_runs: self.config.keep_runs,
            keep_seed: self.config.seed,
        };
        let liveness = Liveness { fuel: self.config.fuel, wall: self.config.wall_limit };
        let persist_fn = journal.as_ref().map(|j| {
            move |index: usize, outcome: Outcome, fired: bool, r: &RunResult| {
                j.lock().unwrap_or_else(|e| e.into_inner()).append(
                    index,
                    outcome,
                    fired,
                    &r.encode(),
                );
            }
        });
        let observe_fn = self
            .config
            .observer
            .as_ref()
            .map(|obs| move |ev: RunEvent<'_, RunResult>| obs.call(ev.payload, ev.resumed));
        let durability = Durability {
            resumed,
            cancel: self.config.cancel.as_deref(),
            persist: persist_fn
                .as_ref()
                .map(|f| f as &(dyn Fn(usize, Outcome, bool, &RunResult) + Sync)),
            observe: observe_fn.as_ref().map(|f| f as &(dyn Fn(RunEvent<'_, RunResult>) + Sync)),
            index_range: self.config.index_range,
        };
        // Checkpoint-grouped batch execution (engine law 9), keyed per
        // `(shard, checkpoint)` so a batch never mixes signatures.
        let opt_counters = ReplayOptCounters::default();
        let batching = replay_opt
            && shards
                .iter()
                .any(|sh| matches!(&sh.plan, Some(CampaignPlan::Replay(rp)) if rp.memo.is_none()));
        let out = engine::execute_durable_batched(
            &eplan,
            &engine_cfg,
            durability,
            |pr| {
                if batching {
                    pr.strategy.batch_key().map(|ck| (pr.shard, ck))
                } else {
                    None
                }
            },
            |members| {
                let s = members.first().map(|&i| i % k)?;
                let Some(CampaignPlan::Replay(rp)) = &shards[s].plan else { return None };
                let targets: Vec<usize> = members
                    .iter()
                    .map(|&i| rp.eligible_ops[(specs[i].target_instance - 1) as usize])
                    .collect();
                let RunStrategy::Replay { checkpoint, .. } =
                    rp.strategy_for(specs[members[0]].target_instance)
                else {
                    return None;
                };
                let batch = rp.cache.fork_at_targets(checkpoint, &targets).ok()?;
                opt_counters.batches.fetch_add(1, Ordering::Relaxed);
                Some(batch)
            },
            |pr, batch| {
                let shard = &shards[pr.shard];
                let result = match (batch, &shard.plan) {
                    (Some(batch), Some(CampaignPlan::Replay(rp))) => execute_run_batched(
                        self.app,
                        &shard.signature,
                        rp,
                        batch,
                        &golden,
                        pr.index,
                        pr.spec.target_instance,
                        pr.spec.seed,
                        &opt_counters,
                    ),
                    _ => None,
                }
                .unwrap_or_else(|| {
                    execute_run(
                        self.app,
                        &shard.signature,
                        shard.plan.as_ref(),
                        pr.strategy,
                        &golden,
                        pr.index,
                        pr.spec.target_instance,
                        pr.spec.seed,
                        liveness,
                    )
                });
                RunRecord {
                    outcome: result.outcome,
                    fired: result.injection.is_some(),
                    payload: result,
                }
            },
        );

        let shards = shards
            .into_iter()
            .zip(&out.shard_tallies)
            .map(|(shard, tally)| ShardReport {
                signature: shard.signature,
                eligible: shard.eligible,
                mode: shard.mode,
                tally: *tally,
            })
            .collect();

        Ok(MixedCampaignResult {
            tally: out.tally,
            runs: out.kept,
            profile,
            shards,
            plan_fingerprint: fingerprint,
            status: out.status,
            executed: out.executed,
            resumed: out.resumed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;
    use ffis_vfs::{FileSystem, FileSystemExt};

    /// Toy workload: writes a 10-block data file plus a log, then
    /// "analyzes" by summing the data bytes. Classification mimics the
    /// paper's scheme: bitwise-equal file = benign; sum parity works
    /// as a stand-in detector.
    struct ToyApp;

    #[derive(Clone)]
    struct ToyOutput {
        file: Vec<u8>,
        checksum: u64,
    }

    const TOY_LEN: usize = 4096 * 10;

    impl FaultApp for ToyApp {
        type Output = ToyOutput;

        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            let data: Vec<u8> = (0..TOY_LEN).map(|i| (i % 255) as u8).collect();
            fs.write_file_chunked("/out.dat", &data, 4096).map_err(|e| e.to_string())?;
            fs.write_file("/run.log", b"ok\n").map_err(|e| e.to_string())
        }

        fn analyze(
            &self,
            fs: &dyn FileSystem,
            _golden: Option<&ToyOutput>,
        ) -> Result<ToyOutput, String> {
            let back = fs.read_to_vec("/out.dat").map_err(|e| e.to_string())?;
            if back.len() != TOY_LEN {
                return Err("short file".into());
            }
            let checksum = back.iter().map(|&b| b as u64).sum();
            Ok(ToyOutput { file: back, checksum })
        }

        fn classify(&self, golden: &ToyOutput, faulty: &ToyOutput) -> Outcome {
            if golden.file == faulty.file {
                Outcome::Benign
            } else if faulty.checksum.abs_diff(golden.checksum) > 1000 {
                Outcome::Detected
            } else {
                Outcome::Sdc
            }
        }

        fn name(&self) -> String {
            "TOY".into()
        }
    }

    #[test]
    fn bitflip_campaign_runs_and_classifies() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(50)
            .with_seed(1);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        assert_eq!(result.tally.total(), 50);
        assert_eq!(result.profile.eligible, 11); // 10 chunks + 1 log write
                                                 // Every run fired (profile count == run count space).
        assert_eq!(result.tally.no_fire, 0);
        // A 2-bit flip in /out.dat always changes the file...
        // unless it hit the log write (1 in 11 chance).
        assert!(result.tally.benign < 20);
        assert!(result.tally.sdc + result.tally.detected > 30);
    }

    #[test]
    fn dropped_write_campaign_mostly_detected() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::dropped_write()))
            .with_runs(110)
            .with_seed(2);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        // 9 of the 11 write instances are interior data chunks whose
        // loss moves the checksum past the detection threshold; the
        // last chunk shortens the file (crash) and the log write is
        // invisible to classification (benign).
        assert!(result.tally.detected >= 66, "{}", result.tally);
        assert!(result.tally.benign <= 22, "{}", result.tally);
        assert!(result.tally.crash <= 22, "{}", result.tally);
    }

    #[test]
    fn serial_equals_parallel() {
        let mk = |parallel| {
            let mut cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
                .with_runs(30)
                .with_seed(3);
            cfg.parallel = parallel;
            Campaign::new(&ToyApp, cfg).run().unwrap()
        };
        let a = mk(false);
        let b = mk(true);
        assert_eq!(a.tally, b.tally);
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.target_instance, y.target_instance);
        }
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(20)
            .with_seed(9);
        let a = Campaign::new(&ToyApp, cfg.clone()).run().unwrap();
        let b = Campaign::new(&ToyApp, cfg).run().unwrap();
        assert_eq!(a.tally, b.tally);
    }

    #[test]
    fn different_seeds_give_different_instance_choices() {
        let a = Campaign::new(
            &ToyApp,
            CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
                .with_runs(10)
                .with_seed(100),
        )
        .run()
        .unwrap();
        let b = Campaign::new(
            &ToyApp,
            CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
                .with_runs(10)
                .with_seed(200),
        )
        .run()
        .unwrap();
        let ia: Vec<_> = a.runs.iter().map(|r| r.target_instance).collect();
        let ib: Vec<_> = b.runs.iter().map(|r| r.target_instance).collect();
        assert_ne!(ia, ib);
    }

    #[test]
    fn instances_cover_space_uniformly() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(300)
            .with_seed(4);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in &result.runs {
            assert!(r.target_instance >= 1 && r.target_instance <= 11);
            seen.insert(r.target_instance);
        }
        assert_eq!(seen.len(), 11, "R4: all instances sampled");
    }

    struct CrashyApp;
    impl FaultApp for CrashyApp {
        type Output = ();
        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            fs.write_file("/x", &[7u8; 4096]).map_err(|e| e.to_string())
        }
        fn analyze(&self, fs: &dyn FileSystem, _golden: Option<&()>) -> Result<(), String> {
            let back = fs.read_to_vec("/x").map_err(|e| e.to_string())?;
            // Panics on corrupted data — exercises catch_unwind.
            assert!(back.iter().all(|&b| b == 7), "corrupted!");
            Ok(())
        }
        fn classify(&self, _g: &(), _f: &()) -> Outcome {
            Outcome::Benign
        }
        fn name(&self) -> String {
            "CRASHY".into()
        }
    }

    #[test]
    fn panics_count_as_crash() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(10)
            .with_seed(5);
        let result = Campaign::new(&CrashyApp, cfg).run().unwrap();
        assert_eq!(result.tally.crash, 10);
        assert!(result.runs[0].crash_message.as_deref().unwrap_or("").contains("corrupted"));
    }

    struct NoIoApp;
    impl FaultApp for NoIoApp {
        type Output = ();
        fn produce(&self, _fs: &dyn FileSystem) -> Result<(), String> {
            Ok(())
        }
        fn analyze(&self, _fs: &dyn FileSystem, _golden: Option<&()>) -> Result<(), String> {
            Ok(())
        }
        fn classify(&self, _g: &(), _f: &()) -> Outcome {
            Outcome::Benign
        }
        fn name(&self) -> String {
            "NOIO".into()
        }
    }

    #[test]
    fn no_eligible_instances_is_an_error() {
        let cfg =
            CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip())).with_runs(5);
        assert_eq!(
            Campaign::new(&NoIoApp, cfg).run().err(),
            Some(CampaignError::NoEligibleInstances)
        );
    }

    struct BrokenApp;
    impl FaultApp for BrokenApp {
        type Output = ();
        fn produce(&self, _fs: &dyn FileSystem) -> Result<(), String> {
            Err("always fails".into())
        }
        fn analyze(&self, _fs: &dyn FileSystem, _golden: Option<&()>) -> Result<(), String> {
            Ok(())
        }
        fn classify(&self, _g: &(), _f: &()) -> Outcome {
            Outcome::Benign
        }
        fn name(&self) -> String {
            "BROKEN".into()
        }
    }

    #[test]
    fn golden_failure_is_an_error() {
        let cfg =
            CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip())).with_runs(5);
        match Campaign::new(&BrokenApp, cfg).run() {
            Err(CampaignError::GoldenRunFailed(m)) => assert!(m.contains("always fails")),
            other => panic!("unexpected {:?}", other.map(|r| r.tally)),
        }
    }

    #[test]
    fn bad_signature_is_an_error() {
        let sig = FaultSignature::on_write(FaultModel::BitFlip { bits: 0 });
        let cfg = CampaignConfig::new(sig).with_runs(1);
        assert!(matches!(Campaign::new(&ToyApp, cfg).run(), Err(CampaignError::BadSignature(_))));
    }

    #[test]
    fn crash_breakdown_groups_messages() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(8)
            .with_seed(5);
        let result = Campaign::new(&CrashyApp, cfg).run().unwrap();
        let breakdown = result.crash_breakdown();
        assert_eq!(breakdown.len(), 1, "{:?}", breakdown);
        assert_eq!(breakdown[0].1, 8);
        assert!(breakdown[0].0.contains("corrupted"));
    }

    /// Minimal RFC 4180 parse of one row (enough for the tests).
    fn parse_csv_row(row: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut quoted = false;
        let mut chars = row.chars().peekable();
        while let Some(c) = chars.next() {
            match (quoted, c) {
                (true, '"') if chars.peek() == Some(&'"') => {
                    chars.next();
                    cur.push('"');
                }
                (true, '"') => quoted = false,
                (false, '"') => quoted = true,
                (false, ',') => fields.push(std::mem::take(&mut cur)),
                (_, c) => cur.push(c),
            }
        }
        fields.push(cur);
        fields
    }

    #[test]
    fn csv_row_escapes_labels_and_matches_header() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(10)
            .with_seed(5)
            .with_replay(true);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        let columns = CampaignResult::csv_header().split(',').count();

        // A label carrying the CSV delimiter must still parse to
        // exactly the header's column count, with the label intact.
        let row = result.csv_row("NYX,BF");
        let fields = parse_csv_row(&row);
        assert_eq!(fields.len(), columns, "{}", row);
        assert_eq!(fields[0], "NYX,BF");
        assert_eq!(fields[5], "10");
        assert_eq!(fields[6], "replay");

        // Embedded quotes are doubled per RFC 4180.
        let row = result.csv_row("say \"hi\", twice");
        assert!(row.starts_with("\"say \"\"hi\"\", twice\","), "{}", row);
        assert_eq!(parse_csv_row(&row)[0], "say \"hi\", twice");

        // Plain labels stay unquoted.
        assert!(result.csv_row("NYX").starts_with("NYX,"));
    }

    #[test]
    fn campaigns_default_to_replay_and_record_fallbacks() {
        if std::env::var_os("FFIS_REPLAY").is_none() {
            // The CI rerun job sets FFIS_REPLAY=0 to drive the whole
            // suite through the full-rerun path; absent that override,
            // replay is the default.
            let default_cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()));
            assert!(default_cfg.replay, "replay is the default execution mode");
        }
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(5)
            .with_seed(6)
            .with_replay(true);
        let fast = Campaign::new(&ToyApp, cfg.clone()).run().unwrap();
        assert_eq!(fast.mode, ExecutionMode::Replay);
        assert!(fast.used_replay());

        let slow = Campaign::new(&ToyApp, cfg.clone().with_replay(false)).run().unwrap();
        assert_eq!(slow.mode, ExecutionMode::FullRerun { reason: ReplayFallback::Disabled });
        assert!(!slow.used_replay());
        assert_eq!(slow.mode.to_string(), "rerun(disabled)");

        // Non-write primitives fall back with the recorded reason.
        let sig = FaultSignature {
            model: FaultModel::bit_flip(),
            primitive: Primitive::Mknod,
            target: crate::fault::TargetFilter::Any,
        };
        let nodes =
            Campaign::new(&MknodApp, CampaignConfig::new(sig).with_runs(3).with_replay(true))
                .run()
                .unwrap();
        assert_eq!(
            nodes.mode,
            ExecutionMode::FullRerun { reason: ReplayFallback::NonWritePrimitive }
        );
    }

    /// App whose analyze phase violates the read-only law by logging
    /// through the filesystem under test.
    struct ChattyAnalyzeApp;
    impl FaultApp for ChattyAnalyzeApp {
        type Output = Vec<u8>;
        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            fs.write_file_chunked("/d.bin", &[9u8; 8192], 4096).map_err(|e| e.to_string())
        }
        fn analyze(
            &self,
            fs: &dyn FileSystem,
            _golden: Option<&Vec<u8>>,
        ) -> Result<Vec<u8>, String> {
            fs.write_file("/analyze.log", b"analyzing\n").map_err(|e| e.to_string())?;
            fs.read_to_vec("/d.bin").map_err(|e| e.to_string())
        }
        fn classify(&self, g: &Vec<u8>, f: &Vec<u8>) -> Outcome {
            if g == f {
                Outcome::Benign
            } else {
                Outcome::Sdc
            }
        }
        fn name(&self) -> String {
            "CHATTY".into()
        }
    }

    #[test]
    fn analyze_writes_disable_replay_with_reason() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(8)
            .with_seed(21)
            .with_replay(true);
        let result = Campaign::new(&ChattyAnalyzeApp, cfg).run().unwrap();
        assert_eq!(result.mode, ExecutionMode::FullRerun { reason: ReplayFallback::AnalyzeWrites });
        assert_eq!(result.tally.total(), 8);
    }

    struct MknodApp;
    impl FaultApp for MknodApp {
        type Output = ();
        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            fs.mknod("/a", ffis_vfs::NodeKind::Fifo, 0o644, 0).map_err(|e| e.to_string())?;
            fs.mknod("/b", ffis_vfs::NodeKind::Fifo, 0o644, 0).map_err(|e| e.to_string())
        }
        fn analyze(&self, _fs: &dyn FileSystem, _golden: Option<&()>) -> Result<(), String> {
            Ok(())
        }
        fn classify(&self, _g: &(), _f: &()) -> Outcome {
            Outcome::Benign
        }
        fn name(&self) -> String {
            "MKNOD".into()
        }
    }

    #[test]
    fn read_site_campaigns_take_the_analyze_only_fast_path() {
        let cfg = CampaignConfig::new(FaultSignature::on_read(FaultModel::bit_flip()))
            .with_runs(12)
            .with_seed(31)
            .with_replay(true);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        // ToyApp's produce issues no read-back, so every eligible read
        // is analyze-phase and the whole campaign skips produce.
        assert_eq!(result.mode, ExecutionMode::AnalyzeOnly);
        assert_eq!(result.mode.to_string(), "analyze-only");
        assert!(result.mode.is_fast_path() && !result.mode.is_replay());
        assert_eq!(result.tally.total(), 12);
        // ToyApp's analyze reads /out.dat back in one pread.
        assert_eq!(result.profile.eligible, 1);
        for r in &result.runs {
            assert_eq!(r.mode, result.mode, "per-run mode mirrors the campaign mode");
            let rec = r.injection.as_ref().expect("single-instance space always fires");
            assert_eq!(rec.primitive, Primitive::Read);
        }
        // A 2-bit flip in the returned data always perturbs the
        // checksum/file comparison: nothing is benign.
        assert_eq!(result.tally.benign, 0, "{}", result.tally);
    }

    #[test]
    fn analyze_only_equals_full_rerun_run_for_run() {
        let mk = |replay: bool| {
            Campaign::new(
                &ToyApp,
                CampaignConfig::new(FaultSignature::on_read(FaultModel::bit_flip()))
                    .with_runs(16)
                    .with_seed(41)
                    .with_replay(replay),
            )
            .run()
            .unwrap()
        };
        let fast = mk(true);
        let slow = mk(false);
        assert_eq!(fast.mode, ExecutionMode::AnalyzeOnly);
        assert_eq!(slow.mode, ExecutionMode::FullRerun { reason: ReplayFallback::Disabled });
        assert_eq!(fast.tally, slow.tally);
        for (f, s) in fast.runs.iter().zip(&slow.runs) {
            assert_eq!(f.outcome, s.outcome, "run {}", f.run);
            assert_eq!(f.target_instance, s.target_instance);
            assert_eq!(f.injection, s.injection, "run {}", f.run);
            assert_eq!(f.crash_message, s.crash_message, "run {}", f.run);
        }
    }

    /// Toy workload whose produce phase reads its own output back
    /// (without deriving any written byte from it — the
    /// data-independence law holds), so the eligible-read space
    /// straddles the phase seam: one produce-phase read, then
    /// analyze's reads.
    struct ProduceReaderApp;

    impl FaultApp for ProduceReaderApp {
        type Output = Vec<u8>;

        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            fs.write_file_chunked("/a.bin", &[7u8; 4096], 4096).map_err(|e| e.to_string())?;
            // Best-effort verification read; the workload tolerates a
            // corrupted read-back and writes fixed bytes regardless.
            let _ = fs.read_to_vec("/a.bin");
            fs.write_file("/b.bin", &[9u8; 64]).map_err(|e| e.to_string())
        }

        fn analyze(&self, fs: &dyn FileSystem, _g: Option<&Vec<u8>>) -> Result<Vec<u8>, String> {
            let mut out = fs.read_to_vec("/a.bin").map_err(|e| e.to_string())?;
            out.extend(fs.read_to_vec("/b.bin").map_err(|e| e.to_string())?);
            Ok(out)
        }

        fn classify(&self, g: &Vec<u8>, f: &Vec<u8>) -> Outcome {
            if g == f {
                Outcome::Benign
            } else {
                Outcome::Sdc
            }
        }

        fn produce_read_count(&self) -> Option<u64> {
            Some(1)
        }

        fn name(&self) -> String {
            "PRODREAD".into()
        }
    }

    #[test]
    fn phase_straddling_read_campaign_splits_per_run() {
        let cfg = CampaignConfig::new(FaultSignature::on_read(FaultModel::bit_flip()))
            .with_runs(30)
            .with_seed(51)
            .with_replay(true);
        let result = Campaign::new(&ProduceReaderApp, cfg.clone()).run().unwrap();
        // 1 produce-phase read + 2 analyze-phase reads.
        assert_eq!(result.profile.eligible, 3);
        assert_eq!(result.mode, ExecutionMode::PhaseSplit);
        assert_eq!(result.mode.to_string(), "split(analyze-only|rerun(produce-read-fault))");
        let mut saw = (false, false);
        for r in &result.runs {
            match r.target_instance {
                1 => {
                    assert_eq!(
                        r.mode,
                        ExecutionMode::FullRerun { reason: ReplayFallback::ProduceReadFault },
                        "produce-phase target must rerun (run {})",
                        r.run
                    );
                    saw.0 = true;
                }
                _ => {
                    assert_eq!(r.mode, ExecutionMode::AnalyzeOnly, "run {}", r.run);
                    saw.1 = true;
                }
            }
        }
        assert!(saw.0 && saw.1, "30 runs over 3 instances hit both phases");

        // Both strategies agree with the all-rerun reference run for
        // run: tallies, records, messages.
        let slow = Campaign::new(&ProduceReaderApp, cfg.with_replay(false)).run().unwrap();
        assert_eq!(result.tally, slow.tally);
        for (f, s) in result.runs.iter().zip(&slow.runs) {
            assert_eq!(f.outcome, s.outcome, "run {}", f.run);
            assert_eq!(f.injection, s.injection, "run {}", f.run);
            assert_eq!(f.crash_message, s.crash_message, "run {}", f.run);
        }
    }

    /// App that *lies* about its phase-boundary read count: the
    /// declaration cross-check must disable the fast path with the
    /// recorded reason rather than trust it.
    struct WrongDeclarationApp;

    impl FaultApp for WrongDeclarationApp {
        type Output = Vec<u8>;

        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            fs.write_file("/d.bin", &[3u8; 512]).map_err(|e| e.to_string())
        }

        fn analyze(&self, fs: &dyn FileSystem, _g: Option<&Vec<u8>>) -> Result<Vec<u8>, String> {
            fs.read_to_vec("/d.bin").map_err(|e| e.to_string())
        }

        fn classify(&self, g: &Vec<u8>, f: &Vec<u8>) -> Outcome {
            if g == f {
                Outcome::Benign
            } else {
                Outcome::Sdc
            }
        }

        fn produce_read_count(&self) -> Option<u64> {
            Some(5) // produce actually issues zero reads
        }

        fn name(&self) -> String {
            "LIAR".into()
        }
    }

    #[test]
    fn wrong_declared_boundary_count_disables_the_fast_path() {
        let cfg = CampaignConfig::new(FaultSignature::on_read(FaultModel::bit_flip()))
            .with_runs(4)
            .with_seed(61)
            .with_replay(true);
        let result = Campaign::new(&WrongDeclarationApp, cfg).run().unwrap();
        assert_eq!(result.mode, ExecutionMode::FullRerun { reason: ReplayFallback::TraceMismatch });
        assert_eq!(result.tally.total(), 4);
    }

    #[test]
    fn read_site_analyze_writes_disable_the_fast_path_with_reason() {
        let cfg = CampaignConfig::new(FaultSignature::on_read(FaultModel::bit_flip()))
            .with_runs(6)
            .with_seed(62)
            .with_replay(true);
        let result = Campaign::new(&ChattyAnalyzeApp, cfg).run().unwrap();
        assert_eq!(result.mode, ExecutionMode::FullRerun { reason: ReplayFallback::AnalyzeWrites });
        assert_eq!(result.tally.total(), 6);
    }

    #[test]
    fn dropped_read_leaves_stale_zeroed_buffer() {
        // ToyApp reads into a zeroed buffer; DROPPED READ hands that
        // stale buffer back with full success, so analyze sees an
        // all-zero file of the right length -> the checksum detector
        // fires on every run.
        let cfg = CampaignConfig::new(FaultSignature::on_read(FaultModel::dropped_write()))
            .with_runs(6)
            .with_seed(33);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        assert_eq!(result.tally.detected, 6, "{}", result.tally);
        for r in &result.runs {
            let rec = r.injection.as_ref().unwrap();
            assert!(rec.detail.contains("dropped read"), "{}", rec.detail);
        }
    }

    #[test]
    fn single_signature_runs_carry_campaign_mode() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(5)
            .with_seed(34)
            .with_replay(true);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        assert_eq!(result.mode, ExecutionMode::Replay);
        assert!(result.runs.iter().all(|r| r.mode == ExecutionMode::Replay));
    }

    fn mixed_cfg(parallel: bool) -> MixedCampaignConfig {
        let mut cfg = MixedCampaignConfig::new(vec![
            FaultSignature::on_write(FaultModel::bit_flip()),
            FaultSignature::on_read(FaultModel::bit_flip()),
            FaultSignature::on_read(FaultModel::dropped_write()),
        ])
        .with_runs(24)
        .with_seed(35)
        .with_replay(true);
        cfg.parallel = parallel;
        cfg
    }

    #[test]
    fn mixed_campaign_interleaves_replay_and_rerun() {
        let result = MixedCampaign::new(&ToyApp, mixed_cfg(true)).run().unwrap();
        assert_eq!(result.runs.len(), 24);
        assert_eq!(result.shards.len(), 3);
        assert_eq!(result.shards[0].mode, ExecutionMode::Replay);
        // ToyApp's produce never reads, so the read shards qualify for
        // the analyze-only fast path in full.
        assert_eq!(result.shards[1].mode, ExecutionMode::AnalyzeOnly);
        assert_eq!(result.shards[2].mode, ExecutionMode::AnalyzeOnly);
        assert_eq!(result.shards[0].eligible, 11);
        assert_eq!(result.shards[1].eligible, 1);
        // Round-robin schedule: run i belongs to shard i % 3, and its
        // recorded mode matches its shard's strategy.
        for r in &result.runs {
            assert_eq!(r.mode, result.shards[r.run % 3].mode, "run {}", r.run);
        }
        // Shard tallies partition the global tally.
        let mut merged = OutcomeTally::new();
        for s in &result.shards {
            assert_eq!(s.tally.total(), 8);
            merged.merge(&s.tally);
        }
        assert_eq!(merged, result.tally);
        assert_eq!(result.shard_runs(1).count(), 8);
    }

    #[test]
    fn mixed_campaign_is_deterministic_across_parallelism_and_reruns() {
        let a = MixedCampaign::new(&ToyApp, mixed_cfg(false)).run().unwrap();
        let b = MixedCampaign::new(&ToyApp, mixed_cfg(true)).run().unwrap();
        let c = MixedCampaign::new(&ToyApp, mixed_cfg(true)).run().unwrap();
        for other in [&b, &c] {
            assert_eq!(a.tally, other.tally);
            for (x, y) in a.runs.iter().zip(&other.runs) {
                assert_eq!(x.run, y.run);
                assert_eq!(x.outcome, y.outcome);
                assert_eq!(x.target_instance, y.target_instance);
                assert_eq!(x.mode, y.mode);
                assert_eq!(x.injection, y.injection);
                assert_eq!(x.crash_message, y.crash_message);
            }
        }
    }

    #[test]
    fn mixed_campaign_with_replay_off_reruns_everything() {
        let result = MixedCampaign::new(&ToyApp, mixed_cfg(true).with_replay(false)).run().unwrap();
        for s in &result.shards {
            assert_eq!(s.mode, ExecutionMode::FullRerun { reason: ReplayFallback::Disabled });
        }
    }

    #[test]
    fn mixed_campaign_rejects_empty_and_invalid_signatures() {
        let empty = MixedCampaignConfig::new(Vec::new()).with_runs(1);
        assert!(matches!(
            MixedCampaign::new(&ToyApp, empty).run(),
            Err(CampaignError::BadSignature(_))
        ));
        let invalid =
            MixedCampaignConfig::new(vec![FaultSignature::on_write(FaultModel::BitFlip {
                bits: 0,
            })])
            .with_runs(1);
        assert!(matches!(
            MixedCampaign::new(&ToyApp, invalid).run(),
            Err(CampaignError::BadSignature(_))
        ));
    }

    #[test]
    fn runs_with_filters_by_outcome() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::dropped_write()))
            .with_runs(20)
            .with_seed(6);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        let detected: Vec<_> = result.runs_with(Outcome::Detected).collect();
        assert_eq!(detected.len() as u64, result.tally.detected);
        for r in detected {
            assert_eq!(r.outcome, Outcome::Detected);
        }
    }

    fn tmp_journal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ffis-campaign-journal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("run.journal")
    }

    /// An application whose analyze phase wedges in an unbounded I/O
    /// loop whenever the data it reads back is corrupted — the paper's
    /// "corrupted metadata steers the application into a hang" failure
    /// mode, reduced to its essence.
    struct LoopyApp;

    impl FaultApp for LoopyApp {
        type Output = Vec<u8>;

        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            fs.write_file("/data", &[7u8; 4096]).map_err(|e| e.to_string())
        }

        fn analyze(&self, fs: &dyn FileSystem, _g: Option<&Vec<u8>>) -> Result<Vec<u8>, String> {
            let back = fs.read_to_vec("/data").map_err(|e| e.to_string())?;
            while back.iter().any(|&b| b != 7) {
                // Corrupted state: poll the file forever, like an
                // application spinning on a consistency marker that
                // will never appear.
                let _ = fs.read_to_vec("/data");
            }
            Ok(back)
        }

        fn classify(&self, golden: &Vec<u8>, faulty: &Vec<u8>) -> Outcome {
            if golden == faulty {
                Outcome::Benign
            } else {
                Outcome::Sdc
            }
        }

        fn name(&self) -> String {
            "LOOPY".into()
        }
    }

    #[test]
    fn fuel_exhaustion_aborts_wedged_runs_into_crash() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(4)
            .with_seed(11)
            .with_fuel(10_000);
        let result = Campaign::new(&LoopyApp, cfg).run().unwrap();
        assert_eq!(result.tally.crash, 4, "{}", result.tally);
        for r in &result.runs {
            assert_eq!(r.aborted, Some(RunAborted::FuelExhausted { budget: 10_000 }));
            assert!(
                r.crash_message.as_deref().unwrap().contains("fuel exhausted"),
                "{:?}",
                r.crash_message
            );
        }
        // Fuel exhaustion is deterministic: the same config reproduces
        // the same aborts.
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(4)
            .with_seed(11)
            .with_fuel(10_000);
        let again = Campaign::new(&LoopyApp, cfg).run().unwrap();
        assert_eq!(result.runs, again.runs);
    }

    #[test]
    fn fuel_budget_is_invisible_to_healthy_runs() {
        let base = || {
            CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
                .with_runs(20)
                .with_seed(12)
        };
        let plain = Campaign::new(&ToyApp, base()).run().unwrap();
        let fueled = Campaign::new(&ToyApp, base().with_fuel(1_000_000)).run().unwrap();
        assert_eq!(plain.runs, fueled.runs);
        assert_eq!(plain.tally, fueled.tally);
    }

    #[test]
    fn wall_clock_backstop_aborts_with_deadline_reason() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(2)
            .with_seed(13)
            .with_wall_limit(Duration::ZERO);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        // A zero deadline trips at the first primitive crossing of
        // every injection run.
        assert_eq!(result.tally.crash, 2);
        for r in &result.runs {
            assert_eq!(r.aborted, Some(RunAborted::DeadlineExceeded { limit_ms: 0 }));
        }
    }

    #[test]
    fn run_result_payload_codec_roundtrips() {
        let samples = vec![
            RunResult {
                run: 3,
                outcome: Outcome::Sdc,
                target_instance: 7,
                injection: Some(InjectionRecord {
                    primitive: Primitive::Write,
                    instance: 7,
                    prim_seq: 21,
                    path: Some("/out.dat".into()),
                    offset: Some(8192),
                    len: 4096,
                    detail: "flip bits 3,4".into(),
                }),
                crash_message: None,
                mode: ExecutionMode::Replay,
                aborted: None,
            },
            RunResult {
                run: 0,
                outcome: Outcome::Benign,
                target_instance: 1,
                injection: None,
                crash_message: None,
                mode: ExecutionMode::FullRerun { reason: ReplayFallback::ProduceReadFault },
                aborted: None,
            },
            RunResult {
                run: 9,
                outcome: Outcome::Crash,
                target_instance: 2,
                injection: Some(InjectionRecord {
                    primitive: Primitive::Read,
                    instance: 2,
                    prim_seq: 5,
                    path: None,
                    offset: None,
                    len: 0,
                    detail: "dropped read".into(),
                }),
                crash_message: Some("aborted: I/O fuel exhausted (budget 500 ops)".into()),
                mode: ExecutionMode::AnalyzeOnly,
                aborted: Some(RunAborted::FuelExhausted { budget: 500 }),
            },
        ];
        for r in samples {
            let entry = JournalEntry {
                index: r.run,
                outcome: r.outcome,
                fired: r.injection.is_some(),
                payload: r.encode(),
            };
            assert_eq!(RunResult::decode(&entry).as_ref(), Some(&r));
        }
        // fired must agree with the injection record.
        let benign = RunResult {
            run: 0,
            outcome: Outcome::Benign,
            target_instance: 1,
            injection: None,
            crash_message: None,
            mode: ExecutionMode::Replay,
            aborted: None,
        };
        let lying = JournalEntry {
            index: 0,
            outcome: Outcome::Benign,
            fired: true,
            payload: benign.encode(),
        };
        assert_eq!(RunResult::decode(&lying), None);
    }

    #[test]
    fn interrupted_campaign_resumes_byte_identically() {
        let path = tmp_journal("single-resume");
        let base = || {
            let mut cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
                .with_runs(30)
                .with_seed(14);
            cfg.parallel = false;
            cfg
        };
        let control = Campaign::new(&ToyApp, base()).run().unwrap();
        assert_eq!(control.status, CompletionStatus::Complete);
        assert_eq!(control.executed, 30);
        assert_eq!(control.resumed, 0);

        // Interrupt after 9 runs. `resume` on a missing journal file
        // starts fresh, so the flag is safe to pass unconditionally.
        let cancel = CancelToken::after_runs(9);
        let cfg = base().with_journal(&path).with_resume(true).with_cancel(cancel);
        let interrupted = Campaign::new(&ToyApp, cfg).run().unwrap();
        assert_eq!(interrupted.status, CompletionStatus::Interrupted);
        assert_eq!(interrupted.executed, 9);
        assert_eq!(interrupted.tally.total(), 9, "partial tallies cover completed runs only");

        // Resume: journaled runs replay at cost 0, the rest execute.
        let cfg = base().with_journal(&path).with_resume(true);
        let resumed = Campaign::new(&ToyApp, cfg).run().unwrap();
        assert_eq!(resumed.status, CompletionStatus::Complete);
        assert_eq!(resumed.resumed, 9, "journaled runs are not re-executed");
        assert_eq!(resumed.executed, 21);
        assert_eq!(resumed.plan_fingerprint, control.plan_fingerprint);
        assert_eq!(resumed.tally, control.tally);
        assert_eq!(resumed.runs, control.runs, "resume law: byte-identical records");
        assert_eq!(resumed.run_digest(), control.run_digest());
    }

    #[test]
    fn resume_rejects_a_journal_from_a_different_plan() {
        let path = tmp_journal("plan-mismatch");
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(5)
            .with_seed(15)
            .with_journal(&path);
        Campaign::new(&ToyApp, cfg).run().unwrap();

        // Same journal, different seed → different plan fingerprint.
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(5)
            .with_seed(16)
            .with_journal(&path)
            .with_resume(true);
        let err = Campaign::new(&ToyApp, cfg).run().unwrap_err();
        assert!(matches!(err, CampaignError::Journal(JournalError::PlanMismatch { .. })), "{err}");
        assert!(err.to_string().contains("does not match this campaign"), "{err}");
    }

    #[test]
    fn completed_campaign_resumes_without_reexecuting_anything() {
        let path = tmp_journal("noop-resume");
        let base = || {
            CampaignConfig::new(FaultSignature::on_write(FaultModel::dropped_write()))
                .with_runs(12)
                .with_seed(17)
                .with_journal(&path)
                .with_resume(true)
        };
        let first = Campaign::new(&ToyApp, base()).run().unwrap();
        assert_eq!(first.executed, 12);
        let second = Campaign::new(&ToyApp, base()).run().unwrap();
        assert_eq!(second.executed, 0, "fully journaled campaign re-executes nothing");
        assert_eq!(second.resumed, 12);
        assert_eq!(second.runs, first.runs);
        assert_eq!(second.run_digest(), first.run_digest());
    }

    #[test]
    fn mixed_campaign_resumes_byte_identically() {
        let path = tmp_journal("mixed-resume");
        let base = || mixed_cfg(false).with_seed(18);
        let control = MixedCampaign::new(&ToyApp, base()).run().unwrap();
        assert_eq!(control.status, CompletionStatus::Complete);

        let cancel = CancelToken::after_runs(7);
        let cfg = base().with_journal(&path).with_resume(true).with_cancel(cancel);
        let interrupted = MixedCampaign::new(&ToyApp, cfg).run().unwrap();
        assert_eq!(interrupted.status, CompletionStatus::Interrupted);
        assert_eq!(interrupted.executed, 7);

        let cfg = base().with_journal(&path).with_resume(true);
        let resumed = MixedCampaign::new(&ToyApp, cfg).run().unwrap();
        assert_eq!(resumed.status, CompletionStatus::Complete);
        assert_eq!(resumed.resumed, 7);
        assert_eq!(resumed.executed, 17);
        assert_eq!(resumed.tally, control.tally);
        assert_eq!(resumed.runs, control.runs);
        assert_eq!(resumed.run_digest(), control.run_digest());
        for (a, b) in resumed.shards.iter().zip(&control.shards) {
            assert_eq!(a.tally, b.tally);
        }
    }
}
