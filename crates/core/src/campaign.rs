//! The campaign runner: profile → inject × N → classify → tally.
//!
//! Implements the full FFIS workflow of Figure 4: load the user
//! configuration, run the I/O profiler fault-free to obtain the
//! dynamic primitive count, then repeatedly (1) pick a uniformly
//! random instance of the target primitive, (2) mount a fresh FFISFS,
//! (3) run the application with the armed injector, (4) classify the
//! outcome against the golden run, until the configured number of
//! runs (statistical significance) is reached. Runs are independent,
//! so the campaign fans out across cores with rayon — the paper runs
//! its campaigns on a 24-core node.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rayon::prelude::*;

use ffis_vfs::{FfisFs, Interceptor, MemFs, Primitive, ReplayCursor, TraceOp, TraceRecorder};

use crate::fault::FaultSignature;
use crate::injector::{ArmedInjector, InjectionRecord};
use crate::outcome::{FaultApp, Outcome, OutcomeTally};
use crate::profiler::{IoProfiler, ProfileReport};
use crate::rng::Rng;

/// Campaign configuration (the paper's user configuration plus the
/// execution knobs).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Fault signature to inject.
    pub signature: FaultSignature,
    /// Number of injection runs (paper: 1,000 per cell).
    pub runs: usize,
    /// Root seed; run `i` derives child stream `i`.
    pub seed: u64,
    /// Fan runs out across the rayon thread pool.
    pub parallel: bool,
    /// Golden-trace replay fast path: instead of re-executing the
    /// application per injection run, capture its mutating I/O once
    /// and replay that trace through the armed injector, then run only
    /// the application's [`FaultApp::verify`] phase. Requires a
    /// verify-capable app and a `Write`-primitive (buffer-level) fault
    /// signature; silently falls back to full reruns otherwise
    /// ([`CampaignResult::used_replay`] reports which path ran).
    /// Off by default: per-run outcomes are equivalent, but legacy
    /// full reruns remain the reference semantics.
    pub replay: bool,
}

impl CampaignConfig {
    /// Config with paper defaults (1,000 runs, parallel).
    pub fn new(signature: FaultSignature) -> Self {
        CampaignConfig { signature, runs: 1000, seed: 0xFF15_0001, parallel: true, replay: false }
    }

    /// Override the run count.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable the golden-trace replay fast path.
    pub fn with_replay(mut self, replay: bool) -> Self {
        self.replay = replay;
        self
    }
}

/// Result of one injection run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Run index within the campaign.
    pub run: usize,
    /// Classified outcome.
    pub outcome: Outcome,
    /// The armed instance (1-based) this run targeted.
    pub target_instance: u64,
    /// What the injector actually did (None = never fired).
    pub injection: Option<InjectionRecord>,
    /// Crash message, when the run crashed.
    pub crash_message: Option<String>,
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Outcome tally with CI accessors.
    pub tally: OutcomeTally,
    /// Per-run results (in run order).
    pub runs: Vec<RunResult>,
    /// The fault-free profile that sized the injection space.
    pub profile: ProfileReport,
    /// True when the golden-trace replay fast path executed the
    /// injection runs; false for legacy full re-execution.
    pub used_replay: bool,
}

impl CampaignResult {
    /// Runs with a given outcome.
    pub fn runs_with(&self, o: Outcome) -> impl Iterator<Item = &RunResult> {
        self.runs.iter().filter(move |r| r.outcome == o)
    }

    /// Group crash runs by the leading token of their message — a
    /// quick taxonomy of *where* the stack gave up (file-format
    /// validation vs. application checks vs. analysis tooling).
    /// Returns `(message prefix, count)` sorted by descending count.
    pub fn crash_breakdown(&self) -> Vec<(String, u64)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for r in self.runs_with(Outcome::Crash) {
            let msg = r.crash_message.as_deref().unwrap_or("<no message>");
            // First clause up to ':' keeps the error source, drops the
            // per-run specifics (offsets, sizes).
            let key = msg.split(':').next().unwrap_or(msg).trim().to_string();
            *counts.entry(key).or_insert(0) += 1;
        }
        let mut out: Vec<(String, u64)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// One CSV row per outcome class: `label,benign,detected,sdc,crash,n`.
    pub fn csv_row(&self, label: &str) -> String {
        format!(
            "{},{},{},{},{},{}",
            label,
            self.tally.benign,
            self.tally.detected,
            self.tally.sdc,
            self.tally.crash,
            self.tally.total()
        )
    }
}

/// Campaign errors (distinct from application crashes, which are data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The fault signature failed validation.
    BadSignature(String),
    /// The golden (fault-free) run failed — nothing to compare against.
    GoldenRunFailed(String),
    /// The profiler found no eligible instance to inject into.
    NoEligibleInstances,
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::BadSignature(m) => write!(f, "invalid fault signature: {}", m),
            CampaignError::GoldenRunFailed(m) => write!(f, "golden run failed: {}", m),
            CampaignError::NoEligibleInstances => {
                f.write_str("no eligible primitive instances to inject into")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// The campaign driver.
pub struct Campaign<'a, A: FaultApp> {
    app: &'a A,
    config: CampaignConfig,
}

impl<'a, A: FaultApp> Campaign<'a, A> {
    /// New campaign over `app`.
    pub fn new(app: &'a A, config: CampaignConfig) -> Self {
        Campaign { app, config }
    }

    /// Execute the whole workflow.
    pub fn run(&self) -> Result<CampaignResult, CampaignError> {
        self.config.signature.validate().map_err(CampaignError::BadSignature)?;

        // Phase 1+2: golden run doubles as the profiling run — the
        // paper executes the application fault-free once to both count
        // primitives and capture the reference output. When the replay
        // fast path is requested, the same run also records the golden
        // trace.
        let profiler =
            IoProfiler::new(self.config.signature.primitive, self.config.signature.target.clone());
        let recorder = Arc::new(TraceRecorder::new());
        let extras: Vec<Arc<dyn Interceptor>> =
            if self.config.replay { vec![recorder.clone()] } else { Vec::new() };
        let (profile, golden, base) = profiler
            .profile_with(&extras, |fs| self.app.run(fs))
            .map_err(CampaignError::GoldenRunFailed)?;
        if profile.eligible == 0 {
            return Err(CampaignError::NoEligibleInstances);
        }

        let ops = self
            .config
            .replay
            .then(|| self.replay_plan(recorder.take_ops(), profile.eligible, &golden, &base))
            .flatten()
            .map(Arc::new);

        // Phase 3: N injection runs.
        let root = Rng::seed_from(self.config.seed);
        let golden = Arc::new(golden);
        let finish = |i: usize,
                      target_instance: u64,
                      injection: Option<InjectionRecord>,
                      app_result: std::thread::Result<Result<A::Output, String>>|
         -> RunResult {
            match app_result {
                Ok(Ok(faulty)) => RunResult {
                    run: i,
                    outcome: self.app.classify(&golden, &faulty),
                    target_instance,
                    injection,
                    crash_message: None,
                },
                Ok(Err(msg)) => RunResult {
                    run: i,
                    outcome: Outcome::Crash,
                    target_instance,
                    injection,
                    crash_message: Some(msg),
                },
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "panic".to_string());
                    RunResult {
                        run: i,
                        outcome: Outcome::Crash,
                        target_instance,
                        injection,
                        crash_message: Some(msg),
                    }
                }
            }
        };
        let run_one = |i: usize| -> RunResult {
            let mut rng = root.child(i as u64);
            // "generates a random number from 0 to count-1" → 1-based
            // instance index in [1, count].
            let target_instance = rng.gen_range(profile.eligible) + 1;
            let injector = Arc::new(ArmedInjector::new(
                self.config.signature.clone(),
                target_instance,
                rng.next_u64(),
            ));
            let ffs = FfisFs::mount(Arc::new(MemFs::new()));
            ffs.attach(injector.clone());
            let app_result = match &ops {
                // Fast path: replay the golden trace through the armed
                // injector (the fault lands in the same instance it
                // would during a real execution), then verify.
                Some(ops) => catch_unwind(AssertUnwindSafe(|| -> Result<A::Output, String> {
                    ReplayCursor::new().replay(&*ffs, ops).map_err(|e| e.to_string())?;
                    self.app.verify(&*ffs, &golden).expect("replay path is gated on verify support")
                })),
                // Reference path: full application re-execution.
                None => catch_unwind(AssertUnwindSafe(|| self.app.run(&*ffs))),
            };
            ffs.unmount();
            finish(i, target_instance, injector.record(), app_result)
        };

        let runs: Vec<RunResult> = if self.config.parallel {
            (0..self.config.runs).into_par_iter().map(run_one).collect()
        } else {
            (0..self.config.runs).map(run_one).collect()
        };
        let used_replay = ops.is_some();

        let mut tally = OutcomeTally::new();
        for r in &runs {
            if r.injection.is_none() && r.outcome == Outcome::Benign {
                // Fault never fired *and* output matched: not a real
                // trial. (A crash before the fire point still counts —
                // mount-time effects are real.)
                tally.no_fire += 1;
            }
            tally.record(r.outcome);
        }
        Ok(CampaignResult { tally, runs, profile, used_replay })
    }

    /// Gate and validate the replay fast path. Returns the replayable
    /// op stream, or `None` to fall back to full re-execution:
    ///
    /// * the fault primitive must be `Write`: buffer-level faults
    ///   (`Replace` keeps the length, `Drop` skips the device write)
    ///   can never make a replayed op *fail*, so the straight-line
    ///   trace stays faithful. Parameter faults (mknod/chmod/truncate)
    ///   could make an op error that the real application would have
    ///   tolerated and continued past — unknowable from a trace — and
    ///   read-path faults corrupt data the replay never touches;
    ///   both fall back.
    /// * the trace must contain exactly as many eligible writes as the
    ///   profiler counted — a golden run whose eligible write *failed*
    ///   (counted when attempted, recorded only on success) would
    ///   shift replay instance numbering off the legacy path's,
    /// * the app must expose a [`FaultApp::verify`] phase satisfying
    ///   the golden-identity law on the captured snapshot,
    /// * an uninjected full replay must rebuild state that verifies
    ///   benign (the fidelity self-check).
    fn replay_plan(
        &self,
        ops: Vec<TraceOp>,
        eligible: u64,
        golden: &A::Output,
        golden_fs: &MemFs,
    ) -> Option<Vec<TraceOp>> {
        if self.config.signature.primitive != Primitive::Write {
            return None;
        }
        let recorded_eligible = ops
            .iter()
            .filter(|op| op.is_write() && self.config.signature.target.matches(op.write_path()))
            .count() as u64;
        if recorded_eligible != eligible {
            return None;
        }
        if !crate::outcome::verify_matches_golden(self.app, golden_fs, golden) {
            return None;
        }
        let ffs = FfisFs::mount(Arc::new(MemFs::new()));
        ReplayCursor::new().replay(&*ffs, &ops).ok()?;
        crate::outcome::verify_matches_golden(self.app, &*ffs, golden).then_some(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;
    use ffis_vfs::{FileSystem, FileSystemExt};

    /// Toy workload: writes a 10-block data file plus a log, then
    /// "analyzes" by summing the data bytes. Classification mimics the
    /// paper's scheme: bitwise-equal file = benign; sum parity works
    /// as a stand-in detector.
    struct ToyApp;

    #[derive(Clone)]
    struct ToyOutput {
        file: Vec<u8>,
        checksum: u64,
    }

    impl FaultApp for ToyApp {
        type Output = ToyOutput;

        fn run(&self, fs: &dyn FileSystem) -> Result<ToyOutput, String> {
            let data: Vec<u8> = (0..4096 * 10).map(|i| (i % 255) as u8).collect();
            fs.write_file_chunked("/out.dat", &data, 4096).map_err(|e| e.to_string())?;
            fs.write_file("/run.log", b"ok\n").map_err(|e| e.to_string())?;
            let back = fs.read_to_vec("/out.dat").map_err(|e| e.to_string())?;
            if back.len() != data.len() {
                return Err("short file".into());
            }
            let checksum = back.iter().map(|&b| b as u64).sum();
            Ok(ToyOutput { file: back, checksum })
        }

        fn classify(&self, golden: &ToyOutput, faulty: &ToyOutput) -> Outcome {
            if golden.file == faulty.file {
                Outcome::Benign
            } else if faulty.checksum.abs_diff(golden.checksum) > 1000 {
                Outcome::Detected
            } else {
                Outcome::Sdc
            }
        }

        fn name(&self) -> String {
            "TOY".into()
        }
    }

    #[test]
    fn bitflip_campaign_runs_and_classifies() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(50)
            .with_seed(1);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        assert_eq!(result.tally.total(), 50);
        assert_eq!(result.profile.eligible, 11); // 10 chunks + 1 log write
                                                 // Every run fired (profile count == run count space).
        assert_eq!(result.tally.no_fire, 0);
        // A 2-bit flip in /out.dat always changes the file...
        // unless it hit the log write (1 in 11 chance).
        assert!(result.tally.benign < 20);
        assert!(result.tally.sdc + result.tally.detected > 30);
    }

    #[test]
    fn dropped_write_campaign_mostly_detected() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::dropped_write()))
            .with_runs(110)
            .with_seed(2);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        // 9 of the 11 write instances are interior data chunks whose
        // loss moves the checksum past the detection threshold; the
        // last chunk shortens the file (crash) and the log write is
        // invisible to classification (benign).
        assert!(result.tally.detected >= 66, "{}", result.tally);
        assert!(result.tally.benign <= 22, "{}", result.tally);
        assert!(result.tally.crash <= 22, "{}", result.tally);
    }

    #[test]
    fn serial_equals_parallel() {
        let mk = |parallel| {
            let mut cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
                .with_runs(30)
                .with_seed(3);
            cfg.parallel = parallel;
            Campaign::new(&ToyApp, cfg).run().unwrap()
        };
        let a = mk(false);
        let b = mk(true);
        assert_eq!(a.tally, b.tally);
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.target_instance, y.target_instance);
        }
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(20)
            .with_seed(9);
        let a = Campaign::new(&ToyApp, cfg.clone()).run().unwrap();
        let b = Campaign::new(&ToyApp, cfg).run().unwrap();
        assert_eq!(a.tally, b.tally);
    }

    #[test]
    fn different_seeds_give_different_instance_choices() {
        let a = Campaign::new(
            &ToyApp,
            CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
                .with_runs(10)
                .with_seed(100),
        )
        .run()
        .unwrap();
        let b = Campaign::new(
            &ToyApp,
            CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
                .with_runs(10)
                .with_seed(200),
        )
        .run()
        .unwrap();
        let ia: Vec<_> = a.runs.iter().map(|r| r.target_instance).collect();
        let ib: Vec<_> = b.runs.iter().map(|r| r.target_instance).collect();
        assert_ne!(ia, ib);
    }

    #[test]
    fn instances_cover_space_uniformly() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(300)
            .with_seed(4);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in &result.runs {
            assert!(r.target_instance >= 1 && r.target_instance <= 11);
            seen.insert(r.target_instance);
        }
        assert_eq!(seen.len(), 11, "R4: all instances sampled");
    }

    struct CrashyApp;
    impl FaultApp for CrashyApp {
        type Output = ();
        fn run(&self, fs: &dyn FileSystem) -> Result<(), String> {
            fs.write_file("/x", &[7u8; 4096]).map_err(|e| e.to_string())?;
            let back = fs.read_to_vec("/x").map_err(|e| e.to_string())?;
            // Panics on corrupted data — exercises catch_unwind.
            assert!(back.iter().all(|&b| b == 7), "corrupted!");
            Ok(())
        }
        fn classify(&self, _g: &(), _f: &()) -> Outcome {
            Outcome::Benign
        }
        fn name(&self) -> String {
            "CRASHY".into()
        }
    }

    #[test]
    fn panics_count_as_crash() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(10)
            .with_seed(5);
        let result = Campaign::new(&CrashyApp, cfg).run().unwrap();
        assert_eq!(result.tally.crash, 10);
        assert!(result.runs[0].crash_message.as_deref().unwrap_or("").contains("corrupted"));
    }

    struct NoIoApp;
    impl FaultApp for NoIoApp {
        type Output = ();
        fn run(&self, _fs: &dyn FileSystem) -> Result<(), String> {
            Ok(())
        }
        fn classify(&self, _g: &(), _f: &()) -> Outcome {
            Outcome::Benign
        }
        fn name(&self) -> String {
            "NOIO".into()
        }
    }

    #[test]
    fn no_eligible_instances_is_an_error() {
        let cfg =
            CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip())).with_runs(5);
        assert_eq!(
            Campaign::new(&NoIoApp, cfg).run().err(),
            Some(CampaignError::NoEligibleInstances)
        );
    }

    struct BrokenApp;
    impl FaultApp for BrokenApp {
        type Output = ();
        fn run(&self, _fs: &dyn FileSystem) -> Result<(), String> {
            Err("always fails".into())
        }
        fn classify(&self, _g: &(), _f: &()) -> Outcome {
            Outcome::Benign
        }
        fn name(&self) -> String {
            "BROKEN".into()
        }
    }

    #[test]
    fn golden_failure_is_an_error() {
        let cfg =
            CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip())).with_runs(5);
        match Campaign::new(&BrokenApp, cfg).run() {
            Err(CampaignError::GoldenRunFailed(m)) => assert!(m.contains("always fails")),
            other => panic!("unexpected {:?}", other.map(|r| r.tally)),
        }
    }

    #[test]
    fn bad_signature_is_an_error() {
        let sig = FaultSignature::on_write(FaultModel::BitFlip { bits: 0 });
        let cfg = CampaignConfig::new(sig).with_runs(1);
        assert!(matches!(Campaign::new(&ToyApp, cfg).run(), Err(CampaignError::BadSignature(_))));
    }

    #[test]
    fn crash_breakdown_groups_messages() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(8)
            .with_seed(5);
        let result = Campaign::new(&CrashyApp, cfg).run().unwrap();
        let breakdown = result.crash_breakdown();
        assert_eq!(breakdown.len(), 1, "{:?}", breakdown);
        assert_eq!(breakdown[0].1, 8);
        assert!(breakdown[0].0.contains("corrupted"));
    }

    #[test]
    fn csv_row_format() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(10)
            .with_seed(5);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        let row = result.csv_row("NYX,BF".trim_matches(',')); // label passthrough
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), 7); // label carries its own comma here
        assert_eq!(fields.last().unwrap(), &"10");
    }

    #[test]
    fn runs_with_filters_by_outcome() {
        let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::dropped_write()))
            .with_runs(20)
            .with_seed(6);
        let result = Campaign::new(&ToyApp, cfg).run().unwrap();
        let detected: Vec<_> = result.runs_with(Outcome::Detected).collect();
        assert_eq!(detected.len() as u64, result.tally.detected);
        for r in detected {
            assert_eq!(r.outcome, Outcome::Detected);
        }
    }
}
