//! Fault models and fault signatures (paper §III-B, Table I, §IV-B).
//!
//! FFIS supports three fault models, each corresponding to a
//! manifestation of SSD partial failures:
//!
//! * [`FaultModel::BitFlip`] — "flip consecutive multiple bits" in the
//!   buffer passed to `pwrite` (default 2 bits, per §IV-B; footnote 3
//!   also evaluates a 4-bit variant — exposed here as `bits`).
//! * [`FaultModel::ShornWrite`] — "completely write the first 3/8th of
//!   \[a\] 4KB block or first 7/8th of \[a\] 4KB block to the device at
//!   the granularity of 512B"; the reported size stays the original,
//!   so the torn tail silently carries *undefined* device data.
//! * [`FaultModel::DroppedWrite`] — "the write operation is ignored"
//!   while success is reported.
//!
//! Each model can be hosted at either **injection site** of the data
//! path ([`InjectionSite`]): the write site (the paper's principal
//! campaigns — corrupt what reaches the device) or the read site
//! (corrupt what the device *returns* while the stored bytes stay
//! pristine — the uncorrectable-read-error regime that slips past the
//! device ECC). At the read site the torn and dropped models go by
//! their read names, SHORN READ and DROPPED READ; the site-aware
//! [`FaultModel::label_at`] / [`FaultModel::name_at`] /
//! [`FaultModel::feature_description_at`] render either vocabulary.

use crate::rng::Rng;
use ffis_vfs::{Primitive, BLOCK_SIZE, SECTOR_SIZE};

/// Which side of the data path hosts the fault: the buffer travelling
/// *to* the device (write site) or the buffer returned *from* it
/// (read site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionSite {
    /// Corrupt the data handed to the device (`FFIS_write` and the
    /// scalar-parameter primitives). Persistent: the damage lands on
    /// the device and every later read observes it.
    Write,
    /// Corrupt the data returned to the application (`FFIS_read`).
    /// Transient: the device state stays byte-identical; only this
    /// transfer's copy is damaged.
    Read,
}

impl InjectionSite {
    /// Lower-case site token used in reports.
    pub fn token(self) -> &'static str {
        match self {
            InjectionSite::Write => "write",
            InjectionSite::Read => "read",
        }
    }
}

impl std::fmt::Display for InjectionSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// How much of each 4 KiB block a shorn write persists (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShornKeep {
    /// First 3/8 of the block (3 sectors of 8).
    ThreeEighths,
    /// First 7/8 of the block (7 sectors of 8) — the §IV-B default
    /// ("lose the last 1/8th of the data").
    SevenEighths,
}

impl ShornKeep {
    /// Sectors persisted per 8-sector block.
    pub fn sectors_kept(self) -> usize {
        match self {
            ShornKeep::ThreeEighths => 3,
            ShornKeep::SevenEighths => 7,
        }
    }

    /// Fraction of the block persisted.
    pub fn fraction(self) -> f64 {
        self.sectors_kept() as f64 / 8.0
    }
}

/// What the torn tail of a shorn write contains.
///
/// The paper observes (§V-B, Nyx analysis) that the "undefined data"
/// landing in the torn region was "within an order of magnitude
/// difference from the original data" — i.e. stale content resembling
/// neighbouring data, not zeros. `Stale` models that (it replicates
/// the preceding persisted sector); `Zeros` and `Random` are exposed
/// for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShornFill {
    /// Torn sectors repeat the last successfully persisted sector —
    /// stale flash content from the same neighbourhood (default).
    Stale,
    /// Torn sectors read back as zeros (freshly trimmed block).
    Zeros,
    /// Torn sectors carry uniform random bytes.
    Random,
}

/// A fault model with its feature parameters (Table I "Features").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Flip `bits` consecutive bits at a uniformly random bit position
    /// of the write buffer.
    BitFlip {
        /// Number of consecutive bits to flip (paper default: 2).
        bits: u32,
    },
    /// Tear the write at sector granularity.
    ShornWrite {
        /// Fraction of each block persisted.
        keep: ShornKeep,
        /// Contents of the torn region.
        fill: ShornFill,
    },
    /// Ignore the write, report success.
    DroppedWrite,
}

impl FaultModel {
    /// The paper's default BIT FLIP (2 consecutive bits).
    pub fn bit_flip() -> Self {
        FaultModel::BitFlip { bits: 2 }
    }

    /// The paper's default SHORN WRITE (keep 7/8, stale fill).
    pub fn shorn_write() -> Self {
        FaultModel::ShornWrite { keep: ShornKeep::SevenEighths, fill: ShornFill::Stale }
    }

    /// DROPPED WRITE.
    pub fn dropped_write() -> Self {
        FaultModel::DroppedWrite
    }

    /// Short label used in result tables ("BF", "SW", "DW" — the
    /// abbreviations of Figure 7). Write-site vocabulary; read-site
    /// tables use [`FaultModel::label_at`].
    pub fn label(&self) -> &'static str {
        self.label_at(InjectionSite::Write)
    }

    /// Site-aware short label: BIT FLIP is "BF" at either site, while
    /// the torn and dropped models read "SR" / "DR" at the read site.
    pub fn label_at(&self, site: InjectionSite) -> &'static str {
        match (self, site) {
            (FaultModel::BitFlip { .. }, _) => "BF",
            (FaultModel::ShornWrite { .. }, InjectionSite::Write) => "SW",
            (FaultModel::ShornWrite { .. }, InjectionSite::Read) => "SR",
            (FaultModel::DroppedWrite, InjectionSite::Write) => "DW",
            (FaultModel::DroppedWrite, InjectionSite::Read) => "DR",
        }
    }

    /// Human-readable name matching the paper's typography (write-site
    /// vocabulary; read-site tables use [`FaultModel::name_at`]).
    pub fn name(&self) -> &'static str {
        self.name_at(InjectionSite::Write)
    }

    /// Site-aware display name ("SHORN WRITE" vs "SHORN READ", ...).
    pub fn name_at(&self, site: InjectionSite) -> &'static str {
        match (self, site) {
            (FaultModel::BitFlip { .. }, _) => "BIT FLIP",
            (FaultModel::ShornWrite { .. }, InjectionSite::Write) => "SHORN WRITE",
            (FaultModel::ShornWrite { .. }, InjectionSite::Read) => "SHORN READ",
            (FaultModel::DroppedWrite, InjectionSite::Write) => "DROPPED WRITE",
            (FaultModel::DroppedWrite, InjectionSite::Read) => "DROPPED READ",
        }
    }

    /// Table I "Features" column text (write-site vocabulary).
    pub fn feature_description(&self) -> String {
        self.feature_description_at(InjectionSite::Write)
    }

    /// Site-aware Table I "Features" text: the read-site rows describe
    /// the damage to the *returned* buffer rather than the device.
    pub fn feature_description_at(&self, site: InjectionSite) -> String {
        match (self, site) {
            (FaultModel::BitFlip { bits }, InjectionSite::Write) => {
                format!("flip consecutive multiple bits ({} bits)", bits)
            }
            (FaultModel::BitFlip { bits }, InjectionSite::Read) => format!(
                "flip consecutive multiple bits ({} bits) in the data returned by the read",
                bits
            ),
            (FaultModel::ShornWrite { keep, fill }, InjectionSite::Write) => format!(
                "completely write the first {}/8th of 4KB block to the device at the granularity of 512B (torn fill: {:?})",
                keep.sectors_kept(),
                fill
            ),
            (FaultModel::ShornWrite { keep, fill }, InjectionSite::Read) => format!(
                "return only the first {}/8th of a 4KB block of the read buffer intact at the granularity of 512B (torn fill: {:?}); the device bytes stay pristine",
                keep.sectors_kept(),
                fill
            ),
            (FaultModel::DroppedWrite, InjectionSite::Write) => {
                "the write operation is ignored".to_string()
            }
            (FaultModel::DroppedWrite, InjectionSite::Read) => {
                "the read transfer is ignored: the application keeps its stale buffer while full success is reported".to_string()
            }
        }
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a fault application did to a buffer (for injection records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Buffer replaced; detail records the damage.
    Replaced {
        /// Mutated buffer to forward to the device.
        buf: Vec<u8>,
        /// Description of the damage (bit position, torn range, ...).
        detail: String,
    },
    /// Write suppressed entirely.
    Dropped,
    /// Model could not apply (e.g. empty buffer); forward unchanged.
    NotApplicable,
}

impl FaultModel {
    /// Apply the model to a write buffer, using `rng` for the random
    /// feature choices (bit position, affected block). This is the
    /// instrumentation of Figure 3a: the returned mutation is what
    /// FFIS forwards to the underlying `pwrite`.
    pub fn apply_to_buffer(&self, buf: &[u8], rng: &mut Rng) -> Mutation {
        match *self {
            FaultModel::BitFlip { bits } => {
                if buf.is_empty() || bits == 0 {
                    return Mutation::NotApplicable;
                }
                let total_bits = buf.len() as u64 * 8;
                let bits64 = u64::from(bits).min(total_bits);
                let start = rng.gen_range(total_bits - bits64 + 1);
                let mut out = buf.to_vec();
                for b in start..start + bits64 {
                    out[(b / 8) as usize] ^= 1u8 << (b % 8);
                }
                Mutation::Replaced {
                    buf: out,
                    detail: format!("bitflip bits={} at bit {}", bits64, start),
                }
            }
            FaultModel::ShornWrite { keep, fill } => {
                if buf.is_empty() {
                    return Mutation::NotApplicable;
                }
                // Choose the torn block: writes larger than one block
                // lose the tail of one uniformly random 4 KiB block;
                // smaller writes are torn as a single (partial) block.
                let nblocks = buf.len().div_ceil(BLOCK_SIZE);
                let blk = rng.gen_range(nblocks as u64) as usize;
                let blk_start = blk * BLOCK_SIZE;
                let blk_end = (blk_start + BLOCK_SIZE).min(buf.len());
                let blk_len = blk_end - blk_start;
                // Keep the first `sectors_kept` sectors of the block,
                // scaled down for partial blocks; always sector-aligned.
                let keep_bytes_full = keep.sectors_kept() * SECTOR_SIZE;
                let keep_bytes = if blk_len >= BLOCK_SIZE {
                    keep_bytes_full
                } else {
                    // Partial trailing block: keep the same fraction,
                    // rounded down to sector granularity.
                    (blk_len * keep.sectors_kept() / 8) / SECTOR_SIZE * SECTOR_SIZE
                };
                let torn_start = blk_start + keep_bytes.min(blk_len);
                if torn_start >= blk_end {
                    return Mutation::NotApplicable;
                }
                let mut out = buf.to_vec();
                match fill {
                    ShornFill::Zeros => {
                        for b in &mut out[torn_start..blk_end] {
                            *b = 0;
                        }
                    }
                    ShornFill::Random => {
                        for b in &mut out[torn_start..blk_end] {
                            *b = rng.gen_range(256) as u8;
                        }
                    }
                    ShornFill::Stale => {
                        // Replicate the last persisted sector into the
                        // torn region; if nothing was persisted in this
                        // block, fall back to the content just before
                        // the block (or zeros at the file head).
                        let src_start = if keep_bytes >= SECTOR_SIZE {
                            torn_start - SECTOR_SIZE
                        } else if blk_start >= SECTOR_SIZE {
                            blk_start - SECTOR_SIZE
                        } else {
                            // No earlier data exists: stale content of a
                            // fresh device region is zeros.
                            for b in &mut out[torn_start..blk_end] {
                                *b = 0;
                            }
                            return Mutation::Replaced {
                                buf: out,
                                detail: format!(
                                    "shorn keep={}/8 torn=[{},{}) fill=zeros(no-stale-source)",
                                    keep.sectors_kept(),
                                    torn_start,
                                    blk_end
                                ),
                            };
                        };
                        let src: Vec<u8> = buf[src_start..src_start + SECTOR_SIZE].to_vec();
                        for (i, b) in out[torn_start..blk_end].iter_mut().enumerate() {
                            *b = src[i % SECTOR_SIZE];
                        }
                    }
                }
                Mutation::Replaced {
                    buf: out,
                    detail: format!(
                        "shorn keep={}/8 torn=[{},{}) fill={:?}",
                        keep.sectors_kept(),
                        torn_start,
                        blk_end,
                        fill
                    ),
                }
            }
            FaultModel::DroppedWrite => Mutation::Dropped,
        }
    }

    /// Apply the model to a scalar parameter (`mode`/`dev`/`size`
    /// of `mknod`/`chmod`/`truncate` — Figure 3b). Only BIT FLIP is
    /// meaningful for scalars; the torn/dropped models leave the value
    /// unchanged and report `NotApplicable`.
    pub fn apply_to_scalar(
        &self,
        value: u64,
        value_bits: u32,
        rng: &mut Rng,
    ) -> Option<(u64, String)> {
        match *self {
            FaultModel::BitFlip { bits } => {
                if bits == 0 || value_bits == 0 {
                    return None;
                }
                let bits = bits.min(value_bits);
                let start = rng.gen_range(u64::from(value_bits - bits + 1)) as u32;
                let mask = if bits >= 64 { u64::MAX } else { ((1u64 << bits) - 1) << start };
                Some((value ^ mask, format!("bitflip bits={} at bit {}", bits, start)))
            }
            _ => None,
        }
    }
}

/// What a read-site fault application did to the buffer a read is
/// about to return (for injection records). The device state is never
/// touched by construction — read faults damage only the copy handed
/// back to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadMutation {
    /// The returned bytes were mutated in place; the reported length
    /// stays the device's.
    Corrupted {
        /// Description of the damage (bit position, torn range, ...).
        detail: String,
    },
    /// The transfer was dropped: the application keeps its stale
    /// pre-call buffer while full success is reported — DROPPED READ.
    Dropped {
        /// Description of the drop.
        detail: String,
    },
    /// Model could not apply (e.g. empty transfer); forward unchanged.
    NotApplicable,
}

impl FaultModel {
    /// Apply the model to the `n` bytes a read is returning, mutating
    /// `buf[..n]` in place (Figure 3a's instrumentation mirrored onto
    /// the return path: the mutation is what FFIS hands back to the
    /// application, while the device bytes stay pristine).
    ///
    /// * BIT FLIP — flip `bits` consecutive bits of the returned data.
    /// * SHORN READ — one 4 KiB block of the returned buffer arrives
    ///   torn at 512 B sector granularity (same tear geometry as the
    ///   write-site model, applied to the transfer instead of the
    ///   device).
    /// * DROPPED READ — the transfer is ignored; the caller applies
    ///   the stale-buffer semantics ([`ReadMutation::Dropped`]).
    pub fn apply_to_read(&self, buf: &mut [u8], n: usize, rng: &mut Rng) -> ReadMutation {
        if n == 0 {
            // A zero-length transfer (EOF probe) carries nothing any
            // model could damage — DROPPED READ included, so an armed
            // fault on such an instance counts as no-fire exactly like
            // the other models.
            return ReadMutation::NotApplicable;
        }
        if let FaultModel::DroppedWrite = self {
            return ReadMutation::Dropped { detail: "dropped read (stale buffer)".into() };
        }
        // BIT FLIP and SHORN READ share the exact buffer-damage
        // geometry of their write-site counterparts.
        match self.apply_to_buffer(&buf[..n], rng) {
            Mutation::Replaced { buf: out, detail } => {
                buf[..n].copy_from_slice(&out);
                ReadMutation::Corrupted { detail }
            }
            Mutation::NotApplicable => ReadMutation::NotApplicable,
            Mutation::Dropped => unreachable!("dropped handled above"),
        }
    }
}

/// A complete fault signature: model + primitive + target scope
/// (paper §III-C: "the fault model, the file system primitive where
/// the fault would be injected ... and the choice of the feature").
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSignature {
    /// Which fault model.
    pub model: FaultModel,
    /// Which FUSE primitive hosts the fault.
    pub primitive: Primitive,
    /// Scope filter over target files (FFIS requires the requested
    /// files to reside in the FFISFS mount point; this narrows further
    /// to e.g. a single output file).
    pub target: TargetFilter,
}

impl FaultSignature {
    /// Signature for the paper's standard campaigns: the given model on
    /// `FFIS_write`, across all files.
    pub fn on_write(model: FaultModel) -> Self {
        FaultSignature { model, primitive: Primitive::Write, target: TargetFilter::Any }
    }

    /// Read-site signature: the given model on `FFIS_read`, across all
    /// files — the model damages the data *returned* to the
    /// application while the device bytes stay pristine.
    pub fn on_read(model: FaultModel) -> Self {
        FaultSignature { model, primitive: Primitive::Read, target: TargetFilter::Any }
    }

    /// Which side of the data path this signature injects into,
    /// derived from the hosting primitive.
    pub fn site(&self) -> InjectionSite {
        if self.primitive == Primitive::Read {
            InjectionSite::Read
        } else {
            InjectionSite::Write
        }
    }

    /// Site-aware short label for result tables ("BF"/"SW"/"DW" at the
    /// write site, "BF"/"SR"/"DR" at the read site).
    pub fn label(&self) -> &'static str {
        self.model.label_at(self.site())
    }

    /// Injectable primitives (buffer- or scalar-carrying, plus the
    /// read return path).
    pub fn primitive_is_injectable(p: Primitive) -> bool {
        matches!(
            p,
            Primitive::Write
                | Primitive::Read
                | Primitive::Mknod
                | Primitive::Chmod
                | Primitive::Truncate
        )
    }

    /// Validate the signature.
    pub fn validate(&self) -> Result<(), String> {
        if !Self::primitive_is_injectable(self.primitive) {
            return Err(format!("{} is not an injectable primitive", self.primitive));
        }
        // The buffer-carrying primitives (write and read) host all
        // three models; the scalar-parameter primitives host BIT FLIP
        // only.
        if !matches!(self.primitive, Primitive::Write | Primitive::Read)
            && !matches!(self.model, FaultModel::BitFlip { .. })
        {
            return Err(format!(
                "{} only hosts BIT FLIP faults (shorn/dropped models need a data buffer)",
                self.primitive
            ));
        }
        if let FaultModel::BitFlip { bits } = self.model {
            if bits == 0 {
                return Err("bit flip width must be >= 1".into());
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for FaultSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on {} ({})", self.model.name_at(self.site()), self.primitive, self.target)
    }
}

/// Scope filter selecting which primitive invocations are eligible
/// injection sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetFilter {
    /// Every invocation of the primitive.
    Any,
    /// Invocations whose target path contains the substring.
    PathContains(String),
    /// Invocations whose target path ends with the suffix.
    PathSuffix(String),
}

impl TargetFilter {
    /// Does an invocation on `path` match?
    pub fn matches(&self, path: Option<&str>) -> bool {
        match self {
            TargetFilter::Any => true,
            TargetFilter::PathContains(s) => path.map(|p| p.contains(s.as_str())).unwrap_or(false),
            TargetFilter::PathSuffix(s) => path.map(|p| p.ends_with(s.as_str())).unwrap_or(false),
        }
    }
}

impl std::fmt::Display for TargetFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetFilter::Any => f.write_str("all files"),
            TargetFilter::PathContains(s) => write!(f, "paths containing '{}'", s),
            TargetFilter::PathSuffix(s) => write!(f, "paths ending in '{}'", s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from(1234)
    }

    #[test]
    fn bitflip_flips_exactly_n_consecutive_bits() {
        let buf = vec![0u8; 64];
        for bits in [1u32, 2, 4, 8] {
            let mut r = rng();
            match (FaultModel::BitFlip { bits }).apply_to_buffer(&buf, &mut r) {
                Mutation::Replaced { buf: out, detail } => {
                    let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
                    assert_eq!(flipped, bits, "detail: {}", detail);
                    // Consecutiveness: collect flipped bit indices.
                    let mut idx = Vec::new();
                    for (i, b) in out.iter().enumerate() {
                        for k in 0..8 {
                            if b & (1 << k) != 0 {
                                idx.push(i * 8 + k);
                            }
                        }
                    }
                    for w in idx.windows(2) {
                        assert_eq!(w[1], w[0] + 1);
                    }
                }
                other => panic!("unexpected {:?}", other),
            }
        }
    }

    #[test]
    fn bitflip_positions_cover_buffer_uniformly() {
        let buf = vec![0u8; 16];
        let mut first_byte = 0;
        let mut last_byte = 0;
        for seed in 0..2000u64 {
            let mut r = Rng::seed_from(seed);
            if let Mutation::Replaced { buf: out, .. } =
                FaultModel::bit_flip().apply_to_buffer(&buf, &mut r)
            {
                if out[0] != 0 {
                    first_byte += 1;
                }
                if out[15] != 0 {
                    last_byte += 1;
                }
            }
        }
        assert!(first_byte > 50, "first byte hit {} times", first_byte);
        assert!(last_byte > 50, "last byte hit {} times", last_byte);
    }

    #[test]
    fn bitflip_empty_buffer_not_applicable() {
        let mut r = rng();
        assert_eq!(FaultModel::bit_flip().apply_to_buffer(&[], &mut r), Mutation::NotApplicable);
    }

    #[test]
    fn bitflip_single_byte_buffer() {
        let mut r = rng();
        match FaultModel::bit_flip().apply_to_buffer(&[0xAA], &mut r) {
            Mutation::Replaced { buf, .. } => {
                assert_eq!(buf.len(), 1);
                assert_eq!((buf[0] ^ 0xAA).count_ones(), 2);
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn shorn_write_full_block_keeps_prefix() {
        let buf: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        let mut r = rng();
        match FaultModel::shorn_write().apply_to_buffer(&buf, &mut r) {
            Mutation::Replaced { buf: out, detail } => {
                let kept = 7 * SECTOR_SIZE;
                assert_eq!(&out[..kept], &buf[..kept], "prefix persisted: {}", detail);
                assert_ne!(&out[kept..], &buf[kept..], "tail torn");
                // Stale fill: torn tail repeats the last kept sector.
                assert_eq!(&out[kept..kept + SECTOR_SIZE], &buf[kept - SECTOR_SIZE..kept]);
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn shorn_three_eighths_keeps_three_sectors() {
        let buf: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i / SECTOR_SIZE) as u8 + 1).collect();
        let mut r = rng();
        let model =
            FaultModel::ShornWrite { keep: ShornKeep::ThreeEighths, fill: ShornFill::Zeros };
        match model.apply_to_buffer(&buf, &mut r) {
            Mutation::Replaced { buf: out, .. } => {
                let kept = 3 * SECTOR_SIZE;
                assert_eq!(&out[..kept], &buf[..kept]);
                assert!(out[kept..].iter().all(|&b| b == 0));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn shorn_random_fill_changes_tail() {
        let buf = vec![0x55u8; BLOCK_SIZE];
        let mut r = rng();
        let model =
            FaultModel::ShornWrite { keep: ShornKeep::SevenEighths, fill: ShornFill::Random };
        match model.apply_to_buffer(&buf, &mut r) {
            Mutation::Replaced { buf: out, .. } => {
                let tail = &out[7 * SECTOR_SIZE..];
                assert!(tail.iter().any(|&b| b != 0x55));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn shorn_multi_block_tears_exactly_one_block() {
        let buf: Vec<u8> = (0..BLOCK_SIZE * 4).map(|i| (i % 239) as u8).collect();
        let mut torn_blocks_seen = std::collections::HashSet::new();
        for seed in 0..64 {
            let mut r = Rng::seed_from(seed);
            if let Mutation::Replaced { buf: out, .. } =
                FaultModel::shorn_write().apply_to_buffer(&buf, &mut r)
            {
                let mut torn = Vec::new();
                for blk in 0..4 {
                    let s = blk * BLOCK_SIZE;
                    if out[s..s + BLOCK_SIZE] != buf[s..s + BLOCK_SIZE] {
                        torn.push(blk);
                    }
                }
                assert_eq!(torn.len(), 1, "exactly one block torn");
                torn_blocks_seen.insert(torn[0]);
            }
        }
        assert_eq!(torn_blocks_seen.len(), 4, "all blocks eventually chosen");
    }

    #[test]
    fn shorn_small_buffer_tears_whole_write_with_zero_fallback() {
        // A 100-byte write has no sector-aligned prefix to keep; with
        // no earlier data, stale fill degrades to zeros.
        let buf = vec![9u8; 100];
        let mut r = rng();
        match FaultModel::shorn_write().apply_to_buffer(&buf, &mut r) {
            Mutation::Replaced { buf: out, detail } => {
                assert!(out.iter().all(|&b| b == 0), "detail {}", detail);
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn dropped_write_drops() {
        let mut r = rng();
        assert_eq!(
            FaultModel::dropped_write().apply_to_buffer(b"anything", &mut r),
            Mutation::Dropped
        );
    }

    #[test]
    fn scalar_bitflip_changes_value_within_width() {
        let mut r = rng();
        let (v, d) = FaultModel::bit_flip().apply_to_scalar(0o644, 12, &mut r).unwrap();
        assert_ne!(v, 0o644);
        assert!(v < (1 << 13), "stays within 12-bit neighbourhood: {} ({})", v, d);
        assert!(FaultModel::dropped_write().apply_to_scalar(1, 12, &mut r).is_none());
        assert!(FaultModel::shorn_write().apply_to_scalar(1, 12, &mut r).is_none());
    }

    #[test]
    fn signature_validation() {
        assert!(FaultSignature::on_write(FaultModel::bit_flip()).validate().is_ok());
        assert!(FaultSignature::on_write(FaultModel::shorn_write()).validate().is_ok());
        let bad_prim = FaultSignature {
            model: FaultModel::bit_flip(),
            primitive: Primitive::Open,
            target: TargetFilter::Any,
        };
        assert!(bad_prim.validate().is_err());
        let shorn_on_chmod = FaultSignature {
            model: FaultModel::shorn_write(),
            primitive: Primitive::Chmod,
            target: TargetFilter::Any,
        };
        assert!(shorn_on_chmod.validate().is_err());
        let zero_bits = FaultSignature::on_write(FaultModel::BitFlip { bits: 0 });
        assert!(zero_bits.validate().is_err());
    }

    #[test]
    fn target_filter_matching() {
        assert!(TargetFilter::Any.matches(Some("/x")));
        assert!(TargetFilter::Any.matches(None));
        let c = TargetFilter::PathContains("plt".into());
        assert!(c.matches(Some("/out/plt00000.h5")));
        assert!(!c.matches(Some("/out/run.log")));
        assert!(!c.matches(None));
        let s = TargetFilter::PathSuffix(".h5".into());
        assert!(s.matches(Some("/a/b.h5")));
        assert!(!s.matches(Some("/a/b.h5.tmp")));
    }

    #[test]
    fn labels_and_names() {
        assert_eq!(FaultModel::bit_flip().label(), "BF");
        assert_eq!(FaultModel::shorn_write().label(), "SW");
        assert_eq!(FaultModel::dropped_write().label(), "DW");
        assert_eq!(FaultModel::bit_flip().name(), "BIT FLIP");
        assert!(FaultModel::bit_flip().feature_description().contains("2 bits"));
        assert!(FaultModel::shorn_write().feature_description().contains("7/8th"));
    }

    #[test]
    fn site_aware_labels_and_names() {
        use InjectionSite::{Read, Write};
        // Write-site vocabulary is untouched by the site refactor.
        assert_eq!(FaultModel::shorn_write().label_at(Write), "SW");
        assert_eq!(FaultModel::dropped_write().label_at(Write), "DW");
        assert_eq!(FaultModel::shorn_write().name_at(Write), "SHORN WRITE");
        // Read-site vocabulary: SR / DR, BIT FLIP stays BF.
        assert_eq!(FaultModel::bit_flip().label_at(Read), "BF");
        assert_eq!(FaultModel::shorn_write().label_at(Read), "SR");
        assert_eq!(FaultModel::dropped_write().label_at(Read), "DR");
        assert_eq!(FaultModel::shorn_write().name_at(Read), "SHORN READ");
        assert_eq!(FaultModel::dropped_write().name_at(Read), "DROPPED READ");
        let feat = FaultModel::shorn_write().feature_description_at(Read);
        assert!(feat.contains("pristine"), "{}", feat);
        assert!(FaultModel::dropped_write().feature_description_at(Read).contains("stale"));
        assert_eq!(InjectionSite::Read.to_string(), "read");
        assert_eq!(InjectionSite::Write.to_string(), "write");
    }

    #[test]
    fn read_signatures_validate_and_display_site_vocabulary() {
        for model in
            [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()]
        {
            let sig = FaultSignature::on_read(model);
            assert!(sig.validate().is_ok(), "{:?}", model);
            assert_eq!(sig.site(), InjectionSite::Read);
        }
        assert_eq!(
            FaultSignature::on_write(FaultModel::shorn_write()).site(),
            InjectionSite::Write
        );
        assert_eq!(FaultSignature::on_read(FaultModel::shorn_write()).label(), "SR");
        assert_eq!(FaultSignature::on_write(FaultModel::shorn_write()).label(), "SW");
        let display = FaultSignature::on_read(FaultModel::dropped_write()).to_string();
        assert!(display.contains("DROPPED READ on FFIS_read"), "{}", display);
        let display = FaultSignature::on_write(FaultModel::dropped_write()).to_string();
        assert!(display.contains("DROPPED WRITE on FFIS_write"), "{}", display);
    }

    #[test]
    fn read_bitflip_flips_exactly_n_bits_within_transfer() {
        let mut buf = vec![0u8; 64];
        let mut r = rng();
        match FaultModel::bit_flip().apply_to_read(&mut buf, 32, &mut r) {
            ReadMutation::Corrupted { detail } => {
                let flipped: u32 = buf.iter().map(|b| b.count_ones()).sum();
                assert_eq!(flipped, 2, "{}", detail);
                assert!(buf[32..].iter().all(|&b| b == 0), "damage confined to the transfer");
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn shorn_read_tears_returned_block_sector_aligned() {
        let mut buf: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        let original = buf.clone();
        let mut r = rng();
        let model =
            FaultModel::ShornWrite { keep: ShornKeep::SevenEighths, fill: ShornFill::Zeros };
        match model.apply_to_read(&mut buf, BLOCK_SIZE, &mut r) {
            ReadMutation::Corrupted { .. } => {
                let kept = 7 * SECTOR_SIZE;
                assert_eq!(&buf[..kept], &original[..kept]);
                assert!(buf[kept..].iter().all(|&b| b == 0));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn dropped_read_reports_drop_and_empty_transfer_not_applicable() {
        let mut buf = vec![7u8; 16];
        let mut r = rng();
        match FaultModel::dropped_write().apply_to_read(&mut buf, 16, &mut r) {
            ReadMutation::Dropped { detail } => assert!(detail.contains("stale")),
            other => panic!("unexpected {:?}", other),
        }
        // The model itself never touches the buffer — the mount's
        // stale-restore applies the drop.
        assert!(buf.iter().all(|&b| b == 7));
        // Zero-length transfers are NotApplicable for every model,
        // DROPPED READ included (no-fire, same as the other models).
        for model in
            [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()]
        {
            assert_eq!(
                model.apply_to_read(&mut buf, 0, &mut r),
                ReadMutation::NotApplicable,
                "{:?}",
                model
            );
        }
    }
}
