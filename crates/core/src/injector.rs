//! The fault injector (paper §III-C).
//!
//! "For each fault injection run, it first generates a random number
//! from 0 to count-1, and executes the application normally. When the
//! execution count of the target primitive hits that random number,
//! the fault injector applies the fault based on the fault signature."
//!
//! [`ArmedInjector`] is an [`Interceptor`] armed with a fault
//! signature and a target instance number; it counts *eligible*
//! invocations (primitive matches, target filter matches) and fires
//! exactly once. [`ByteFaultInjector`] is the precision variant used
//! by the HDF5 metadata scan (§IV-D): it targets one specific write
//! instance and damages one specific byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ffis_vfs::{CallContext, Interceptor, Primitive, ReadAction, WriteAction};

use crate::fault::{FaultModel, FaultSignature, Mutation, ReadMutation};
use crate::rng::Rng;

/// What actually happened when the fault fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    /// Primitive that hosted the fault.
    pub primitive: Primitive,
    /// Eligible-instance number that fired (1-based).
    pub instance: u64,
    /// Per-primitive dynamic sequence number at fire time.
    pub prim_seq: u64,
    /// Target file path, when known.
    pub path: Option<String>,
    /// Byte offset of the hosting write, when applicable.
    pub offset: Option<u64>,
    /// Buffer length of the hosting write, when applicable.
    pub len: usize,
    /// Damage description from the fault model.
    pub detail: String,
}

/// Interceptor that fires one fault at the `target_instance`-th
/// eligible invocation of the signature's primitive.
pub struct ArmedInjector {
    signature: FaultSignature,
    target_instance: u64,
    eligible_seen: AtomicU64,
    /// Global call-sequence number of the armed read crossing (0 =
    /// none armed yet). Read-site eligibility is counted at call
    /// *entry* ([`Interceptor::on_call`], before the inner op — the
    /// same attempt-based numbering the profiler uses), while the
    /// mutation can only apply after the inner read filled the buffer;
    /// the `seq` ties the two halves to the same crossing, so a read
    /// that *fails* still consumes its instance instead of silently
    /// shifting every later one off the profiled space.
    armed_read_seq: AtomicU64,
    rng: Mutex<Rng>,
    record: Mutex<Option<InjectionRecord>>,
}

impl ArmedInjector {
    /// Arm an injector: fire at the `target_instance`-th (1-based)
    /// eligible invocation, drawing random fault features from a
    /// stream seeded with `seed`.
    pub fn new(signature: FaultSignature, target_instance: u64, seed: u64) -> Self {
        Self::resuming(signature, target_instance, seed, 0)
    }

    /// Arm an injector that resumes counting mid-run: `already_seen`
    /// eligible invocations happened before this mount existed (the
    /// trace prefix behind a mid-trace checkpoint), so the injector
    /// still fires at the *absolute* `target_instance`-th eligible
    /// invocation and records that absolute instance number — the
    /// checkpointed suffix replay stays indistinguishable from a full
    /// execution.
    pub fn resuming(
        signature: FaultSignature,
        target_instance: u64,
        seed: u64,
        already_seen: u64,
    ) -> Self {
        debug_assert!(target_instance >= 1, "instances are 1-based");
        debug_assert!(already_seen < target_instance, "checkpoint must precede the target");
        ArmedInjector {
            signature,
            target_instance,
            eligible_seen: AtomicU64::new(already_seen),
            armed_read_seq: AtomicU64::new(0),
            rng: Mutex::new(Rng::seed_from(seed)),
            record: Mutex::new(None),
        }
    }

    /// The injection record, if the fault fired.
    pub fn record(&self) -> Option<InjectionRecord> {
        self.record.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Did the fault fire?
    pub fn fired(&self) -> bool {
        self.record().is_some()
    }

    /// Number of eligible invocations observed so far.
    pub fn eligible_seen(&self) -> u64 {
        self.eligible_seen.load(Ordering::SeqCst)
    }

    /// Check eligibility and return this invocation's eligible-instance
    /// number when it is the armed one.
    fn hit(&self, cx: &CallContext, primitive: Primitive) -> Option<u64> {
        if self.signature.primitive != primitive {
            return None;
        }
        if !self.signature.target.matches(cx.path.as_deref()) {
            return None;
        }
        let k = self.eligible_seen.fetch_add(1, Ordering::SeqCst) + 1;
        (k == self.target_instance).then_some(k)
    }

    fn store_record(&self, cx: &CallContext, instance: u64, detail: String) {
        *self.record.lock().unwrap_or_else(|e| e.into_inner()) = Some(InjectionRecord {
            primitive: cx.primitive,
            instance,
            prim_seq: cx.prim_seq,
            path: cx.path.clone(),
            offset: cx.offset,
            len: cx.len,
            detail,
        });
    }
}

impl Interceptor for ArmedInjector {
    fn on_call(&self, cx: &CallContext) {
        // Read-site eligibility counts *attempts* at call entry,
        // mirroring the profiler's `EligibleCounter` (and the write
        // site, whose on_write hook also runs before the inner op) —
        // see `armed_read_seq`.
        if self.signature.primitive != Primitive::Read || cx.primitive != Primitive::Read {
            return;
        }
        if !self.signature.target.matches(cx.path.as_deref()) {
            return;
        }
        let k = self.eligible_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if k == self.target_instance {
            self.armed_read_seq.store(cx.seq, Ordering::SeqCst);
        }
    }

    fn wants_read_snapshot(&self, cx: &CallContext) -> bool {
        // Only DROPPED READ needs the pre-call buffer (to hand the
        // application its stale bytes back), and only for the single
        // armed crossing — every other read of the run skips the copy.
        matches!(self.signature.model, FaultModel::DroppedWrite)
            && self.armed_read_seq.load(Ordering::SeqCst) == cx.seq
    }

    fn on_read(&self, cx: &CallContext, buf: &mut [u8], n: usize) -> ReadAction {
        if self.armed_read_seq.load(Ordering::SeqCst) != cx.seq {
            return ReadAction::Forward;
        }
        let mutation = {
            let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
            self.signature.model.apply_to_read(buf, n, &mut rng)
        };
        match mutation {
            ReadMutation::Corrupted { detail } => {
                self.store_record(cx, self.target_instance, detail);
                // The application sees the device's byte count — the
                // corruption is silent at the filesystem interface.
                ReadAction::Forward
            }
            ReadMutation::Dropped { detail } => {
                self.store_record(cx, self.target_instance, detail);
                // Stale buffer, full success reported: the mirror of
                // DROPPED WRITE's "ignored ... sets the return value
                // to the original size".
                ReadAction::Stale { reported_len: n }
            }
            ReadMutation::NotApplicable => ReadAction::Forward,
        }
    }

    fn on_write(&self, cx: &CallContext, buf: &[u8]) -> WriteAction {
        let Some(instance) = self.hit(cx, Primitive::Write) else {
            return WriteAction::Forward;
        };
        let mutation = {
            let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
            self.signature.model.apply_to_buffer(buf, &mut rng)
        };
        match mutation {
            Mutation::Replaced { buf: out, detail } => {
                self.store_record(cx, instance, detail);
                // The application is told the full write succeeded —
                // the corruption is silent at the filesystem interface.
                WriteAction::Replace { buf: out, reported_len: buf.len() }
            }
            Mutation::Dropped => {
                self.store_record(cx, instance, "dropped".into());
                WriteAction::Drop { reported_len: buf.len() }
            }
            Mutation::NotApplicable => WriteAction::Forward,
        }
    }

    fn on_mknod(&self, cx: &CallContext, mode: &mut u32, dev: &mut u64) {
        let Some(instance) = self.hit(cx, Primitive::Mknod) else {
            return;
        };
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        // Fault lands in either parameter (Fig. 3b shows both `mode`
        // and `dev` instrumented); pick uniformly.
        if rng.chance(0.5) {
            if let Some((v, d)) =
                self.signature.model.apply_to_scalar(u64::from(*mode), 12, &mut rng)
            {
                *mode = (v & 0o7777) as u32;
                self.store_record(cx, instance, format!("mknod.mode {}", d));
            }
        } else if let Some((v, d)) = self.signature.model.apply_to_scalar(*dev, 32, &mut rng) {
            *dev = v;
            self.store_record(cx, instance, format!("mknod.dev {}", d));
        }
    }

    fn on_chmod(&self, cx: &CallContext, mode: &mut u32) {
        let Some(instance) = self.hit(cx, Primitive::Chmod) else {
            return;
        };
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((v, d)) = self.signature.model.apply_to_scalar(u64::from(*mode), 12, &mut rng) {
            *mode = (v & 0o7777) as u32;
            self.store_record(cx, instance, format!("chmod.mode {}", d));
        }
    }

    fn on_truncate(&self, cx: &CallContext, size: &mut u64) {
        let Some(instance) = self.hit(cx, Primitive::Truncate) else {
            return;
        };
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((v, d)) = self.signature.model.apply_to_scalar(*size, 32, &mut rng) {
            *size = v;
            self.store_record(cx, instance, format!("truncate.size {}", d));
        }
    }
}

// (The former `ReadFaultInjector` — a bitflip-only read injector with
// success-based instance counting — is subsumed by arming an
// [`ArmedInjector`] with `FaultSignature::on_read`, which hosts all
// three models and counts eligible reads at call entry, matching the
// profiler.)

/// Byte-precise flip applied to one byte of one specific write —
/// the HDF5 metadata-scan workhorse (§IV-D: "perform a fault injection
/// starting from the offset value specified by the fwrite and till the
/// end of the buffer byte-by-byte").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteFlip {
    /// XOR the byte with a mask (e.g. `0b11 << k` = 2 consecutive bits).
    Xor(u8),
    /// Overwrite the byte with a value.
    Set(u8),
}

impl ByteFlip {
    /// Apply to a byte.
    pub fn apply(self, b: u8) -> u8 {
        match self {
            ByteFlip::Xor(m) => b ^ m,
            ByteFlip::Set(v) => v,
        }
    }
}

/// Interceptor damaging `byte_index` of the write whose *eligible*
/// instance number (writes matching `filter`) equals `write_instance`.
pub struct ByteFaultInjector {
    filter: crate::fault::TargetFilter,
    write_instance: u64,
    byte_index: usize,
    flip: ByteFlip,
    eligible_seen: AtomicU64,
    record: Mutex<Option<InjectionRecord>>,
}

impl ByteFaultInjector {
    /// Arm for the `write_instance`-th (1-based) matching write.
    pub fn new(
        filter: crate::fault::TargetFilter,
        write_instance: u64,
        byte_index: usize,
        flip: ByteFlip,
    ) -> Self {
        ByteFaultInjector {
            filter,
            write_instance,
            byte_index,
            flip,
            eligible_seen: AtomicU64::new(0),
            record: Mutex::new(None),
        }
    }

    /// The injection record, if the fault fired.
    pub fn record(&self) -> Option<InjectionRecord> {
        self.record.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Interceptor for ByteFaultInjector {
    fn on_write(&self, cx: &CallContext, buf: &[u8]) -> WriteAction {
        if !self.filter.matches(cx.path.as_deref()) {
            return WriteAction::Forward;
        }
        let k = self.eligible_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if k != self.write_instance || self.byte_index >= buf.len() {
            return WriteAction::Forward;
        }
        let mut out = buf.to_vec();
        let before = out[self.byte_index];
        out[self.byte_index] = self.flip.apply(before);
        if out[self.byte_index] == before {
            return WriteAction::Forward; // Set() to the same value: no fault.
        }
        *self.record.lock().unwrap_or_else(|e| e.into_inner()) = Some(InjectionRecord {
            primitive: Primitive::Write,
            instance: k,
            prim_seq: cx.prim_seq,
            path: cx.path.clone(),
            offset: cx.offset,
            len: cx.len,
            detail: format!(
                "byte[{}] {:#04x} -> {:#04x} ({:?})",
                self.byte_index, before, out[self.byte_index], self.flip
            ),
        });
        WriteAction::Replace { buf: out, reported_len: buf.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultModel, TargetFilter};
    use ffis_vfs::{FfisFs, FileSystem, FileSystemExt, MemFs};
    use std::sync::Arc;

    fn mount() -> Arc<FfisFs> {
        FfisFs::mount(Arc::new(MemFs::new()))
    }

    #[test]
    fn fires_on_exact_instance_only() {
        let fs = mount();
        let inj = Arc::new(ArmedInjector::new(
            FaultSignature::on_write(FaultModel::dropped_write()),
            3,
            42,
        ));
        fs.attach(inj.clone());
        let fd = fs.create("/f", 0o644).unwrap();
        for i in 0..5u64 {
            fs.pwrite(fd, &[i as u8; 4], i * 4).unwrap();
        }
        fs.release(fd).unwrap();
        let rec = inj.record().expect("fired");
        assert_eq!(rec.instance, 3);
        assert_eq!(rec.offset, Some(8));
        assert_eq!(rec.detail, "dropped");
        assert_eq!(inj.eligible_seen(), 5);
        // Third write dropped; others persisted.
        let data = fs.read_to_vec("/f").unwrap();
        assert_eq!(&data[0..4], &[0u8; 4]);
        assert_eq!(&data[4..8], &[1u8; 4]);
        assert_eq!(&data[8..12], &[0u8; 4], "dropped region stays zero");
        assert_eq!(&data[12..16], &[3u8; 4]);
    }

    #[test]
    fn path_filter_limits_eligibility() {
        let fs = mount();
        let inj = Arc::new(ArmedInjector::new(
            FaultSignature {
                model: FaultModel::dropped_write(),
                primitive: Primitive::Write,
                target: TargetFilter::PathSuffix(".h5".into()),
            },
            1,
            7,
        ));
        fs.attach(inj.clone());
        fs.write_file("/log.txt", b"logline").unwrap(); // not eligible
        fs.write_file("/data.h5", b"hdf5data").unwrap(); // eligible -> dropped
        assert_eq!(inj.eligible_seen(), 1);
        assert_eq!(fs.read_to_vec("/log.txt").unwrap(), b"logline");
        assert_eq!(fs.getattr("/data.h5").unwrap().size, 0);
        assert_eq!(inj.record().unwrap().path.as_deref(), Some("/data.h5"));
    }

    #[test]
    fn bitflip_corrupts_exactly_two_bits_and_reports_success() {
        let fs = mount();
        let inj =
            Arc::new(ArmedInjector::new(FaultSignature::on_write(FaultModel::bit_flip()), 1, 99));
        fs.attach(inj.clone());
        let payload = vec![0u8; 256];
        fs.write_file("/b", &payload).unwrap();
        let out = fs.read_to_vec("/b").unwrap();
        let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 2);
        assert!(inj.record().unwrap().detail.contains("bitflip bits=2"));
    }

    #[test]
    fn does_not_fire_when_instance_out_of_range() {
        let fs = mount();
        let inj =
            Arc::new(ArmedInjector::new(FaultSignature::on_write(FaultModel::bit_flip()), 100, 1));
        fs.attach(inj.clone());
        fs.write_file("/x", b"only one write").unwrap();
        assert!(!inj.fired());
        assert_eq!(inj.eligible_seen(), 1);
    }

    #[test]
    fn mknod_param_fault_changes_mode_or_dev() {
        // With BIT FLIP on FFIS_mknod the node's mode or dev deviates.
        let mut changed = 0;
        for seed in 0..20u64 {
            let fs = mount();
            let inj = Arc::new(ArmedInjector::new(
                FaultSignature {
                    model: FaultModel::bit_flip(),
                    primitive: Primitive::Mknod,
                    target: TargetFilter::Any,
                },
                1,
                seed,
            ));
            fs.attach(inj.clone());
            fs.mknod("/node", ffis_vfs::NodeKind::CharDev, 0o600, 0x0102).unwrap();
            let m = fs.getattr("/node").unwrap();
            if m.mode != 0o600 || m.rdev != 0x0102 {
                changed += 1;
                assert!(inj.fired());
            }
        }
        assert!(changed >= 15, "mknod faults should usually change state ({}/20)", changed);
    }

    #[test]
    fn chmod_param_fault() {
        let fs = mount();
        fs.write_file("/c", b"x").unwrap();
        let inj = Arc::new(ArmedInjector::new(
            FaultSignature {
                model: FaultModel::bit_flip(),
                primitive: Primitive::Chmod,
                target: TargetFilter::Any,
            },
            1,
            5,
        ));
        fs.attach(inj.clone());
        fs.chmod("/c", 0o644).unwrap();
        assert!(inj.fired());
        assert_ne!(fs.getattr("/c").unwrap().mode, 0o644);
    }

    #[test]
    fn truncate_param_fault() {
        let fs = mount();
        fs.write_file("/t", &[1u8; 100]).unwrap();
        let inj = Arc::new(ArmedInjector::new(
            FaultSignature {
                model: FaultModel::bit_flip(),
                primitive: Primitive::Truncate,
                target: TargetFilter::Any,
            },
            1,
            6,
        ));
        fs.attach(inj.clone());
        fs.truncate("/t", 50).unwrap();
        assert!(inj.fired());
        assert_ne!(fs.getattr("/t").unwrap().size, 50);
    }

    #[test]
    fn byte_injector_damages_one_byte_of_one_write() {
        let fs = mount();
        let inj =
            Arc::new(ByteFaultInjector::new(TargetFilter::Any, 2, 5, ByteFlip::Xor(0b0000_0110)));
        fs.attach(inj.clone());
        let fd = fs.create("/m", 0o644).unwrap();
        fs.pwrite(fd, &[0u8; 16], 0).unwrap();
        fs.pwrite(fd, &[0u8; 16], 16).unwrap();
        fs.release(fd).unwrap();
        let data = fs.read_to_vec("/m").unwrap();
        assert_eq!(data[16 + 5], 0b0000_0110);
        assert_eq!(data.iter().filter(|&&b| b != 0).count(), 1);
        let rec = inj.record().unwrap();
        assert_eq!(rec.instance, 2);
        assert!(rec.detail.contains("byte[5]"));
    }

    #[test]
    fn byte_injector_set_same_value_counts_as_no_fault() {
        let fs = mount();
        let inj = Arc::new(ByteFaultInjector::new(TargetFilter::Any, 1, 0, ByteFlip::Set(0xAB)));
        fs.attach(inj.clone());
        fs.write_file("/m", &[0xAB, 0x00]).unwrap();
        assert!(inj.record().is_none());
        assert_eq!(fs.read_to_vec("/m").unwrap(), vec![0xAB, 0x00]);
    }

    #[test]
    fn byte_injector_index_out_of_buffer_forwards() {
        let fs = mount();
        let inj = Arc::new(ByteFaultInjector::new(TargetFilter::Any, 1, 100, ByteFlip::Xor(0xFF)));
        fs.attach(inj.clone());
        fs.write_file("/m", b"short").unwrap();
        assert!(inj.record().is_none());
        assert_eq!(fs.read_to_vec("/m").unwrap(), b"short");
    }

    #[test]
    fn byteflip_apply() {
        assert_eq!(ByteFlip::Xor(0b11).apply(0b0000_0001), 0b0000_0010);
        assert_eq!(ByteFlip::Set(0x7F).apply(0x00), 0x7F);
    }

    #[test]
    fn armed_injector_read_site_corrupts_transfer_not_device() {
        use crate::fault::FaultSignature;
        for model in
            [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()]
        {
            let fs = mount();
            // Non-uniform payload: SHORN READ's stale fill replicates a
            // neighbouring sector, which is invisible on constant data.
            let payload: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
            fs.write_file("/d.bin", &payload).unwrap();
            let inj = Arc::new(ArmedInjector::new(FaultSignature::on_read(model), 1, 77));
            fs.attach(inj.clone());
            let corrupted = fs.read_to_vec("/d.bin").unwrap();
            let rec = inj.record().unwrap_or_else(|| panic!("{:?} must fire", model));
            assert_eq!(rec.primitive, Primitive::Read);
            assert_eq!(rec.instance, 1);
            assert_ne!(corrupted, payload, "{:?} must damage the returned data", model);
            // The device is pristine: the next (uninjected) read of the
            // same mount returns the original bytes.
            assert_eq!(fs.read_to_vec("/d.bin").unwrap(), payload, "{:?}", model);
        }
    }

    #[test]
    fn dropped_read_restores_stale_caller_buffer() {
        use crate::fault::FaultSignature;
        use ffis_vfs::OpenFlags;
        let fs = mount();
        fs.write_file("/s.bin", &[1u8; 64]).unwrap();
        let inj = Arc::new(ArmedInjector::new(
            FaultSignature::on_read(FaultModel::dropped_write()),
            1,
            3,
        ));
        fs.attach(inj.clone());
        let fd = fs.open("/s.bin", OpenFlags::read_only()).unwrap();
        // The caller's buffer carries stale application data (0xEE);
        // the dropped transfer must hand exactly those bytes back while
        // reporting full success.
        let mut buf = [0xEEu8; 64];
        let n = fs.pread(fd, &mut buf, 0).unwrap();
        fs.release(fd).unwrap();
        assert_eq!(n, 64, "success reported for the full transfer");
        assert!(buf.iter().all(|&b| b == 0xEE), "stale buffer preserved");
        assert!(inj.record().unwrap().detail.contains("dropped read"));
    }

    #[test]
    fn read_site_instance_counting_spans_produce_and_analyze_reads() {
        use crate::fault::FaultSignature;
        let fs = mount();
        fs.write_file("/a", &[1u8; 32]).unwrap();
        fs.write_file("/b", &[2u8; 32]).unwrap();
        let inj =
            Arc::new(ArmedInjector::new(FaultSignature::on_read(FaultModel::bit_flip()), 3, 11));
        fs.attach(inj.clone());
        let _ = fs.read_to_vec("/a").unwrap(); // eligible #1
        let _ = fs.read_to_vec("/b").unwrap(); // eligible #2
        let third = fs.read_to_vec("/a").unwrap(); // eligible #3: fires
        assert!(inj.fired());
        assert_eq!(inj.eligible_seen(), 3);
        assert_ne!(third, vec![1u8; 32]);
    }

    #[test]
    fn failed_read_attempts_consume_their_instance_like_the_profiler() {
        use crate::fault::FaultSignature;
        // The profiler counts read *attempts* (on_call fires at entry,
        // before the inner op), so the injector must too: a failed
        // read consumes its eligible instance.
        let fs = mount();
        fs.write_file("/ok.bin", &[3u8; 16]).unwrap();

        // Armed on instance 1 — which turns out to be a failing read
        // (bad descriptor): the fault can never apply, so the run is a
        // no-fire, not a shifted hit on the next read.
        let inj =
            Arc::new(ArmedInjector::new(FaultSignature::on_read(FaultModel::bit_flip()), 1, 21));
        fs.attach(inj.clone());
        let mut buf = [0u8; 4];
        assert!(fs.pread(9999, &mut buf, 0).is_err(), "bad descriptor read must fail");
        let clean = fs.read_to_vec("/ok.bin").unwrap();
        assert_eq!(clean, vec![3u8; 16], "instance 2 is untouched");
        assert_eq!(inj.eligible_seen(), 2, "failed attempt + successful read both counted");
        assert!(!inj.fired(), "a fault armed on a failed read never fires");

        // Armed on instance 2 with the same call pattern: the fault
        // lands on the first *successful* read, exactly where the
        // profiled numbering says instance 2 sits.
        let fs = mount();
        fs.write_file("/ok.bin", &[3u8; 16]).unwrap();
        let inj =
            Arc::new(ArmedInjector::new(FaultSignature::on_read(FaultModel::bit_flip()), 2, 21));
        fs.attach(inj.clone());
        let mut buf = [0u8; 4];
        assert!(fs.pread(9999, &mut buf, 0).is_err());
        let corrupted = fs.read_to_vec("/ok.bin").unwrap();
        assert_ne!(corrupted, vec![3u8; 16]);
        assert_eq!(inj.record().unwrap().instance, 2);
    }

    #[test]
    fn read_site_injector_respects_path_filter() {
        use crate::fault::FaultSignature;
        let fs = mount();
        fs.write_file("/a.h5", &[1u8; 16]).unwrap();
        fs.write_file("/b.log", &[2u8; 16]).unwrap();
        let mut sig = FaultSignature::on_read(FaultModel::bit_flip());
        sig.target = TargetFilter::PathSuffix(".h5".into());
        let inj = Arc::new(ArmedInjector::new(sig, 2, 9));
        fs.attach(inj.clone());
        let _ = fs.read_to_vec("/b.log").unwrap(); // not eligible
        let first = fs.read_to_vec("/a.h5").unwrap(); // eligible #1: clean
        assert!(first.iter().all(|&b| b == 1));
        let second = fs.read_to_vec("/a.h5").unwrap(); // eligible #2: corrupted
        assert_ne!(second, first);
        assert_eq!(inj.eligible_seen(), 2);
        assert_eq!(inj.record().unwrap().path.as_deref(), Some("/a.h5"));
    }
}
