//! The shared campaign execution engine: **planner → executor → sink**.
//!
//! The paper's methodology is one pipeline — profile → inject × N →
//! classify → tally — but the repo grew three hand-rolled copies of
//! its execution half ([`crate::Campaign`], [`crate::MixedCampaign`],
//! [`crate::metadata_scan::scan_detailed`]), each with its own
//! serial/parallel branches, replay/rerun dispatch, and a fully
//! materialized result vector. This module is the one implementation
//! all three frontends now ride:
//!
//! * **Planner** ([`ExecutionPlan`]) — maps every scheduled run
//!   `(shard, index, spec)` to a [`RunStrategy`] — `Replay` with its
//!   starting checkpoint and suffix length, or `Rerun` with the
//!   recorded [`crate::ReplayFallback`] reason — *up front*, before
//!   anything executes, and fixes a wall-clock-optimizing schedule:
//!   replay runs shortest-suffix-first, rerun runs interleaved
//!   proportionally so the expensive re-executions start early instead
//!   of queuing behind the cheap replays.
//! * **Executor** ([`execute`]) — one serial/parallel (rayon) fan-out
//!   over the schedule. Results are keyed by run index, never by
//!   completion order.
//! * **Sink** ([`RunSink`]) — streaming aggregation: per-shard
//!   [`crate::OutcomeTally`]s fold online (`OutcomeTally::record` per
//!   run, `OutcomeTally::merge` across shards), and full run records
//!   are retained only for a seed-stable bounded reservoir
//!   ([`reservoir_mask`]) so a paper-scale campaign holds
//!   O(`keep_runs`) — not O(runs) — record memory.
//!
//! ## Engine laws
//!
//! These mirror the fidelity contract of `ffis_vfs::trace`; the
//! property tests in `tests/properties.rs` pin them:
//!
//! 1. **Single emission** — the plan contains each `(shard, index)`
//!    pair exactly once, and the schedule is a permutation of the
//!    plan: every planned run executes exactly once.
//! 2. **Plan-time randomness** — all per-run random draws (target
//!    instance, injection seed, flip mask) happen while *building* the
//!    plan, from per-run child streams (`root.child(shard).child(run)`
//!    in the sharded drivers, `root.child(run)` in the
//!    single-signature driver). Execution order can never affect a
//!    draw.
//! 3. **Order independence** — the schedule is a pure wall-clock
//!    optimization. Serial and parallel execution of the same plan
//!    produce byte-identical tallies, kept records, injection records,
//!    and crash messages, because every result lands in its
//!    index-addressed slot and the sink's retention set is chosen at
//!    plan time ([`reservoir_mask`] is a function of seed and counts
//!    only, never of completion order).
//! 4. **Sink bounds** — the sink retains at most `keep_runs` full run
//!    records (default: all, preserving the historical API); dropped
//!    records still contribute to every tally, which is therefore
//!    always computed over *all* runs. `no_fire` accounting (armed
//!    fault never executed *and* output matched) is part of the sink,
//!    so the one definition serves every frontend.
//! 5. **Strategy fidelity** — `Replay` and `Rerun` produce
//!    byte-identical run results for the same `(signature, instance,
//!    seed)` (pinned by `tests/replay_equivalence.rs`), so the
//!    scheduler may mix the two strategies freely within one campaign.
//! 6. **Resume law** — *interrupted + resumed == uninterrupted, byte
//!    for byte.* A campaign killed at any point and resumed from its
//!    [`RunJournal`] produces tallies, kept records, injection
//!    records, and run digests identical to an uninterrupted run.
//!    This follows from laws 2 and 3: a run's result is a pure
//!    function of its plan-time spec, so journaled results can feed
//!    the sink directly and only the pending set re-executes
//!    ([`execute_durable`] asserts journaled indices are never run
//!    again). Pinned by `tests/resume_durability.rs` (which SIGKILLs
//!    a child mid-campaign) and the kill-point proptest in
//!    `tests/properties.rs`.
//! 7. **Distributed merge law** — *serial == parallel == distributed,
//!    byte for byte.* Sharding a plan by index range
//!    ([`index_ranges`]) across worker processes, executing each range
//!    with [`Durability::index_range`] against its own journal
//!    segment, merging the segments index-addressed
//!    ([`journal::merge_segments`], first-wins like resume), and
//!    resuming the merged journal produces tallies, kept records, and
//!    run digests identical to the single-process campaign. This is
//!    laws 2, 3, and 6 composed: ranges partition the plan (each index
//!    lands exactly once), every run's result is a pure function of
//!    its plan-time spec (so *which process* executes it cannot matter
//!    — workers share checkpoints through the content-addressed
//!    `ffis_vfs::CheckpointStore` disk tier, which is verified-or-
//!    rebuilt and therefore semantically invisible), and the
//!    coordinator's final resume re-derives the result from the merged
//!    journal exactly as a crash-resume would. A worker judges
//!    [`CompletionStatus`] against its own range, so partial sinks
//!    report honestly; only the coordinator speaks for the whole plan.
//!    Pinned by the distributed differential tests in
//!    `crates/daemon/tests/` and the `distributed-smoke` CI job.
//! 8. **Memoization law** — *memoized analyze == full analyze, byte
//!    for byte.* When an application declares analyze sub-steps with
//!    their read file-sets ([`crate::SubstepSpec`]) and the campaign
//!    enables `memo`, the engine may serve any clean sub-step (one
//!    whose `ffis_vfs` read-ledger fingerprints the armed fault cannot
//!    have changed) from the content-addressed memo store instead of
//!    re-executing it, recomputing only the dirty cascade — and the
//!    resulting tallies, kept records, injection records, and run
//!    digests are identical to whole-run analyze. The memo layer is
//!    gated by a golden-trace validation (`substep_memo`): the
//!    concatenated sub-step read streams must reproduce the whole
//!    analyze's ledger exactly, or the campaign falls back to whole
//!    analyze with the reason always recorded in
//!    [`crate::MemoReport`] (`memo-disabled`, `no-substeps`,
//!    `not-fast-path`, `liveness-watchdog`, `substep-inputs`,
//!    `substep-stream`, `substep-identity`) — there is no silent
//!    regime mixing. Pinned by `tests/memo_equivalence.rs` (all three
//!    apps × both sites × cold/warm stores, plus a seed proptest) and
//!    the `memo-smoke` CI job.
//! 9. **Amortized-fork batching law** — *batched == unbatched, byte
//!    for byte.* The executor may group pending replay runs that fork
//!    the same trace checkpoint ([`RunStrategy::batch_key`]) and hand
//!    them a shared, lazily built batch context
//!    ([`execute_durable_batched`]) so the checkpoint's per-run setup
//!    — `MemFs` fork, mount, descriptor adoption, counter preseed —
//!    is paid once per batch instead of once per run. Batching is a
//!    grouping of the *existing* schedule, never a reordering: the
//!    shortest-suffix-first schedule, the index-addressed result
//!    slots, and every run's record are identical whether the batch
//!    context engaged, declined, or the run executed solo — which is
//!    what keeps laws 3, 6, and 7 intact (a resumed or
//!    range-restricted invocation simply groups the runs it actually
//!    executes). Batch contexts (and the suffix coalescing they
//!    enable) are disabled under liveness watchdogs, whose fuel
//!    accounting counts per-op mount crossings. Pinned by the batched
//!    schedule proptest in `tests/properties.rs` and the `replay-opt`
//!    differential experiment.
//!
//! ## Liveness: fuel budgets and cancellation
//!
//! Two mechanisms keep a campaign from wedging or losing work:
//!
//! * **I/O-op fuel** (`ffis_vfs::FfisFs::set_fuel`) — each injection
//!   run's mount gets a budget of primitive crossings; a run wedged in
//!   an I/O loop by corrupted data exhausts it and unwinds into the
//!   normal crash classification as a
//!   [`crate::RunAborted::FuelExhausted`] outcome. Fuel counts
//!   crossings, not seconds, so exhaustion is deterministic and the
//!   resume law still holds for aborted runs. An optional wall-clock
//!   deadline backstops the parallel path (non-deterministic, off by
//!   default; a run that loops without ever touching the mount is
//!   beyond both detectors).
//! * **Cooperative cancellation** ([`CancelToken`]) — checked between
//!   runs, never mid-run: an interrupted campaign flushes every
//!   completed record to its journal and reports partial tallies with
//!   [`CompletionStatus::Interrupted`].

//!
//! ## The job layer
//!
//! [`job`] is the engine's service-facing vocabulary: one serializable
//! [`job::CampaignSpec`] shared by the `ffis-daemon`
//! REST API, the `repro daemon` CLI flags, and `repro scale`, plus the
//! [`job::JobState`]/[`job::JobFailure`]
//! lifecycle types a job queue parks campaigns in. The live event feed
//! those services stream ([`RunEvent`] via [`Durability::observe`])
//! taps the sink layer: one event per plan index, resumed prefix
//! first, so an event-derived tally always converges on the final one.

mod control;
mod executor;
pub mod job;
pub mod journal;
mod planner;
mod sink;

pub use control::{CancelToken, CompletionStatus};
pub use executor::{
    execute, execute_durable, execute_durable_batched, Durability, EngineConfig, EngineResult,
    RunEvent, RunRecord,
};
pub use job::{CampaignSpec, JobFailure, JobState, MIN_GRID};
pub use journal::{merge_segments, JournalEntry, JournalError, JournalMeta, RunJournal};
pub use planner::{index_ranges, ExecutionPlan, PlannedRun, RunStrategy};
pub use sink::{reservoir_mask, RunSink};
