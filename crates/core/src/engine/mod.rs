//! The shared campaign execution engine: **planner → executor → sink**.
//!
//! The paper's methodology is one pipeline — profile → inject × N →
//! classify → tally — but the repo grew three hand-rolled copies of
//! its execution half ([`crate::Campaign`], [`crate::MixedCampaign`],
//! [`crate::metadata_scan::scan_detailed`]), each with its own
//! serial/parallel branches, replay/rerun dispatch, and a fully
//! materialized result vector. This module is the one implementation
//! all three frontends now ride:
//!
//! * **Planner** ([`ExecutionPlan`]) — maps every scheduled run
//!   `(shard, index, spec)` to a [`RunStrategy`] — `Replay` with its
//!   starting checkpoint and suffix length, or `Rerun` with the
//!   recorded [`crate::ReplayFallback`] reason — *up front*, before
//!   anything executes, and fixes a wall-clock-optimizing schedule:
//!   replay runs shortest-suffix-first, rerun runs interleaved
//!   proportionally so the expensive re-executions start early instead
//!   of queuing behind the cheap replays.
//! * **Executor** ([`execute`]) — one serial/parallel (rayon) fan-out
//!   over the schedule. Results are keyed by run index, never by
//!   completion order.
//! * **Sink** ([`RunSink`]) — streaming aggregation: per-shard
//!   [`crate::OutcomeTally`]s fold online (`OutcomeTally::record` per
//!   run, `OutcomeTally::merge` across shards), and full run records
//!   are retained only for a seed-stable bounded reservoir
//!   ([`reservoir_mask`]) so a paper-scale campaign holds
//!   O(`keep_runs`) — not O(runs) — record memory.
//!
//! ## Engine laws
//!
//! These mirror the fidelity contract of `ffis_vfs::trace`; the
//! property tests in `tests/properties.rs` pin them:
//!
//! 1. **Single emission** — the plan contains each `(shard, index)`
//!    pair exactly once, and the schedule is a permutation of the
//!    plan: every planned run executes exactly once.
//! 2. **Plan-time randomness** — all per-run random draws (target
//!    instance, injection seed, flip mask) happen while *building* the
//!    plan, from per-run child streams (`root.child(shard).child(run)`
//!    in the sharded drivers, `root.child(run)` in the
//!    single-signature driver). Execution order can never affect a
//!    draw.
//! 3. **Order independence** — the schedule is a pure wall-clock
//!    optimization. Serial and parallel execution of the same plan
//!    produce byte-identical tallies, kept records, injection records,
//!    and crash messages, because every result lands in its
//!    index-addressed slot and the sink's retention set is chosen at
//!    plan time ([`reservoir_mask`] is a function of seed and counts
//!    only, never of completion order).
//! 4. **Sink bounds** — the sink retains at most `keep_runs` full run
//!    records (default: all, preserving the historical API); dropped
//!    records still contribute to every tally, which is therefore
//!    always computed over *all* runs. `no_fire` accounting (armed
//!    fault never executed *and* output matched) is part of the sink,
//!    so the one definition serves every frontend.
//! 5. **Strategy fidelity** — `Replay` and `Rerun` produce
//!    byte-identical run results for the same `(signature, instance,
//!    seed)` (pinned by `tests/replay_equivalence.rs`), so the
//!    scheduler may mix the two strategies freely within one campaign.

mod executor;
mod planner;
mod sink;

pub use executor::{execute, EngineConfig, EngineResult, RunRecord};
pub use planner::{ExecutionPlan, PlannedRun, RunStrategy};
pub use sink::{reservoir_mask, RunSink};
