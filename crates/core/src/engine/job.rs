//! Job-facing campaign types: the one [`CampaignSpec`] every frontend
//! speaks, and the structured job lifecycle/failure vocabulary of the
//! campaign-as-a-service surface.
//!
//! Before this module, each frontend plumbed its own ad-hoc option
//! bundle: the `repro` CLI its `Options`, `repro scale` a hand-built
//! [`crate::CampaignConfig`] per cell, and any future service would
//! have invented a third. [`CampaignSpec`] is the shared serializable
//! description — app, fault model and injection site, grid, run count,
//! seed, liveness limits, journal options — that the `ffis-daemon`
//! REST API accepts, the `repro daemon submit` flags construct, and
//! `repro scale` builds its cells from. Validation lives here too, so
//! an out-of-range spec produces the same message whether it arrives
//! as a CLI flag (exit 2) or an HTTP body (status 400).
//!
//! [`JobState`] and [`JobFailure`] are the lifecycle half: a job queue
//! holds specs in `Queued`/`Running` and parks them in one of the
//! terminal-ish states, and a failed job carries a *structured* reason
//! ([`JobFailure::PlanMismatch`] with both fingerprints, not a log
//! line) that survives serialization across the service boundary.

use crate::campaign::{memo_default, replay_opt_default, CampaignError};
use crate::engine::journal::JournalError;
use crate::fault::{FaultSignature, InjectionSite};
use crate::generator::FaultConfig;

/// Smallest grid the paper workloads run on: the fig8 golden run needs
/// at least a 16³ field to host its halo statistics, and no harness
/// preset goes lower (CI smoke uses 64, quick caps at 48). Anything
/// smaller is a configuration error, reported as such — never a
/// mid-campaign panic.
pub const MIN_GRID: usize = 16;

/// One serializable campaign description, shared by the daemon API,
/// the CLI flags, and `repro scale` (see the module docs).
///
/// The spec is app-agnostic: `app` is a registry name resolved by the
/// executing frontend (the daemon's app registry, `repro`'s experiment
/// table), and `grid` only scales apps that have a grid (Nyx); the
/// others ignore it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Application registry name (`"nyx"`, `"qmc"`, `"montage"`, or
    /// the synthetic `"paced"` smoke workload).
    pub app: String,
    /// Fault model spelling, as accepted by
    /// [`FaultConfig`] (`"BF"`/`"SW"`/`"DW"`, long names, or the
    /// read-site `"SR"`/`"DR"` spellings).
    pub model: String,
    /// Injection site: `"write"` (default) or `"read"`.
    pub site: String,
    /// Grid side for grid-scaled apps (Nyx); at least [`MIN_GRID`].
    pub grid: usize,
    /// Output-file multiplicity for the multi-file regimes: Nyx
    /// plotfile snapshots, Montage mosaic tiles, QMCPACK restart
    /// segments. `1` (the default) keeps every app in its legacy
    /// single-file layout; apps without a multi-file regime (paced)
    /// ignore it. At least 1.
    pub files: usize,
    /// Engage the analyze memoization layer (engine law 8) when the
    /// resolved app declares analyze sub-steps. Defaults to the
    /// `FFIS_MEMO` environment posture; harmless on single-file specs
    /// (the campaign reports the `no-substeps` fallback).
    pub memo: bool,
    /// Engage the plan-aware replay optimizations (demand-driven
    /// checkpoint placement, checkpoint-grouped batch execution,
    /// suffix op coalescing — [`crate::CampaignConfig::replay_opt`]).
    /// Defaults to the `FFIS_REPLAY_OPT` environment posture. The
    /// optimizations are digest-invisible either way; the `false`
    /// regime exists as a measurement control.
    pub replay_opt: bool,
    /// Injection runs (paper: 1,000 per cell); at least 1.
    pub runs: usize,
    /// Campaign root seed.
    pub seed: u64,
    /// Bound on retained full run records (`None` = keep all).
    pub keep_runs: Option<usize>,
    /// Fan runs out across the thread pool.
    pub parallel: bool,
    /// Per-run I/O-op fuel budget ([`crate::CampaignConfig::fuel`]).
    pub fuel: Option<u64>,
    /// Per-run wall-clock backstop, in milliseconds.
    pub wall_limit_ms: Option<u64>,
    /// Journal completed runs (the daemon keeps one `RunJournal` per
    /// job; the CLI maps this to `--journal`).
    pub journal: bool,
    /// Resume from an existing journal when one is present. Safe to
    /// leave on: a missing journal starts fresh, a mismatched one is a
    /// structured [`JobFailure::PlanMismatch`], never a silent splice.
    pub resume: bool,
}

impl CampaignSpec {
    /// A spec with the harness defaults (paper run count, scale-regime
    /// grid, journal + resume on — the durable-service posture).
    pub fn new(app: &str, model: &str) -> Self {
        CampaignSpec {
            app: app.to_string(),
            model: model.to_string(),
            site: InjectionSite::Write.token().to_string(),
            grid: 96,
            files: 1,
            memo: memo_default(),
            replay_opt: replay_opt_default(),
            runs: 1000,
            seed: 0xFF15_2021,
            keep_runs: None,
            parallel: true,
            fuel: None,
            wall_limit_ms: None,
            journal: true,
            resume: true,
        }
    }

    /// The injection site this spec names.
    pub fn injection_site(&self) -> Result<InjectionSite, String> {
        match self.site.to_ascii_lowercase().as_str() {
            "write" | "w" => Ok(InjectionSite::Write),
            "read" | "r" => Ok(InjectionSite::Read),
            other => {
                Err(format!("unknown injection site '{}' (expected 'write' or 'read')", other))
            }
        }
    }

    /// Build the validated [`FaultSignature`] (model parsed through
    /// [`FaultConfig`], primitive forced to the spec's site).
    pub fn signature(&self) -> Result<FaultSignature, String> {
        let site = self.injection_site()?;
        let mut cfg = FaultConfig::model(&self.model);
        cfg.primitive = Some(site.token().to_string());
        cfg.build()
    }

    /// Validate every field, with the same messages the PR-6 CLI
    /// validation established (`--runs`/`--grid`); the daemon maps an
    /// `Err` here to HTTP 400.
    pub fn validate(&self) -> Result<(), String> {
        if self.app.trim().is_empty() {
            return Err("app must be named".into());
        }
        if self.runs == 0 {
            return Err("runs must be at least 1".into());
        }
        if self.grid < MIN_GRID {
            return Err(format!(
                "grid {} is below the minimum {} (the paper workloads need at least a \
                 {MIN_GRID}\u{b3} field)",
                self.grid, MIN_GRID
            ));
        }
        if self.files == 0 {
            return Err("files must be at least 1".into());
        }
        if self.keep_runs == Some(0) {
            return Err("keep_runs must be at least 1 when set".into());
        }
        if self.fuel == Some(0) {
            return Err("fuel must be at least 1 I/O op when set".into());
        }
        self.signature()?;
        Ok(())
    }

    /// Report label in the scale-table vocabulary: `BF`/`SW`/`DW` for
    /// write-site specs, `r:BF`/`r:SR`/`r:DR` for their read-site
    /// mirrors — the same strings `repro scale` prints and
    /// `DIGESTS.txt` keys on. Multi-file specs append `:fN` so a
    /// memoized multi-file cell never collides with its single-file
    /// namesake in the digest vocabulary. Infallible for display's
    /// sake: a spec that does not validate labels as the raw
    /// `model@site` pair.
    pub fn label(&self) -> String {
        let base = match (self.injection_site(), self.signature()) {
            (Ok(site), Ok(sig)) => match site {
                InjectionSite::Write => sig.model.label_at(site).to_string(),
                InjectionSite::Read => format!("r:{}", sig.model.label_at(site)),
            },
            _ => format!("{}@{}", self.model, self.site),
        };
        if self.files > 1 {
            format!("{}:f{}", base, self.files)
        } else {
            base
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker slot (FIFO).
    Queued,
    /// A worker is executing the campaign.
    Running,
    /// The plan drained fully; the result is final.
    Complete,
    /// Cancelled (or the daemon shut down) with partial tallies; the
    /// journal holds every completed run, so a restart resumes it.
    Interrupted,
    /// The campaign could not run; see the [`JobFailure`].
    Failed,
}

impl JobState {
    /// Wire/report token.
    pub fn token(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Complete => "complete",
            JobState::Interrupted => "interrupted",
            JobState::Failed => "failed",
        }
    }

    /// Parse a wire token.
    pub fn from_token(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "complete" => JobState::Complete,
            "interrupted" => JobState::Interrupted,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }

    /// Is the job still waiting or executing (i.e. its result can
    /// still change)?
    pub fn is_active(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// Structured reason a job failed — the API-facing mirror of
/// [`CampaignError`], with the resume-refusal case
/// ([`JobFailure::PlanMismatch`]) carrying both fingerprints so a
/// client can see *what* drifted instead of grepping daemon logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// The spec failed validation (bad model, out-of-range grid/runs,
    /// unknown app).
    BadSpec(String),
    /// The golden (fault-free) run failed — nothing to compare
    /// against.
    GoldenRunFailed(String),
    /// The profiler found no eligible instance to inject into.
    NoEligibleInstances,
    /// The job's journal belongs to a different plan: the grid, seed,
    /// signature, or run count changed under a resume.
    PlanMismatch {
        /// Fingerprint found in the journal header.
        found: u64,
        /// Fingerprint of the plan being resumed.
        expected: u64,
    },
    /// Any other journal problem (I/O, corrupt/incompatible header).
    Journal(String),
}

impl JobFailure {
    /// Stable kind token for the API (`failure.kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobFailure::BadSpec(_) => "bad-spec",
            JobFailure::GoldenRunFailed(_) => "golden-run-failed",
            JobFailure::NoEligibleInstances => "no-eligible-instances",
            JobFailure::PlanMismatch { .. } => "plan-mismatch",
            JobFailure::Journal(_) => "journal",
        }
    }

    /// Map a [`CampaignError`] into its structured job-failure reason.
    pub fn from_campaign_error(e: &CampaignError) -> JobFailure {
        match e {
            CampaignError::BadSignature(m) => JobFailure::BadSpec(m.clone()),
            CampaignError::GoldenRunFailed(m) => JobFailure::GoldenRunFailed(m.clone()),
            CampaignError::NoEligibleInstances => JobFailure::NoEligibleInstances,
            CampaignError::Journal(JournalError::PlanMismatch { found, expected }) => {
                JobFailure::PlanMismatch { found: *found, expected: *expected }
            }
            CampaignError::Journal(j) => JobFailure::Journal(j.to_string()),
        }
    }
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::BadSpec(m) => write!(f, "invalid campaign spec: {}", m),
            JobFailure::GoldenRunFailed(m) => write!(f, "golden run failed: {}", m),
            JobFailure::NoEligibleInstances => {
                f.write_str("no eligible primitive instances to inject into")
            }
            JobFailure::PlanMismatch { found, expected } => write!(
                f,
                "journal plan fingerprint {found:#018x} does not match this spec \
                 ({expected:#018x}): the grid, seed, signature, or run count changed"
            ),
            JobFailure::Journal(m) => write!(f, "run journal: {}", m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;

    #[test]
    fn defaults_validate_and_label_write_site() {
        let spec = CampaignSpec::new("nyx", "BF");
        spec.validate().unwrap();
        assert_eq!(spec.injection_site().unwrap(), InjectionSite::Write);
        assert_eq!(spec.label(), "BF");
        assert_eq!(spec.signature().unwrap().model, FaultModel::bit_flip());
    }

    #[test]
    fn multi_file_specs_label_with_their_multiplicity() {
        let mut spec = CampaignSpec::new("montage", "BF");
        assert_eq!(spec.files, 1);
        assert_eq!(spec.label(), "BF");
        spec.files = 8;
        spec.validate().unwrap();
        assert_eq!(spec.label(), "BF:f8");
        spec.site = "read".into();
        assert_eq!(spec.label(), "r:BF:f8");
    }

    #[test]
    fn read_site_labels_match_the_scale_vocabulary() {
        for (model, label) in [("BF", "r:BF"), ("SW", "r:SR"), ("DW", "r:DR")] {
            let mut spec = CampaignSpec::new("nyx", model);
            spec.site = "read".into();
            assert_eq!(spec.label(), label, "model {model}");
            assert_eq!(spec.injection_site().unwrap(), InjectionSite::Read);
            spec.validate().unwrap();
        }
    }

    #[test]
    fn out_of_range_specs_fail_with_the_cli_messages() {
        let mut spec = CampaignSpec::new("nyx", "BF");
        spec.runs = 0;
        assert!(spec.validate().unwrap_err().contains("runs must be at least 1"));
        let mut spec = CampaignSpec::new("nyx", "BF");
        spec.grid = MIN_GRID - 1;
        assert!(spec.validate().unwrap_err().contains("below the minimum"));
        let mut spec = CampaignSpec::new("nyx", "no-such-model");
        spec.grid = 96;
        assert!(spec.validate().unwrap_err().contains("unknown fault model"));
        let mut spec = CampaignSpec::new("nyx", "BF");
        spec.site = "sideways".into();
        assert!(spec.validate().unwrap_err().contains("unknown injection site"));
        let mut spec = CampaignSpec::new("nyx", "BF");
        spec.keep_runs = Some(0);
        assert!(spec.validate().unwrap_err().contains("keep_runs"));
        let mut spec = CampaignSpec::new("nyx", "BF");
        spec.files = 0;
        assert!(spec.validate().unwrap_err().contains("files must be at least 1"));
        let mut spec = CampaignSpec::new("nyx", "BF");
        spec.fuel = Some(0);
        assert!(spec.validate().unwrap_err().contains("fuel"));
    }

    #[test]
    fn job_state_tokens_round_trip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Complete,
            JobState::Interrupted,
            JobState::Failed,
        ] {
            assert_eq!(JobState::from_token(s.token()), Some(s));
        }
        assert!(JobState::from_token("nope").is_none());
        assert!(JobState::Queued.is_active());
        assert!(JobState::Running.is_active());
        assert!(!JobState::Complete.is_active());
    }

    #[test]
    fn campaign_errors_map_to_structured_failures() {
        let e = CampaignError::Journal(JournalError::PlanMismatch { found: 1, expected: 2 });
        assert_eq!(
            JobFailure::from_campaign_error(&e),
            JobFailure::PlanMismatch { found: 1, expected: 2 }
        );
        assert_eq!(JobFailure::from_campaign_error(&e).kind(), "plan-mismatch");
        let e = CampaignError::BadSignature("x".into());
        assert_eq!(JobFailure::from_campaign_error(&e), JobFailure::BadSpec("x".into()));
        let e = CampaignError::Journal(JournalError::BadMagic);
        assert!(matches!(JobFailure::from_campaign_error(&e), JobFailure::Journal(_)));
        assert_eq!(JobFailure::NoEligibleInstances.kind(), "no-eligible-instances");
    }
}
