//! The planner layer: per-run strategies resolved up front, plus the
//! wall-clock-optimizing schedule.

use crate::campaign::{ExecutionMode, ReplayFallback};

/// How one scheduled run will execute, resolved at plan time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStrategy {
    /// Checkpointed golden-trace replay: fork checkpoint `checkpoint`
    /// (a position into the trace cache's checkpoint list) and replay
    /// the `suffix_len`-op trace suffix through the armed injector.
    Replay {
        /// Position of the starting snapshot in
        /// `TraceCheckpoints::points()`.
        checkpoint: usize,
        /// Ops left to replay from that snapshot — the run's cost
        /// proxy, which the scheduler sorts ascending.
        suffix_len: usize,
    },
    /// Analyze-only re-execution for an analyze-phase read-site
    /// target: fork the golden post-produce filesystem, pre-seed the
    /// mount's counters with the golden produce-phase counts, and run
    /// only the application's analyze phase with the fault armed. No
    /// trace is replayed at all — the golden state *is* the
    /// checkpoint.
    AnalyzeOnly,
    /// Memoized analyze for an analyze-phase read-site target whose
    /// workload declares analyze sub-steps: fork the golden
    /// post-produce filesystem, pre-seed the counters captured at the
    /// *dirty* sub-step's start, re-run only that sub-step with the
    /// fault armed, and assemble its artifact with the cached golden
    /// artifacts of every clean sub-step (engine law 8).
    IncrementalAnalyze {
        /// Read records the dirty sub-step replays live — the run's
        /// cost proxy, which the scheduler sorts ascending.
        cost: u32,
    },
    /// Full application re-execution, with the recorded reason the
    /// replay fast path did not engage.
    Rerun {
        /// Why this run re-executes instead of replaying.
        reason: ReplayFallback,
    },
}

impl RunStrategy {
    /// Does this run take the replay fast path?
    pub fn is_replay(self) -> bool {
        matches!(self, RunStrategy::Replay { .. })
    }

    /// Does this run skip re-executing the produce phase (replay or
    /// analyze-only)?
    pub fn is_fast(self) -> bool {
        !matches!(self, RunStrategy::Rerun { .. })
    }

    /// Grouping key for checkpoint-shared batch execution: replay
    /// runs forking the same checkpoint batch together so the
    /// checkpoint's fork/mount/preseed setup is amortized
    /// fork-once-replay-many (engine law 9). Non-replay strategies
    /// never batch.
    pub fn batch_key(self) -> Option<usize> {
        match self {
            RunStrategy::Replay { checkpoint, .. } => Some(checkpoint),
            _ => None,
        }
    }

    /// The [`ExecutionMode`] this strategy records on its run result.
    pub fn mode(self) -> ExecutionMode {
        match self {
            RunStrategy::Replay { .. } => ExecutionMode::Replay,
            RunStrategy::AnalyzeOnly => ExecutionMode::AnalyzeOnly,
            RunStrategy::IncrementalAnalyze { .. } => ExecutionMode::IncrementalAnalyze,
            RunStrategy::Rerun { reason } => ExecutionMode::FullRerun { reason },
        }
    }
}

/// One fully planned run: its result slot (`index`), its shard, its
/// resolved [`RunStrategy`], and the frontend-specific spec (target
/// instance + injection seed for campaigns, byte index + flip for the
/// metadata scanner) whose random draws were made at plan time.
#[derive(Debug, Clone)]
pub struct PlannedRun<S> {
    /// Result-order position; `plan.runs()[i].index == i` always.
    pub index: usize,
    /// Owning shard (0 for single-signature frontends).
    pub shard: usize,
    /// Resolved execution strategy.
    pub strategy: RunStrategy,
    /// Frontend-specific per-run data.
    pub spec: S,
}

/// The complete, immutable plan of a campaign's execution phase.
///
/// `runs` is in result order (law 1: each `(shard, index)` exactly
/// once); `schedule` is the execution-order permutation the executor
/// walks. The schedule depends only on the planned strategies — never
/// on `parallel`, thread count, or timing — so plan order is
/// reproducible by construction (law 3).
#[derive(Debug)]
pub struct ExecutionPlan<S> {
    runs: Vec<PlannedRun<S>>,
    schedule: Vec<usize>,
    shards: usize,
}

impl<S> ExecutionPlan<S> {
    /// Build the plan: validate result ordering and fix the schedule —
    /// fast runs (replay and analyze-only) shortest-work-first (cheap
    /// forks drain the pool densely; analyze-only runs replay no trace
    /// at all and sort ahead of every suffix replay), rerun runs
    /// interleaved proportionally (the expensive re-executions start
    /// early rather than queuing at either end).
    pub fn new(runs: Vec<PlannedRun<S>>, shards: usize) -> Self {
        // Law 1 is load-bearing for slot addressing and the keep mask;
        // validate it in release builds too (O(n), negligible next to
        // the runs themselves).
        assert!(
            runs.iter().enumerate().all(|(i, r)| r.index == i && r.shard < shards.max(1)),
            "planned runs must arrive in result order with in-range shards"
        );
        let mut fast: Vec<usize> = Vec::new();
        let mut rerun: Vec<usize> = Vec::new();
        for (i, r) in runs.iter().enumerate() {
            match r.strategy {
                RunStrategy::Replay { .. }
                | RunStrategy::AnalyzeOnly
                | RunStrategy::IncrementalAnalyze { .. } => fast.push(i),
                RunStrategy::Rerun { .. } => rerun.push(i),
            }
        }
        fast.sort_by_key(|&i| match runs[i].strategy {
            RunStrategy::Replay { suffix_len, .. } => (suffix_len, i),
            // An analyze-only run replays zero trace ops; its cost key
            // is the minimum.
            RunStrategy::AnalyzeOnly => (0, i),
            // An incremental-analyze run re-reads only its dirty
            // sub-step; its live read count shares the cost axis with
            // replay suffix lengths.
            RunStrategy::IncrementalAnalyze { cost } => (cost as usize, i),
            RunStrategy::Rerun { .. } => unreachable!("partitioned above"),
        });
        let schedule = interleave(&fast, &rerun);
        ExecutionPlan { runs, schedule, shards }
    }

    /// All planned runs, in result order.
    pub fn runs(&self) -> &[PlannedRun<S>] {
        &self.runs
    }

    /// Execution order: a permutation of `0..runs().len()`.
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// Number of shards the plan spans.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total scheduled runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

/// Shard a plan of `total` runs across `workers` processes:
/// contiguous, non-overlapping, half-open `[start, end)` ranges that
/// cover `0..total` exactly, longest-first (the first `total % workers`
/// ranges hold one extra run). Empty ranges are never produced —
/// `workers > total` yields `total` singleton ranges — so a
/// coordinator can spawn one worker per returned range without
/// special-casing idle processes.
///
/// Because every run's result is a pure function of its plan-time spec
/// (engine laws 2 and 3), partitioning by index range is *complete*
/// and *disjoint*: merging the per-range journals index-addressed
/// reproduces the single-process campaign byte for byte (law 7).
pub fn index_ranges(total: usize, workers: usize) -> Vec<(usize, usize)> {
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(total);
    let base = total / workers;
    let extra = total % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Proportional two-stream merge: at every position, take from the
/// stream whose progress fraction is behind (ties prefer `a`), so `b`
/// items spread evenly through `a` instead of clumping.
fn interleave(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let take_a = if i >= a.len() {
            false
        } else if j >= b.len() {
            true
        } else {
            // (i+1)/|a| <= (j+1)/|b|  ⇔  (i+1)·|b| <= (j+1)·|a|
            (i + 1) * b.len() <= (j + 1) * a.len()
        };
        if take_a {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planned(strategies: Vec<RunStrategy>) -> ExecutionPlan<()> {
        let runs = strategies
            .into_iter()
            .enumerate()
            .map(|(index, strategy)| PlannedRun { index, shard: index % 2, strategy, spec: () })
            .collect();
        ExecutionPlan::new(runs, 2)
    }

    #[test]
    fn schedule_is_a_permutation() {
        let plan = planned(vec![
            RunStrategy::Replay { checkpoint: 0, suffix_len: 10 },
            RunStrategy::Rerun { reason: ReplayFallback::Disabled },
            RunStrategy::Replay { checkpoint: 1, suffix_len: 3 },
            RunStrategy::Rerun { reason: ReplayFallback::ProduceReadFault },
            RunStrategy::Replay { checkpoint: 0, suffix_len: 7 },
        ]);
        let mut seen = plan.schedule().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.shards(), 2);
    }

    #[test]
    fn replay_runs_schedule_shortest_suffix_first() {
        let plan = planned(vec![
            RunStrategy::Replay { checkpoint: 0, suffix_len: 10 },
            RunStrategy::Replay { checkpoint: 1, suffix_len: 3 },
            RunStrategy::Replay { checkpoint: 0, suffix_len: 7 },
        ]);
        assert_eq!(plan.schedule(), &[1, 2, 0]);
    }

    #[test]
    fn reruns_interleave_proportionally() {
        let plan = planned(vec![
            RunStrategy::Replay { checkpoint: 0, suffix_len: 1 },
            RunStrategy::Rerun { reason: ReplayFallback::ProduceReadFault },
            RunStrategy::Replay { checkpoint: 0, suffix_len: 2 },
            RunStrategy::Rerun { reason: ReplayFallback::ProduceReadFault },
            RunStrategy::Replay { checkpoint: 0, suffix_len: 3 },
            RunStrategy::Rerun { reason: ReplayFallback::ProduceReadFault },
        ]);
        // Equal stream lengths alternate, starting with replay.
        assert_eq!(plan.schedule(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn analyze_only_runs_schedule_with_the_fast_class() {
        let plan = planned(vec![
            RunStrategy::Replay { checkpoint: 0, suffix_len: 5 },
            RunStrategy::AnalyzeOnly,
            RunStrategy::Rerun { reason: ReplayFallback::ProduceReadFault },
            RunStrategy::AnalyzeOnly,
        ]);
        // Analyze-only runs carry the minimum cost key, so they lead
        // the fast stream (in index order), ahead of suffix replays;
        // the rerun interleaves proportionally.
        assert_eq!(plan.schedule(), &[1, 3, 0, 2]);
        assert!(RunStrategy::AnalyzeOnly.is_fast());
        assert!(!RunStrategy::AnalyzeOnly.is_replay());
        assert!(!RunStrategy::Rerun { reason: ReplayFallback::Disabled }.is_fast());
    }

    #[test]
    fn incremental_analyze_runs_sort_by_live_read_cost() {
        let plan = planned(vec![
            RunStrategy::Replay { checkpoint: 0, suffix_len: 4 },
            RunStrategy::IncrementalAnalyze { cost: 9 },
            RunStrategy::IncrementalAnalyze { cost: 2 },
            RunStrategy::AnalyzeOnly,
            RunStrategy::Rerun { reason: ReplayFallback::ProduceReadFault },
        ]);
        // Cost keys: analyze-only 0, then IA cost 2, replay suffix 4,
        // IA cost 9; the single rerun lands after the fast stream has
        // kept proportional pace.
        assert_eq!(plan.schedule(), &[3, 2, 0, 1, 4]);
        assert!(RunStrategy::IncrementalAnalyze { cost: 2 }.is_fast());
        assert!(!RunStrategy::IncrementalAnalyze { cost: 2 }.is_replay());
        assert_eq!(
            RunStrategy::IncrementalAnalyze { cost: 2 }.mode(),
            ExecutionMode::IncrementalAnalyze
        );
    }

    #[test]
    fn all_rerun_plan_keeps_index_order() {
        let plan = planned(vec![RunStrategy::Rerun { reason: ReplayFallback::Disabled }; 4]);
        assert_eq!(plan.schedule(), &[0, 1, 2, 3]);
    }

    #[test]
    fn index_ranges_partition_exactly() {
        for total in [0usize, 1, 2, 5, 64, 192, 193] {
            for workers in [0usize, 1, 2, 3, 7, 200] {
                let ranges = index_ranges(total, workers);
                if total == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.len(), workers.max(1).min(total));
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges.last().unwrap().1, total);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                }
                assert!(ranges.iter().all(|&(s, e)| s < e), "no empty range");
                let lens: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "near-even split: {lens:?}");
            }
        }
        assert_eq!(index_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
    }

    #[test]
    fn strategy_mode_mapping() {
        assert_eq!(
            RunStrategy::Replay { checkpoint: 0, suffix_len: 1 }.mode(),
            ExecutionMode::Replay
        );
        assert!(RunStrategy::Replay { checkpoint: 0, suffix_len: 1 }.is_replay());
        assert_eq!(
            RunStrategy::Rerun { reason: ReplayFallback::Disabled }.mode(),
            ExecutionMode::FullRerun { reason: ReplayFallback::Disabled }
        );
    }
}
