//! The run journal: an append-only, CRC-framed write-ahead log of
//! completed run results.
//!
//! The engine's determinism laws (plan-time randomness, index-addressed
//! results) make crash recovery *provable*: a run's result depends only
//! on its planned spec, never on which other runs already executed. So
//! a journal of completed `(index, outcome, fired, payload)` records is
//! a complete checkpoint of campaign progress — on restart the executor
//! feeds the journaled indices straight into the sink at cost 0 and
//! executes only the pending set, and the **resume law** holds:
//! *interrupted + resumed == uninterrupted, byte for byte* (pinned by
//! `tests/resume_durability.rs`, which SIGKILLs a child mid-campaign).
//!
//! ## On-disk format
//!
//! Little-endian throughout.
//!
//! ```text
//! header:  magic "FFISJNL1" | schema u32 | fingerprint u64 | seed u64
//!          | runs u64 | shards u32 | context_len u32 | context bytes
//!          | header_crc u32           (CRC-32 of everything before it)
//! record:  payload_len u32 | payload_crc u32 | payload bytes
//! payload: index u64 | outcome u8 | fired u8 | frontend bytes
//! ```
//!
//! Each record is framed by its own CRC-32, so a torn tail (the process
//! was killed mid-append) is detected and *discarded* on resume — the
//! interrupted run simply re-executes. The journal is flushed to the OS
//! after every append but not fsynced: a SIGKILL of the campaign
//! process cannot lose page-cache data (only the host losing power
//! can), and per-run fsyncs would blow the ≤5% overhead budget.
//!
//! The header binds the journal to one exact plan: resuming under a
//! different plan fingerprint (changed grid, seed, signature, strategy
//! regime, or run count) is rejected with a clear error instead of
//! silently splicing incompatible results.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::outcome::Outcome;

/// Journal file magic: identifies format family and revision.
pub const JOURNAL_MAGIC: &[u8; 8] = b"FFISJNL1";

/// Current journal schema version. Bump when the record payload
/// encoding changes shape; resume rejects mismatches.
pub const JOURNAL_SCHEMA: u32 = 1;

/// Backoff schedule for transient append I/O errors: the append is
/// retried after each sleep; only after the last attempt fails does
/// the journal degrade to non-persistent mode.
const APPEND_BACKOFF_MS: [u64; 3] = [1, 10, 50];

/// Identifying metadata bound into the journal header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalMeta {
    /// Plan fingerprint ([`crate::CampaignResult::plan_fingerprint`]):
    /// an FNV-1a digest of every planned run's spec and strategy.
    pub fingerprint: u64,
    /// Campaign root seed.
    pub seed: u64,
    /// Total planned runs.
    pub runs: u64,
    /// Shard count (1 for single-signature campaigns).
    pub shards: u32,
    /// Free-form context (app, grid, fault model — whatever the
    /// frontend wants readable in the header).
    pub context: String,
}

/// Why a journal could not be opened for resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Underlying I/O failure.
    Io(String),
    /// The file is not a run journal (bad magic).
    BadMagic,
    /// The journal was written by a different schema revision.
    SchemaMismatch {
        /// Schema found in the file.
        found: u32,
        /// Schema this build writes.
        expected: u32,
    },
    /// The journal belongs to a different plan — resuming would splice
    /// incompatible results.
    PlanMismatch {
        /// Fingerprint found in the file.
        found: u64,
        /// Fingerprint of the plan being resumed.
        expected: u64,
    },
    /// The header itself is corrupt (truncated or CRC failure).
    CorruptHeader(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadMagic => write!(f, "not a run journal (bad magic)"),
            JournalError::SchemaMismatch { found, expected } => write!(
                f,
                "journal schema v{found} incompatible with this build (v{expected}); \
                 delete the journal to start fresh"
            ),
            JournalError::PlanMismatch { found, expected } => write!(
                f,
                "journal plan fingerprint {found:#018x} does not match this campaign \
                 ({expected:#018x}): the grid, seed, signature, or run count changed; \
                 delete the journal to start fresh"
            ),
            JournalError::CorruptHeader(e) => write!(f, "journal header corrupt: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// One journaled run, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Plan index of the run.
    pub index: usize,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Did the armed injector fire?
    pub fired: bool,
    /// Frontend-encoded payload bytes (e.g. a serialized
    /// `RunResult`), decoded by the frontend that wrote them.
    pub payload: Vec<u8>,
}

fn outcome_code(o: Outcome) -> u8 {
    match o {
        Outcome::Benign => 0,
        Outcome::Detected => 1,
        Outcome::Sdc => 2,
        Outcome::Crash => 3,
    }
}

fn outcome_from_code(c: u8) -> Option<Outcome> {
    Some(match c {
        0 => Outcome::Benign,
        1 => Outcome::Detected,
        2 => Outcome::Sdc,
        3 => Outcome::Crash,
        _ => return None,
    })
}

/// CRC-32 (IEEE 802.3, reflected), table-driven. Hand-rolled because
/// the workspace is offline by policy (no external crates).
pub fn crc32(bytes: &[u8]) -> u32 {
    fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(table);
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Append `v` as little-endian bytes (encoding helpers shared with the
/// frontends' payload serializers).
pub mod wire {
    /// Append a `u32`, little-endian.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u32(buf, s.len() as u32);
        buf.extend_from_slice(s.as_bytes());
    }

    /// Append an optional length-prefixed UTF-8 string.
    pub fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
        match s {
            Some(s) => {
                buf.push(1);
                put_str(buf, s);
            }
            None => buf.push(0),
        }
    }

    /// Cursor over encoded bytes; every read is bounds-checked so a
    /// corrupt payload decodes to `None`, never a panic.
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Reader over `buf` from the start.
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Take one byte.
        pub fn u8(&mut self) -> Option<u8> {
            let b = *self.buf.get(self.pos)?;
            self.pos += 1;
            Some(b)
        }

        /// Take a little-endian `u32`.
        pub fn u32(&mut self) -> Option<u32> {
            let s = self.buf.get(self.pos..self.pos + 4)?;
            self.pos += 4;
            Some(u32::from_le_bytes(s.try_into().ok()?))
        }

        /// Take a little-endian `u64`.
        pub fn u64(&mut self) -> Option<u64> {
            let s = self.buf.get(self.pos..self.pos + 8)?;
            self.pos += 8;
            Some(u64::from_le_bytes(s.try_into().ok()?))
        }

        /// Take a length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Option<String> {
            let len = self.u32()? as usize;
            let s = self.buf.get(self.pos..self.pos.checked_add(len)?)?;
            self.pos += len;
            String::from_utf8(s.to_vec()).ok()
        }

        /// Take an optional length-prefixed UTF-8 string.
        pub fn opt_str(&mut self) -> Option<Option<String>> {
            match self.u8()? {
                0 => Some(None),
                1 => Some(Some(self.str()?)),
                _ => None,
            }
        }

        /// Take `n` raw bytes.
        pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
            let s = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
            self.pos += n;
            Some(s)
        }
    }
}

fn encode_header(meta: &JournalMeta) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + meta.context.len());
    buf.extend_from_slice(JOURNAL_MAGIC);
    wire::put_u32(&mut buf, JOURNAL_SCHEMA);
    wire::put_u64(&mut buf, meta.fingerprint);
    wire::put_u64(&mut buf, meta.seed);
    wire::put_u64(&mut buf, meta.runs);
    wire::put_u32(&mut buf, meta.shards);
    wire::put_str(&mut buf, &meta.context);
    let crc = crc32(&buf);
    wire::put_u32(&mut buf, crc);
    buf
}

/// The append-only run journal.
///
/// Writers: [`RunJournal::create`] truncates and writes a fresh
/// header; [`RunJournal::resume`] validates an existing journal
/// against the expected [`JournalMeta`], decodes every complete
/// record, truncates any torn tail, and positions for appending.
/// [`RunJournal::append`] retries transient I/O errors with bounded
/// backoff and — if the file stays unwritable — *degrades* (further
/// appends become no-ops and [`RunJournal::is_degraded`] reports it)
/// rather than failing the campaign: durability is best-effort, the
/// campaign result is not.
#[derive(Debug)]
pub struct RunJournal {
    file: File,
    path: PathBuf,
    meta: JournalMeta,
    records: u64,
    degraded: bool,
}

impl RunJournal {
    /// Create (or truncate) a journal at `path` and write the header.
    pub fn create(path: &Path, meta: JournalMeta) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| JournalError::Io(format!("{}: {e}", path.display())))?;
        file.write_all(&encode_header(&meta))
            .and_then(|()| file.flush())
            .map_err(|e| JournalError::Io(format!("{}: {e}", path.display())))?;
        Ok(RunJournal { file, path: path.to_path_buf(), meta, records: 0, degraded: false })
    }

    /// Open an existing journal for resume: validate the header
    /// against `expected`, decode every complete record, truncate any
    /// torn tail, and return the journal (positioned for appending)
    /// with the decoded entries keyed by plan index.
    ///
    /// Duplicate indices keep the *first* record (the run that
    /// completed first is no less valid, and first-wins makes the scan
    /// deterministic).
    pub fn resume(
        path: &Path,
        expected: &JournalMeta,
    ) -> Result<(Self, BTreeMap<usize, JournalEntry>), JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| JournalError::Io(format!("{}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| JournalError::Io(format!("{}: {e}", path.display())))?;

        let (meta, body_start) = decode_header(&bytes)?;
        if meta.fingerprint != expected.fingerprint
            || meta.seed != expected.seed
            || meta.runs != expected.runs
            || meta.shards != expected.shards
        {
            return Err(JournalError::PlanMismatch {
                found: meta.fingerprint,
                expected: expected.fingerprint,
            });
        }

        let mut entries = BTreeMap::new();
        let mut good_end = body_start;
        for (entry, end) in RecordScan::new(&bytes[body_start..]) {
            entries.entry(entry.index).or_insert(entry);
            good_end = body_start + end;
        }
        let records = entries.len() as u64;
        if good_end < bytes.len() {
            // Torn tail: the process died mid-append. Drop it; the
            // interrupted run re-executes.
            file.set_len(good_end as u64)
                .map_err(|e| JournalError::Io(format!("{}: {e}", path.display())))?;
        }
        file.seek(SeekFrom::Start(good_end as u64))
            .map_err(|e| JournalError::Io(format!("{}: {e}", path.display())))?;
        Ok((RunJournal { file, path: path.to_path_buf(), meta, records, degraded: false }, entries))
    }

    /// Append one completed run. Returns `true` if the record reached
    /// the file; on persistent I/O failure (after bounded
    /// retry-with-backoff) the journal degrades and returns `false` —
    /// the campaign continues without durability rather than dying.
    pub fn append(&mut self, index: usize, outcome: Outcome, fired: bool, payload: &[u8]) -> bool {
        if self.degraded {
            return false;
        }
        let mut body = Vec::with_capacity(10 + payload.len());
        wire::put_u64(&mut body, index as u64);
        body.push(outcome_code(outcome));
        body.push(fired as u8);
        body.extend_from_slice(payload);
        let mut frame = Vec::with_capacity(8 + body.len());
        wire::put_u32(&mut frame, body.len() as u32);
        wire::put_u32(&mut frame, crc32(&body));
        frame.extend_from_slice(&body);

        for (attempt, backoff_ms) in
            APPEND_BACKOFF_MS.iter().map(|&ms| Some(ms)).chain([None]).enumerate()
        {
            match self.file.write_all(&frame).and_then(|()| self.file.flush()) {
                Ok(()) => {
                    self.records += 1;
                    return true;
                }
                Err(_) if attempt < APPEND_BACKOFF_MS.len() => {
                    if let Some(ms) = backoff_ms {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
                Err(_) => break,
            }
        }
        self.degraded = true;
        false
    }

    /// Header metadata this journal was created/resumed with.
    pub fn meta(&self) -> &JournalMeta {
        &self.meta
    }

    /// Journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Complete records present (journaled before + appended since).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Has the journal given up after persistent append failures?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }
}

fn decode_header(bytes: &[u8]) -> Result<(JournalMeta, usize), JournalError> {
    if bytes.len() < 8 || &bytes[..8] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let mut r = wire::Reader::new(&bytes[8..]);
    let schema = r.u32().ok_or_else(|| JournalError::CorruptHeader("truncated".into()))?;
    if schema != JOURNAL_SCHEMA {
        return Err(JournalError::SchemaMismatch { found: schema, expected: JOURNAL_SCHEMA });
    }
    let corrupt = || JournalError::CorruptHeader("truncated".into());
    let fingerprint = r.u64().ok_or_else(corrupt)?;
    let seed = r.u64().ok_or_else(corrupt)?;
    let runs = r.u64().ok_or_else(corrupt)?;
    let shards = r.u32().ok_or_else(corrupt)?;
    let context = r.str().ok_or_else(corrupt)?;
    let crc_offset = bytes.len() - r.remaining();
    let stored_crc = r.u32().ok_or_else(corrupt)?;
    if crc32(&bytes[..crc_offset]) != stored_crc {
        return Err(JournalError::CorruptHeader("checksum mismatch".into()));
    }
    Ok((JournalMeta { fingerprint, seed, runs, shards, context }, bytes.len() - r.remaining()))
}

/// Iterator over complete, CRC-valid records in a journal body.
/// Yields `(entry, end_offset)` pairs; stops at the first torn or
/// corrupt frame.
struct RecordScan<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> RecordScan<'a> {
    fn new(body: &'a [u8]) -> Self {
        RecordScan { body, pos: 0 }
    }
}

impl Iterator for RecordScan<'_> {
    type Item = (JournalEntry, usize);

    fn next(&mut self) -> Option<Self::Item> {
        let frame = &self.body[self.pos..];
        if frame.len() < 8 {
            return None;
        }
        let len = u32::from_le_bytes(frame[..4].try_into().ok()?) as usize;
        let crc = u32::from_le_bytes(frame[4..8].try_into().ok()?);
        let payload = frame.get(8..8 + len)?;
        if crc32(payload) != crc {
            return None;
        }
        let mut r = wire::Reader::new(payload);
        let index = r.u64()? as usize;
        let outcome = outcome_from_code(r.u8()?)?;
        let fired = match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let rest = payload[payload.len() - r.remaining()..].to_vec();
        self.pos += 8 + len;
        Some((JournalEntry { index, outcome, fired, payload: rest }, self.pos))
    }
}

/// Merge per-worker journal segments of one distributed campaign into
/// a single whole-plan journal at `dest` (engine law 7's coordinator
/// half).
///
/// Every segment must carry a header identical to `expected` — all
/// workers executed shards of the *same* plan — otherwise the merge is
/// rejected with [`JournalError::PlanMismatch`] (or the segment's own
/// header error) and `dest` is left unwritten. Records are merged
/// index-addressed, first-wins on duplicates (matching
/// [`RunJournal::resume`]'s scan), written in index order, and the
/// count of distinct merged records is returned. Torn segment tails
/// are skipped exactly as resume would skip them: the missing runs
/// simply stay pending in the merged journal. `dest` must not name one
/// of the segments.
pub fn merge_segments(
    dest: &Path,
    expected: &JournalMeta,
    segments: &[PathBuf],
) -> Result<u64, JournalError> {
    let mut entries: BTreeMap<usize, JournalEntry> = BTreeMap::new();
    for segment in segments {
        let mut bytes = Vec::new();
        File::open(segment)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| JournalError::Io(format!("{}: {e}", segment.display())))?;
        let (meta, body_start) = decode_header(&bytes)?;
        if meta != *expected {
            return Err(JournalError::PlanMismatch {
                found: meta.fingerprint,
                expected: expected.fingerprint,
            });
        }
        for (entry, _) in RecordScan::new(&bytes[body_start..]) {
            entries.entry(entry.index).or_insert(entry);
        }
    }
    let mut merged = RunJournal::create(dest, expected.clone())?;
    for (index, entry) in &entries {
        if !merged.append(*index, entry.outcome, entry.fired, &entry.payload) {
            return Err(JournalError::Io(format!(
                "{}: append failed while merging segments",
                dest.display()
            )));
        }
    }
    Ok(entries.len() as u64)
}

/// Scan a journal file without resuming it: header metadata plus the
/// byte offset where each complete record *ends*. Offset `k` of the
/// returned vector is where a journal holding exactly `k + 1` records
/// would end — the truncation points the kill-point proptest uses to
/// emulate "died after k records" without spawning processes.
pub fn scan(path: &Path) -> Result<(JournalMeta, Vec<u64>), JournalError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| JournalError::Io(format!("{}: {e}", path.display())))?;
    let (meta, body_start) = decode_header(&bytes)?;
    let ends =
        RecordScan::new(&bytes[body_start..]).map(|(_, end)| (body_start + end) as u64).collect();
    Ok((meta, ends))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> JournalMeta {
        JournalMeta {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            seed: 42,
            runs: 8,
            shards: 2,
            context: "app=test grid=16".into(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffis-journal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("run.journal")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn create_append_resume_roundtrip() {
        let path = tmp("roundtrip");
        let mut j = RunJournal::create(&path, meta()).unwrap();
        assert!(j.append(3, Outcome::Sdc, true, b"payload-3"));
        assert!(j.append(0, Outcome::Benign, false, b"payload-0"));
        assert_eq!(j.records(), 2);
        drop(j);

        let (j, entries) = RunJournal::resume(&path, &meta()).unwrap();
        assert_eq!(j.records(), 2);
        assert!(!j.is_degraded());
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[&3],
            JournalEntry {
                index: 3,
                outcome: Outcome::Sdc,
                fired: true,
                payload: b"payload-3".to_vec()
            }
        );
        assert_eq!(entries[&0].outcome, Outcome::Benign);
        assert!(!entries[&0].fired);
    }

    #[test]
    fn resume_appends_after_existing_records() {
        let path = tmp("append-after");
        let mut j = RunJournal::create(&path, meta()).unwrap();
        j.append(0, Outcome::Benign, true, b"a");
        drop(j);
        let (mut j, _) = RunJournal::resume(&path, &meta()).unwrap();
        j.append(1, Outcome::Crash, true, b"b");
        drop(j);
        let (_, entries) = RunJournal::resume(&path, &meta()).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[&1].outcome, Outcome::Crash);
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let path = tmp("torn");
        let mut j = RunJournal::create(&path, meta()).unwrap();
        j.append(0, Outcome::Benign, true, b"complete");
        j.append(1, Outcome::Sdc, true, b"will-be-torn");
        drop(j);
        // Tear the last record: chop 3 bytes off the file.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (j, entries) = RunJournal::resume(&path, &meta()).unwrap();
        assert_eq!(entries.len(), 1, "torn record discarded");
        assert_eq!(j.records(), 1);
        // The tail was physically truncated, so a fresh append lands
        // on a clean boundary.
        drop(j);
        let (mut j, _) = RunJournal::resume(&path, &meta()).unwrap();
        j.append(1, Outcome::Detected, true, b"rewritten");
        drop(j);
        let (_, entries) = RunJournal::resume(&path, &meta()).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[&1].payload, b"rewritten");
    }

    #[test]
    fn corrupted_record_body_stops_the_scan() {
        let path = tmp("flip");
        let mut j = RunJournal::create(&path, meta()).unwrap();
        j.append(0, Outcome::Benign, true, b"aaaa");
        let end_of_first = std::fs::metadata(&path).unwrap().len();
        j.append(1, Outcome::Benign, true, b"bbbb");
        drop(j);
        // Flip a byte inside record 1's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_, entries) = RunJournal::resume(&path, &meta()).unwrap();
        assert_eq!(entries.len(), 1, "CRC failure discards the record");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), end_of_first);
    }

    #[test]
    fn plan_mismatch_is_rejected_with_clear_error() {
        let path = tmp("mismatch");
        RunJournal::create(&path, meta()).unwrap();
        let other = JournalMeta { fingerprint: 1, ..meta() };
        let err = RunJournal::resume(&path, &other).unwrap_err();
        assert!(matches!(err, JournalError::PlanMismatch { .. }));
        assert!(err.to_string().contains("does not match this campaign"));
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert_eq!(RunJournal::resume(&path, &meta()).unwrap_err(), JournalError::BadMagic);
    }

    #[test]
    fn truncated_header_is_corrupt_not_panic() {
        let path = tmp("shortheader");
        std::fs::write(&path, &encode_header(&meta())[..20]).unwrap();
        assert!(matches!(
            RunJournal::resume(&path, &meta()).unwrap_err(),
            JournalError::CorruptHeader(_)
        ));
    }

    #[test]
    fn header_crc_detects_metadata_flip() {
        let path = tmp("headerflip");
        RunJournal::create(&path, meta()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[14] ^= 0x01; // inside the fingerprint field
        std::fs::write(&path, &bytes).unwrap();
        let err = RunJournal::resume(&path, &meta()).unwrap_err();
        // Either the CRC catches it, or the flipped fingerprint
        // mismatches — both refuse the resume.
        assert!(matches!(err, JournalError::CorruptHeader(_) | JournalError::PlanMismatch { .. }));
    }

    #[test]
    fn scan_reports_record_end_offsets() {
        let path = tmp("scan");
        let mut j = RunJournal::create(&path, meta()).unwrap();
        j.append(0, Outcome::Benign, true, b"xx");
        j.append(1, Outcome::Sdc, true, b"yyyy");
        drop(j);
        let (m, ends) = scan(&path).unwrap();
        assert_eq!(m, meta());
        assert_eq!(ends.len(), 2);
        assert_eq!(*ends.last().unwrap(), std::fs::metadata(&path).unwrap().len());
        // Truncating at ends[0] leaves exactly one valid record —
        // the kill-point emulation the proptest uses.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(ends[0]).unwrap();
        drop(f);
        let (_, entries) = RunJournal::resume(&path, &meta()).unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn merge_segments_is_index_addressed_and_first_wins() {
        let dir = std::env::temp_dir().join(format!("ffis-journal-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let seg_a = dir.join("seg-a.journal");
        let seg_b = dir.join("seg-b.journal");
        let dest = dir.join("merged.journal");

        // Worker A covers [0, 4), worker B [4, 8) — plus a duplicate
        // of index 3 in B that the merge must ignore (first wins).
        let mut a = RunJournal::create(&seg_a, meta()).unwrap();
        for i in 0..4usize {
            a.append(i, Outcome::Benign, true, format!("a-{i}").as_bytes());
        }
        drop(a);
        let mut b = RunJournal::create(&seg_b, meta()).unwrap();
        b.append(3, Outcome::Crash, true, b"b-dup-3");
        for i in 4..8usize {
            b.append(i, Outcome::Sdc, false, format!("b-{i}").as_bytes());
        }
        drop(b);

        let merged = merge_segments(&dest, &meta(), &[seg_a.clone(), seg_b.clone()]).unwrap();
        assert_eq!(merged, 8);
        let (j, entries) = RunJournal::resume(&dest, &meta()).unwrap();
        assert_eq!(j.records(), 8);
        assert_eq!(entries.len(), 8);
        assert_eq!(entries[&3].payload, b"a-3", "first segment wins the duplicate index");
        assert_eq!(entries[&6].outcome, Outcome::Sdc);
        assert!(!entries[&6].fired);

        // A segment from a different plan poisons the whole merge.
        let alien = dir.join("alien.journal");
        let other = JournalMeta { fingerprint: 99, ..meta() };
        RunJournal::create(&alien, other).unwrap();
        let err = merge_segments(&dest, &meta(), &[seg_a, alien]).unwrap_err();
        assert!(matches!(err, JournalError::PlanMismatch { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_segments_skips_torn_tails() {
        let dir = std::env::temp_dir().join(format!("ffis-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let seg = dir.join("seg.journal");
        let mut j = RunJournal::create(&seg, meta()).unwrap();
        j.append(0, Outcome::Benign, true, b"ok");
        j.append(1, Outcome::Benign, true, b"torn");
        drop(j);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 2).unwrap();

        let dest = dir.join("merged.journal");
        assert_eq!(merge_segments(&dest, &meta(), &[seg]).unwrap(), 1);
        let (_, entries) = RunJournal::resume(&dest, &meta()).unwrap();
        assert_eq!(entries.len(), 1, "the torn run stays pending, not corrupted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wire_reader_is_bounds_checked() {
        let mut buf = Vec::new();
        wire::put_u64(&mut buf, 7);
        wire::put_opt_str(&mut buf, Some("hi"));
        wire::put_opt_str(&mut buf, None);
        let mut r = wire::Reader::new(&buf);
        assert_eq!(r.u64(), Some(7));
        assert_eq!(r.opt_str(), Some(Some("hi".into())));
        assert_eq!(r.opt_str(), Some(None));
        assert_eq!(r.u64(), None, "reads past the end return None");
    }
}
