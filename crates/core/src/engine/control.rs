//! Cooperative cancellation for campaign execution.
//!
//! A [`CancelToken`] is the engine's graceful-shutdown surface: the
//! executor checks it before starting each run (never mid-run), so a
//! cancelled campaign finishes the runs already in flight, flushes
//! every completed record to the journal, and reports the partial
//! tallies it has with an explicit [`CompletionStatus::Interrupted`].
//! The `repro` CLI wires Ctrl-C to one token shared by every campaign
//! of the invocation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Did the executor drain the whole plan, or was it cancelled first?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// Every scheduled run completed (executed or resumed).
    Complete,
    /// A cancel request stopped the campaign before the plan drained;
    /// tallies cover only the runs that finished.
    Interrupted,
}

impl CompletionStatus {
    /// Did the plan drain fully?
    pub fn is_complete(self) -> bool {
        matches!(self, CompletionStatus::Complete)
    }
}

/// Cooperative cancellation flag, checked by the executor between
/// runs.
///
/// Two trip mechanisms:
/// * [`CancelToken::cancel`] — external request (signal handler, test).
/// * [`CancelToken::after_runs`] — self-trip after N completed runs,
///   the deterministic stand-in for "killed mid-campaign" that the
///   resume-law tests and proptests use (no processes, no signals).
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    /// Remaining completions before self-trip; `u64::MAX` = disabled.
    countdown: AtomicU64,
}

impl CancelToken {
    /// A token that trips only on an explicit [`CancelToken::cancel`].
    pub fn new() -> Arc<Self> {
        Arc::new(CancelToken {
            cancelled: AtomicBool::new(false),
            countdown: AtomicU64::new(u64::MAX),
        })
    }

    /// A token that trips itself once `runs` runs have completed —
    /// deterministic mid-campaign interruption for tests.
    pub fn after_runs(runs: u64) -> Arc<Self> {
        Arc::new(CancelToken {
            cancelled: AtomicBool::new(runs == 0),
            countdown: AtomicU64::new(runs),
        })
    }

    /// Request cancellation. Idempotent; the executor stops *starting*
    /// runs, it never aborts one mid-flight.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Executor notification: one run finished. Drives the
    /// [`CancelToken::after_runs`] countdown; a plain token ignores it.
    pub fn note_run_complete(&self) {
        if self.countdown.load(Ordering::SeqCst) == u64::MAX {
            return;
        }
        let prev = self
            .countdown
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .unwrap_or(0);
        if prev <= 1 {
            self.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_token_trips_only_on_cancel() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        for _ in 0..100 {
            t.note_run_complete();
        }
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn countdown_token_trips_after_n_runs() {
        let t = CancelToken::after_runs(3);
        t.note_run_complete();
        t.note_run_complete();
        assert!(!t.is_cancelled());
        t.note_run_complete();
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_countdown_starts_cancelled() {
        assert!(CancelToken::after_runs(0).is_cancelled());
    }

    #[test]
    fn completion_status_predicates() {
        assert!(CompletionStatus::Complete.is_complete());
        assert!(!CompletionStatus::Interrupted.is_complete());
    }
}
