//! The sink layer: streaming tallies and bounded, seed-stable record
//! retention.

use crate::outcome::{Outcome, OutcomeTally};
use crate::rng::Rng;

/// Salt separating the reservoir's RNG stream from the campaign's
/// per-run injection streams (which derive from the same root seed).
const RESERVOIR_SALT: u64 = 0x5EED_0FC0_11EC_7000;

/// Which run indices retain their full record: `None` = keep all;
/// otherwise a boolean mask with exactly `min(keep, total)` bits set,
/// chosen by seeded reservoir sampling (Algorithm R) over
/// `0..total` — a pure function of `(seed, total, keep)`, so the kept
/// set is identical across reruns and parallel schedules (engine law
/// 3) and uniformly representative of the whole campaign.
pub fn reservoir_mask(seed: u64, total: usize, keep: Option<usize>) -> Option<Vec<bool>> {
    let keep = keep?;
    if keep >= total {
        return None;
    }
    let mut rng = Rng::seed_from(seed ^ RESERVOIR_SALT);
    let mut slots: Vec<usize> = (0..keep).collect();
    for i in keep..total {
        let j = rng.gen_range(i as u64 + 1) as usize;
        if j < keep {
            slots[j] = i;
        }
    }
    let mut mask = vec![false; total];
    for i in slots {
        mask[i] = true;
    }
    Some(mask)
}

/// Streaming aggregation of finished runs: per-shard
/// [`OutcomeTally`]s fold online, and retained payloads accumulate in
/// index-sorted order. The sink owns the one `no_fire` definition
/// (armed fault never executed *and* the run classified benign) every
/// frontend shares.
pub struct RunSink<R> {
    shard_tallies: Vec<OutcomeTally>,
    kept: Vec<(usize, R)>,
}

impl<R> RunSink<R> {
    /// Empty sink over `shards` shards.
    pub fn new(shards: usize) -> Self {
        RunSink { shard_tallies: vec![OutcomeTally::new(); shards.max(1)], kept: Vec::new() }
    }

    /// Fold one finished run: tally always; retain the payload only
    /// when the plan-time keep mask selected this index.
    pub fn absorb(
        &mut self,
        index: usize,
        shard: usize,
        outcome: Outcome,
        fired: bool,
        payload: Option<R>,
    ) {
        let tally = &mut self.shard_tallies[shard];
        if !fired && outcome == Outcome::Benign {
            // A crash before the fire point still counts — mount-time
            // effects are real.
            tally.no_fire += 1;
        }
        tally.record(outcome);
        if let Some(p) = payload {
            self.kept.push((index, p));
        }
    }

    /// Finish: kept payloads in index order, per-shard tallies, and
    /// the global tally merged across shards via
    /// [`OutcomeTally::merge`].
    pub fn finish(mut self) -> (Vec<R>, Vec<OutcomeTally>, OutcomeTally) {
        self.kept.sort_by_key(|(i, _)| *i);
        let kept = self.kept.into_iter().map(|(_, p)| p).collect();
        let mut total = OutcomeTally::new();
        for t in &self.shard_tallies {
            total.merge(t);
        }
        (kept, self.shard_tallies, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_all_is_no_mask() {
        assert!(reservoir_mask(1, 10, None).is_none());
        assert!(reservoir_mask(1, 10, Some(10)).is_none());
        assert!(reservoir_mask(1, 10, Some(99)).is_none());
    }

    #[test]
    fn mask_has_exactly_keep_bits_and_is_seed_stable() {
        for keep in [1usize, 3, 7] {
            let a = reservoir_mask(42, 50, Some(keep)).unwrap();
            let b = reservoir_mask(42, 50, Some(keep)).unwrap();
            assert_eq!(a, b, "same seed must choose the same reservoir");
            assert_eq!(a.iter().filter(|&&k| k).count(), keep);
            assert_eq!(a.len(), 50);
        }
        let c = reservoir_mask(43, 50, Some(7)).unwrap();
        assert_ne!(reservoir_mask(42, 50, Some(7)).unwrap(), c, "seed moves the reservoir");
    }

    #[test]
    fn sink_streams_tallies_and_bounds_records() {
        let mut sink: RunSink<&'static str> = RunSink::new(2);
        sink.absorb(2, 0, Outcome::Sdc, true, None);
        sink.absorb(0, 1, Outcome::Benign, false, Some("kept-0"));
        sink.absorb(1, 0, Outcome::Crash, true, Some("kept-1"));
        let (kept, shards, total) = sink.finish();
        assert_eq!(kept, vec!["kept-0", "kept-1"], "kept payloads sort into index order");
        assert_eq!(shards[0].sdc, 1);
        assert_eq!(shards[0].crash, 1);
        assert_eq!(shards[1].benign, 1);
        assert_eq!(shards[1].no_fire, 1, "no-fire law: unfired + benign");
        assert_eq!(total.total(), 3);
        assert_eq!(total.no_fire, 1);
    }
}
