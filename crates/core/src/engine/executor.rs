//! The executor layer: one serial/parallel fan-out shared by every
//! campaign frontend.

use rayon::prelude::*;

use super::planner::{ExecutionPlan, PlannedRun};
use super::sink::{reservoir_mask, RunSink};
use crate::outcome::{Outcome, OutcomeTally};

/// Execution knobs shared by every frontend.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Fan the schedule out across the rayon thread pool.
    pub parallel: bool,
    /// Retain at most this many full run records (`None` = all). The
    /// kept set is a seed-stable reservoir chosen at plan time;
    /// tallies always cover every run.
    pub keep_runs: Option<usize>,
    /// Seed the reservoir derives from (the campaign's root seed).
    pub keep_seed: u64,
}

/// What a frontend's run function hands back to the engine: the
/// classification the sink tallies, whether the armed fault fired (the
/// `no_fire` law input), and the full record — which the executor
/// drops *immediately, inside the worker* unless the reservoir keeps
/// this index, so per-run record memory never accumulates past the
/// keep bound.
pub struct RunRecord<R> {
    /// Classified outcome of the run.
    pub outcome: Outcome,
    /// Did the armed injector fire?
    pub fired: bool,
    /// The frontend's full run record.
    pub payload: R,
}

/// Aggregated engine output.
#[derive(Debug, Clone)]
pub struct EngineResult<R> {
    /// Retained run records, in run-index order; bounded by
    /// [`EngineConfig::keep_runs`].
    pub kept: Vec<R>,
    /// Per-shard tallies over *all* runs (kept or not).
    pub shard_tallies: Vec<OutcomeTally>,
    /// Global tally: the shard tallies merged.
    pub tally: OutcomeTally,
    /// Total runs executed.
    pub scheduled: usize,
}

/// Execute every planned run — in schedule order serially, fanned out
/// over the schedule in parallel — and stream the results through the
/// sink. `run_fn` receives each [`PlannedRun`] exactly once; results
/// land in index-addressed slots, so serial and parallel execution are
/// byte-identical (engine law 3).
pub fn execute<S, R, F>(plan: &ExecutionPlan<S>, cfg: &EngineConfig, run_fn: F) -> EngineResult<R>
where
    S: Sync,
    R: Send,
    F: Fn(&PlannedRun<S>) -> RunRecord<R> + Sync,
{
    let keep = reservoir_mask(cfg.keep_seed, plan.len(), cfg.keep_runs);
    let exec_one = |pos: &usize| -> (usize, usize, Outcome, bool, Option<R>) {
        let pr = &plan.runs()[*pos];
        let rec = run_fn(pr);
        // The keep decision happens here, in the worker: a dropped
        // record frees its buffers before the next run starts.
        let payload =
            if keep.as_ref().is_none_or(|m| m[pr.index]) { Some(rec.payload) } else { None };
        (pr.index, pr.shard, rec.outcome, rec.fired, payload)
    };
    let summaries: Vec<(usize, usize, Outcome, bool, Option<R>)> = if cfg.parallel {
        plan.schedule().par_iter().map(exec_one).collect()
    } else {
        plan.schedule().iter().map(exec_one).collect()
    };

    let mut sink = RunSink::new(plan.shards());
    let scheduled = summaries.len();
    for (index, shard, outcome, fired, payload) in summaries {
        sink.absorb(index, shard, outcome, fired, payload);
    }
    let (kept, shard_tallies, tally) = sink.finish();
    EngineResult { kept, shard_tallies, tally, scheduled }
}

#[cfg(test)]
mod tests {
    use super::super::planner::RunStrategy;
    use super::*;
    use crate::campaign::ReplayFallback;

    fn plan(n: usize) -> ExecutionPlan<u64> {
        let runs = (0..n)
            .map(|index| PlannedRun {
                index,
                shard: index % 3,
                // Reverse suffix lengths so the schedule differs from
                // index order — exercising slot addressing.
                strategy: if index % 2 == 0 {
                    RunStrategy::Replay { checkpoint: 0, suffix_len: n - index }
                } else {
                    RunStrategy::Rerun { reason: ReplayFallback::ProduceReadFault }
                },
                spec: index as u64 * 10,
            })
            .collect();
        ExecutionPlan::new(runs, 3)
    }

    fn run_one(pr: &PlannedRun<u64>) -> RunRecord<(usize, u64)> {
        let outcome = match pr.index % 4 {
            0 => Outcome::Benign,
            1 => Outcome::Detected,
            2 => Outcome::Sdc,
            _ => Outcome::Crash,
        };
        RunRecord { outcome, fired: !pr.index.is_multiple_of(5), payload: (pr.index, pr.spec) }
    }

    #[test]
    fn serial_equals_parallel_and_results_are_index_ordered() {
        let p = plan(23);
        let mk = |parallel| {
            execute(&p, &EngineConfig { parallel, keep_runs: None, keep_seed: 9 }, run_one)
        };
        let a = mk(false);
        let b = mk(true);
        assert_eq!(a.kept, b.kept);
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.shard_tallies, b.shard_tallies);
        assert_eq!(a.scheduled, 23);
        for (i, &(index, spec)) in a.kept.iter().enumerate() {
            assert_eq!(index, i, "kept results in run-index order");
            assert_eq!(spec, i as u64 * 10);
        }
    }

    #[test]
    fn bounded_keep_is_a_stable_subset_with_full_tallies() {
        let p = plan(40);
        let all =
            execute(&p, &EngineConfig { parallel: false, keep_runs: None, keep_seed: 7 }, run_one);
        let some = execute(
            &p,
            &EngineConfig { parallel: true, keep_runs: Some(6), keep_seed: 7 },
            run_one,
        );
        assert_eq!(some.kept.len(), 6);
        assert_eq!(some.tally, all.tally, "tallies cover dropped runs too");
        assert_eq!(some.shard_tallies, all.shard_tallies);
        // Kept records are a subsequence of the keep-all records.
        let mut cursor = all.kept.iter();
        for k in &some.kept {
            assert!(cursor.any(|a| a == k), "kept record {:?} missing from keep-all order", k);
        }
        // Stable across reruns and parallelism.
        let again = execute(
            &p,
            &EngineConfig { parallel: false, keep_runs: Some(6), keep_seed: 7 },
            run_one,
        );
        assert_eq!(some.kept, again.kept);
    }

    #[test]
    fn no_fire_law_is_applied_per_shard() {
        let p = plan(10);
        let out =
            execute(&p, &EngineConfig { parallel: false, keep_runs: None, keep_seed: 0 }, |pr| {
                RunRecord { outcome: Outcome::Benign, fired: pr.index != 0, payload: () }
            });
        // Run 0 (shard 0) is the only unfired benign run.
        assert_eq!(out.shard_tallies[0].no_fire, 1);
        assert_eq!(out.shard_tallies[1].no_fire, 0);
        assert_eq!(out.tally.no_fire, 1);
        assert_eq!(out.tally.benign, 10);
    }
}
