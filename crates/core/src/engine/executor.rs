//! The executor layer: one serial/parallel fan-out shared by every
//! campaign frontend.

use std::collections::HashMap;
use std::sync::atomic::AtomicUsize;
use std::sync::{Arc, Mutex};

use rayon::prelude::*;

use super::control::{CancelToken, CompletionStatus};
use super::planner::{ExecutionPlan, PlannedRun};
use super::sink::{reservoir_mask, RunSink};
use crate::outcome::{Outcome, OutcomeTally};

/// Execution knobs shared by every frontend.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Fan the schedule out across the rayon thread pool.
    pub parallel: bool,
    /// Retain at most this many full run records (`None` = all). The
    /// kept set is a seed-stable reservoir chosen at plan time;
    /// tallies always cover every run.
    pub keep_runs: Option<usize>,
    /// Seed the reservoir derives from (the campaign's root seed).
    pub keep_seed: u64,
}

/// What a frontend's run function hands back to the engine: the
/// classification the sink tallies, whether the armed fault fired (the
/// `no_fire` law input), and the full record — which the executor
/// drops *immediately, inside the worker* unless the reservoir keeps
/// this index, so per-run record memory never accumulates past the
/// keep bound.
pub struct RunRecord<R> {
    /// Classified outcome of the run.
    pub outcome: Outcome,
    /// Did the armed injector fire?
    pub fired: bool,
    /// The frontend's full run record.
    pub payload: R,
}

/// Aggregated engine output.
#[derive(Debug, Clone)]
pub struct EngineResult<R> {
    /// Retained run records, in run-index order; bounded by
    /// [`EngineConfig::keep_runs`].
    pub kept: Vec<R>,
    /// Per-shard tallies over *all* completed runs (kept or not).
    pub shard_tallies: Vec<OutcomeTally>,
    /// Global tally: the shard tallies merged.
    pub tally: OutcomeTally,
    /// Total runs in the plan.
    pub scheduled: usize,
    /// Runs actually executed by this invocation (excludes resumed
    /// and cancellation-skipped runs) — the resume-law tests assert
    /// journaled runs are *not* re-executed through this counter.
    pub executed: usize,
    /// Runs replayed from a journal at cost 0.
    pub resumed: usize,
    /// Did the plan drain fully, or did cancellation stop it early?
    pub status: CompletionStatus,
}

/// One run's contribution as it lands, streamed to
/// [`Durability::observe`] — the event feed the daemon's NDJSON
/// `/jobs/:id/stream` endpoint and live tally counters hang off.
///
/// Observation is a tap on the sink layer, not part of it: the engine
/// emits exactly one event per plan index (resumed indices included,
/// so a subscriber's event-derived tally matches the final
/// [`OutcomeTally`] even across a resume) and never lets the observer
/// alter what the sink absorbs.
pub struct RunEvent<'a, R> {
    /// Plan index of the run.
    pub index: usize,
    /// Shard the run belongs to.
    pub shard: usize,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Did the armed injector fire?
    pub fired: bool,
    /// `true` when the result was replayed from a journal at cost 0
    /// rather than executed by this invocation.
    pub resumed: bool,
    /// The frontend's full run record (borrowed; dropped records are
    /// observable even when the reservoir does not keep them).
    pub payload: &'a R,
}

/// Durability hooks for [`execute_durable`]: journaled results to
/// replay, a cooperative cancel token, a persistence callback, and a
/// run-event observer.
///
/// The engine stays serialization-agnostic — the frontend decodes its
/// journal into `resumed` and encodes each completed run inside
/// `persist` (typically appending to a `Mutex<RunJournal>`; the
/// parallel fan-out calls it from worker threads).
pub struct Durability<'a, R> {
    /// Journal-recovered results keyed by plan index. These indices
    /// are *not* re-executed: their results feed the sink directly,
    /// which is sound because a run's result depends only on its
    /// plan-time spec (engine laws 2 and 3).
    pub resumed: HashMap<usize, (Outcome, bool, R)>,
    /// Cooperative cancellation, checked before each run starts.
    pub cancel: Option<&'a CancelToken>,
    /// Called once per *executed* run, from the worker that ran it,
    /// before the run counts as complete.
    #[allow(clippy::type_complexity)]
    pub persist: Option<&'a (dyn Fn(usize, Outcome, bool, &R) + Sync)>,
    /// Called once per plan index: for resumed indices up front (in
    /// index order, before any pending run executes), then for each
    /// executed run from the worker that ran it, after `persist`.
    #[allow(clippy::type_complexity)]
    pub observe: Option<&'a (dyn Fn(RunEvent<'_, R>) + Sync)>,
    /// Restrict execution to the half-open plan-index range `[start,
    /// end)` — one fan-out worker's shard of a distributed campaign
    /// (engine law 7). Indices outside the range are neither executed
    /// nor resumed, and completion is judged against the range: the
    /// result is [`CompletionStatus::Complete`] when every *in-range*
    /// index landed, so a worker's partial sink reports honestly while
    /// the coordinator owns the whole-plan merge. `None` = the whole
    /// plan (the single-process default).
    pub index_range: Option<(usize, usize)>,
}

impl<R> Default for Durability<'_, R> {
    fn default() -> Self {
        Durability {
            resumed: HashMap::new(),
            cancel: None,
            persist: None,
            observe: None,
            index_range: None,
        }
    }
}

/// What one executed run contributes to the sink — `(index, shard,
/// outcome, fired, kept payload)` — or `None` when cancellation
/// tripped before the run started.
type RunSummary<R> = Option<(usize, usize, Outcome, bool, Option<R>)>;

/// Execute every planned run — in schedule order serially, fanned out
/// over the schedule in parallel — and stream the results through the
/// sink. `run_fn` receives each [`PlannedRun`] exactly once; results
/// land in index-addressed slots, so serial and parallel execution are
/// byte-identical (engine law 3).
pub fn execute<S, R, F>(plan: &ExecutionPlan<S>, cfg: &EngineConfig, run_fn: F) -> EngineResult<R>
where
    S: Sync,
    R: Send,
    F: Fn(&PlannedRun<S>) -> RunRecord<R> + Sync,
{
    execute_durable(plan, cfg, Durability::default(), run_fn)
}

/// [`execute`] with durability: resume journaled indices at cost 0,
/// persist each completed run, and stop early (between runs) on
/// cancellation — the engine's half of the resume law (engine law 6).
pub fn execute_durable<S, R, F>(
    plan: &ExecutionPlan<S>,
    cfg: &EngineConfig,
    durability: Durability<'_, R>,
    run_fn: F,
) -> EngineResult<R>
where
    S: Sync,
    R: Send,
    F: Fn(&PlannedRun<S>) -> RunRecord<R> + Sync,
{
    execute_durable_batched(
        plan,
        cfg,
        durability,
        |_| None::<()>,
        |_| None::<()>,
        |pr, _ctx| run_fn(pr),
    )
}

/// Shared per-batch context for runs grouped under one batch key.
///
/// The context is built lazily by whichever member executes first
/// (single-flighted under the slot mutex) and dropped as soon as the
/// last member finishes, so batch state never outlives its batch.
struct BatchSlot<B> {
    /// Plan indices of the member runs, in schedule order.
    members: Vec<usize>,
    /// `(built, context)`: `built` distinguishes "not yet attempted"
    /// from "attempted and declined" (`make_batch` returned `None`).
    ctx: Mutex<(bool, Option<Arc<B>>)>,
    /// Members still to finish; the context is freed at zero.
    remaining: AtomicUsize,
}

/// [`execute_durable`] with checkpoint-grouped batch execution
/// (engine law 9): runs whose `batch_key` matches share one lazily
/// built context (e.g. a replay batch that advances a trace
/// checkpoint once and forks per-target mini-snapshots), amortizing
/// per-checkpoint setup fork-once-replay-many.
///
/// Batching changes *nothing observable*: the schedule, the result
/// slots, and every run's record are identical to the unbatched
/// execution — `run_fn` must produce the same [`RunRecord`] whether
/// its context is `Some` (the batch engaged) or `None` (`batch_key`
/// returned `None`, `make_batch` declined, or the run is a batch of
/// one). Grouping is computed over the *pending* runs only, so a
/// resumed or range-restricted invocation groups exactly the runs it
/// will execute.
pub fn execute_durable_batched<S, R, B, BK, KF, MF, F>(
    plan: &ExecutionPlan<S>,
    cfg: &EngineConfig,
    durability: Durability<'_, R>,
    batch_key: KF,
    make_batch: MF,
    run_fn: F,
) -> EngineResult<R>
where
    S: Sync,
    R: Send,
    B: Send + Sync,
    BK: std::hash::Hash + Eq,
    KF: Fn(&PlannedRun<S>) -> Option<BK>,
    MF: Fn(&[usize]) -> Option<B> + Sync,
    F: Fn(&PlannedRun<S>, Option<&B>) -> RunRecord<R> + Sync,
{
    let Durability { mut resumed, cancel, persist, observe, index_range } = durability;
    let in_range =
        |index: usize| index_range.is_none_or(|(start, end)| index >= start && index < end);
    // A journal can only hold indices of the plan it fingerprints,
    // but a decoded index is still external input: drop any that
    // cannot address a slot rather than panicking on it. A fan-out
    // worker additionally ignores journaled results outside its shard
    // — they belong to (and are re-merged by) the coordinator.
    resumed.retain(|&index, _| index < plan.len() && in_range(index));

    // Resumed indices are observed first, in index order: a stream
    // subscriber sees the journal-recovered prefix before any newly
    // executed run, so its event-derived tally converges on the final
    // one regardless of where the previous process died.
    if let Some(observe) = observe {
        let mut journaled: Vec<usize> = resumed.keys().copied().collect();
        journaled.sort_unstable();
        for index in journaled {
            let (outcome, fired, payload) = &resumed[&index];
            observe(RunEvent {
                index,
                shard: plan.runs()[index].shard,
                outcome: *outcome,
                fired: *fired,
                resumed: true,
                payload,
            });
        }
    }
    let keep = reservoir_mask(cfg.keep_seed, plan.len(), cfg.keep_runs);
    let keep_index = |index: usize| keep.as_ref().is_none_or(|m| m[index]);

    // Pending = schedule order minus the journal-recovered indices,
    // restricted to this worker's shard of the plan.
    let pending: Vec<usize> = plan
        .schedule()
        .iter()
        .copied()
        .filter(|&pos| {
            let index = plan.runs()[pos].index;
            in_range(index) && !resumed.contains_key(&index)
        })
        .collect();

    // Group the pending runs into batch slots. Only groups of two or
    // more get a slot: a batch of one amortizes nothing, so it runs
    // the classic per-run path.
    let mut groups: HashMap<BK, Vec<usize>> = HashMap::new();
    for &pos in &pending {
        let pr = &plan.runs()[pos];
        if let Some(key) = batch_key(pr) {
            groups.entry(key).or_default().push(pr.index);
        }
    }
    let mut slots: Vec<BatchSlot<B>> = Vec::new();
    let mut slot_of: HashMap<usize, usize> = HashMap::new();
    for (_, members) in groups {
        if members.len() < 2 {
            continue;
        }
        for &index in &members {
            slot_of.insert(index, slots.len());
        }
        let remaining = AtomicUsize::new(members.len());
        slots.push(BatchSlot { members, ctx: Mutex::new((false, None)), remaining });
    }

    // `None` = skipped because cancellation tripped before the run
    // started; the run is simply absent from the sink.
    let exec_one = |pos: &usize| -> Option<(usize, usize, Outcome, bool, Option<R>)> {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            return None;
        }
        let pr = &plan.runs()[*pos];
        let slot = slot_of.get(&pr.index).map(|&si| &slots[si]);
        let ctx: Option<Arc<B>> = slot.and_then(|slot| {
            let mut g = slot.ctx.lock().unwrap_or_else(|e| e.into_inner());
            if !g.0 {
                g.0 = true;
                g.1 = make_batch(&slot.members).map(Arc::new);
            }
            g.1.clone()
        });
        let rec = run_fn(pr, ctx.as_deref());
        drop(ctx);
        if let Some(slot) = slot {
            // Last member out frees the batch context immediately
            // instead of letting it live to the end of the plan.
            if slot.remaining.fetch_sub(1, std::sync::atomic::Ordering::AcqRel) == 1 {
                slot.ctx.lock().unwrap_or_else(|e| e.into_inner()).1 = None;
            }
        }
        if let Some(persist) = persist {
            persist(pr.index, rec.outcome, rec.fired, &rec.payload);
        }
        if let Some(observe) = observe {
            observe(RunEvent {
                index: pr.index,
                shard: pr.shard,
                outcome: rec.outcome,
                fired: rec.fired,
                resumed: false,
                payload: &rec.payload,
            });
        }
        if let Some(cancel) = cancel {
            cancel.note_run_complete();
        }
        // The keep decision happens here, in the worker: a dropped
        // record frees its buffers before the next run starts.
        let payload = if keep_index(pr.index) { Some(rec.payload) } else { None };
        Some((pr.index, pr.shard, rec.outcome, rec.fired, payload))
    };
    let summaries: Vec<RunSummary<R>> = if cfg.parallel {
        pending.par_iter().map(exec_one).collect()
    } else {
        pending.iter().map(exec_one).collect()
    };

    let mut sink = RunSink::new(plan.shards());
    let scheduled = plan.len();
    let resumed_count = resumed.len();
    for (index, (outcome, fired, payload)) in resumed {
        let shard = plan.runs()[index].shard;
        sink.absorb(index, shard, outcome, fired, keep_index(index).then_some(payload));
    }
    let mut executed = 0usize;
    for (index, shard, outcome, fired, payload) in summaries.into_iter().flatten() {
        executed += 1;
        sink.absorb(index, shard, outcome, fired, payload);
    }
    // Completion is judged against what this invocation was asked to
    // cover: the whole plan, or one worker's index range.
    let target = match index_range {
        Some((start, end)) => end.min(plan.len()).saturating_sub(start.min(plan.len())),
        None => scheduled,
    };
    let status = if executed + resumed_count == target {
        CompletionStatus::Complete
    } else {
        CompletionStatus::Interrupted
    };
    let (kept, shard_tallies, tally) = sink.finish();
    EngineResult { kept, shard_tallies, tally, scheduled, executed, resumed: resumed_count, status }
}

#[cfg(test)]
mod tests {
    use super::super::planner::RunStrategy;
    use super::*;
    use crate::campaign::ReplayFallback;

    fn plan(n: usize) -> ExecutionPlan<u64> {
        let runs = (0..n)
            .map(|index| PlannedRun {
                index,
                shard: index % 3,
                // Reverse suffix lengths so the schedule differs from
                // index order — exercising slot addressing.
                strategy: if index % 2 == 0 {
                    RunStrategy::Replay { checkpoint: 0, suffix_len: n - index }
                } else {
                    RunStrategy::Rerun { reason: ReplayFallback::ProduceReadFault }
                },
                spec: index as u64 * 10,
            })
            .collect();
        ExecutionPlan::new(runs, 3)
    }

    fn run_one(pr: &PlannedRun<u64>) -> RunRecord<(usize, u64)> {
        let outcome = match pr.index % 4 {
            0 => Outcome::Benign,
            1 => Outcome::Detected,
            2 => Outcome::Sdc,
            _ => Outcome::Crash,
        };
        RunRecord { outcome, fired: !pr.index.is_multiple_of(5), payload: (pr.index, pr.spec) }
    }

    #[test]
    fn serial_equals_parallel_and_results_are_index_ordered() {
        let p = plan(23);
        let mk = |parallel| {
            execute(&p, &EngineConfig { parallel, keep_runs: None, keep_seed: 9 }, run_one)
        };
        let a = mk(false);
        let b = mk(true);
        assert_eq!(a.kept, b.kept);
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.shard_tallies, b.shard_tallies);
        assert_eq!(a.scheduled, 23);
        for (i, &(index, spec)) in a.kept.iter().enumerate() {
            assert_eq!(index, i, "kept results in run-index order");
            assert_eq!(spec, i as u64 * 10);
        }
    }

    #[test]
    fn bounded_keep_is_a_stable_subset_with_full_tallies() {
        let p = plan(40);
        let all =
            execute(&p, &EngineConfig { parallel: false, keep_runs: None, keep_seed: 7 }, run_one);
        let some = execute(
            &p,
            &EngineConfig { parallel: true, keep_runs: Some(6), keep_seed: 7 },
            run_one,
        );
        assert_eq!(some.kept.len(), 6);
        assert_eq!(some.tally, all.tally, "tallies cover dropped runs too");
        assert_eq!(some.shard_tallies, all.shard_tallies);
        // Kept records are a subsequence of the keep-all records.
        let mut cursor = all.kept.iter();
        for k in &some.kept {
            assert!(cursor.any(|a| a == k), "kept record {:?} missing from keep-all order", k);
        }
        // Stable across reruns and parallelism.
        let again = execute(
            &p,
            &EngineConfig { parallel: false, keep_runs: Some(6), keep_seed: 7 },
            run_one,
        );
        assert_eq!(some.kept, again.kept);
    }

    #[test]
    fn resumed_indices_are_not_reexecuted_and_results_match() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let p = plan(23);
        let cfg = EngineConfig { parallel: false, keep_runs: None, keep_seed: 9 };
        let full = execute(&p, &cfg, run_one);
        assert_eq!(full.status, CompletionStatus::Complete);
        assert_eq!(full.executed, 23);
        assert_eq!(full.resumed, 0);

        // Pretend runs 0..11 were journaled by a previous process.
        let resumed: HashMap<usize, (Outcome, bool, (usize, u64))> = p.runs()[..11]
            .iter()
            .map(|pr| {
                let rec = run_one(pr);
                (pr.index, (rec.outcome, rec.fired, rec.payload))
            })
            .collect();
        let calls = AtomicUsize::new(0);
        let out = execute_durable(
            &p,
            &cfg,
            Durability { resumed, cancel: None, persist: None, observe: None, index_range: None },
            |pr| {
                calls.fetch_add(1, Ordering::SeqCst);
                assert!(pr.index >= 11, "journaled index {} re-executed", pr.index);
                run_one(pr)
            },
        );
        assert_eq!(calls.load(Ordering::SeqCst), 12);
        assert_eq!(out.executed, 12);
        assert_eq!(out.resumed, 11);
        assert_eq!(out.status, CompletionStatus::Complete);
        assert_eq!(out.kept, full.kept, "resume law: byte-identical kept records");
        assert_eq!(out.tally, full.tally);
        assert_eq!(out.shard_tallies, full.shard_tallies);
    }

    #[test]
    fn cancellation_stops_between_runs_with_partial_tallies() {
        let p = plan(20);
        let cancel = super::super::control::CancelToken::after_runs(7);
        let out = execute_durable(
            &p,
            &EngineConfig { parallel: false, keep_runs: None, keep_seed: 1 },
            Durability {
                resumed: HashMap::new(),
                cancel: Some(&cancel),
                persist: None,
                observe: None,
                index_range: None,
            },
            run_one,
        );
        assert_eq!(out.status, CompletionStatus::Interrupted);
        assert_eq!(out.executed, 7);
        assert_eq!(out.tally.total(), 7, "tallies cover only completed runs");
        assert_eq!(out.scheduled, 20);
    }

    #[test]
    fn persist_sees_every_executed_run_exactly_once() {
        use std::sync::Mutex;
        let p = plan(15);
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let persist = |index: usize, _o: Outcome, _f: bool, _r: &(usize, u64)| {
            seen.lock().unwrap().push(index);
        };
        let out = execute_durable(
            &p,
            &EngineConfig { parallel: true, keep_runs: Some(3), keep_seed: 5 },
            Durability {
                resumed: HashMap::new(),
                cancel: None,
                persist: Some(&persist),
                observe: None,
                index_range: None,
            },
            run_one,
        );
        assert_eq!(out.executed, 15);
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn observe_sees_every_index_once_resumed_prefix_first() {
        use std::sync::Mutex;
        let p = plan(17);
        let cfg = EngineConfig { parallel: true, keep_runs: Some(4), keep_seed: 3 };
        // Runs 0..6 journaled; the rest execute live.
        let resumed: HashMap<usize, (Outcome, bool, (usize, u64))> = p.runs()[..6]
            .iter()
            .map(|pr| {
                let rec = run_one(pr);
                (pr.index, (rec.outcome, rec.fired, rec.payload))
            })
            .collect();
        let events: Mutex<Vec<(usize, bool, u64)>> = Mutex::new(Vec::new());
        let observe = |ev: RunEvent<'_, (usize, u64)>| {
            assert_eq!(ev.payload.0, ev.index, "payload borrowed for the right index");
            assert_eq!(ev.shard, ev.index % 3);
            events.lock().unwrap().push((ev.index, ev.resumed, ev.payload.1));
        };
        let out = execute_durable(
            &p,
            &cfg,
            Durability {
                resumed,
                cancel: None,
                persist: None,
                observe: Some(&observe),
                index_range: None,
            },
            run_one,
        );
        assert_eq!(out.executed, 11);
        assert_eq!(out.resumed, 6);
        let events = events.into_inner().unwrap();
        assert_eq!(events.len(), 17, "one event per plan index, kept or dropped");
        // Journal-recovered prefix first, in index order.
        let head: Vec<usize> = events[..6].iter().map(|e| e.0).collect();
        assert_eq!(head, (0..6).collect::<Vec<_>>());
        assert!(events[..6].iter().all(|e| e.1), "prefix events flagged resumed");
        assert!(events[6..].iter().all(|e| !e.1), "live events flagged executed");
        let mut indices: Vec<usize> = events.iter().map(|e| e.0).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..17).collect::<Vec<_>>());
        // Event-derived tallies equal the sink's (observation is a tap,
        // not a filter).
        let mut tally = OutcomeTally::default();
        for &(index, _, _) in &events {
            let rec = run_one(&p.runs()[index]);
            if !rec.fired && rec.outcome == Outcome::Benign {
                tally.no_fire += 1;
            }
            tally.record(rec.outcome);
        }
        assert_eq!(tally, out.tally);
    }

    #[test]
    fn out_of_range_resumed_indices_are_ignored() {
        let p = plan(5);
        let mut resumed = HashMap::new();
        resumed.insert(99usize, (Outcome::Benign, true, (99usize, 0u64)));
        let out = execute_durable(
            &p,
            &EngineConfig { parallel: false, keep_runs: None, keep_seed: 0 },
            Durability { resumed, cancel: None, persist: None, observe: None, index_range: None },
            run_one,
        );
        assert_eq!(out.resumed, 0);
        assert_eq!(out.executed, 5);
        assert_eq!(out.status, CompletionStatus::Complete);
    }

    #[test]
    fn index_range_executes_only_its_shard_and_completes_relative_to_it() {
        use super::super::planner::index_ranges;
        use std::sync::Mutex;
        let p = plan(23);
        let cfg = EngineConfig { parallel: false, keep_runs: None, keep_seed: 9 };
        let full = execute(&p, &cfg, run_one);

        // Run each worker's range in isolation, journaling via persist.
        type SegmentMap = HashMap<usize, (Outcome, bool, (usize, u64))>;
        let journal: Mutex<SegmentMap> = Mutex::new(HashMap::new());
        for range in index_ranges(p.len(), 3) {
            let persist = |index: usize, o: Outcome, f: bool, r: &(usize, u64)| {
                journal.lock().unwrap().insert(index, (o, f, *r));
            };
            let out = execute_durable(
                &p,
                &cfg,
                Durability {
                    resumed: HashMap::new(),
                    cancel: None,
                    persist: Some(&persist),
                    observe: None,
                    index_range: Some(range),
                },
                |pr| {
                    assert!(
                        pr.index >= range.0 && pr.index < range.1,
                        "index {} escaped range {range:?}",
                        pr.index
                    );
                    run_one(pr)
                },
            );
            assert_eq!(out.status, CompletionStatus::Complete, "complete relative to the range");
            assert_eq!(out.executed, range.1 - range.0);
            assert_eq!(out.resumed, 0);
            assert_eq!(
                out.tally.total() as usize,
                range.1 - range.0,
                "partial tally covers the shard"
            );
        }

        // The coordinator's merge: feed every worker's journaled
        // results back as resumed — nothing re-executes, and the
        // result is byte-identical to the single-process run (law 7).
        let resumed = journal.into_inner().unwrap();
        assert_eq!(resumed.len(), 23, "ranges partition the plan exactly");
        let out = execute_durable(
            &p,
            &cfg,
            Durability { resumed, cancel: None, persist: None, observe: None, index_range: None },
            |pr| panic!("index {} re-executed after distributed merge", pr.index),
        );
        assert_eq!(out.executed, 0);
        assert_eq!(out.resumed, 23);
        assert_eq!(out.status, CompletionStatus::Complete);
        assert_eq!(out.kept, full.kept);
        assert_eq!(out.tally, full.tally);
        assert_eq!(out.shard_tallies, full.shard_tallies);
    }

    #[test]
    fn batched_execution_is_byte_identical_and_frees_contexts() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let p = plan(24);
        let cfg = EngineConfig { parallel: true, keep_runs: None, keep_seed: 9 };
        let unbatched = execute(&p, &cfg, run_one);

        let builds = AtomicUsize::new(0);
        let with_ctx = AtomicUsize::new(0);
        let out = execute_durable_batched(
            &p,
            &cfg,
            Durability::default(),
            |pr| pr.strategy.batch_key().map(|ck| (pr.shard, ck)),
            |members: &[usize]| {
                builds.fetch_add(1, Ordering::SeqCst);
                assert!(members.len() >= 2, "singleton groups never build a context");
                Some(members.to_vec())
            },
            |pr, ctx: Option<&Vec<usize>>| {
                if let Some(members) = ctx {
                    with_ctx.fetch_add(1, Ordering::SeqCst);
                    assert!(members.contains(&pr.index), "context shared with the right batch");
                }
                run_one(pr)
            },
        );
        assert_eq!(out.kept, unbatched.kept, "law 9: batching is invisible to results");
        assert_eq!(out.tally, unbatched.tally);
        assert_eq!(out.shard_tallies, unbatched.shard_tallies);
        // plan(24): even indices are Replay{checkpoint: 0} split over
        // shards 0/1/2 by index%3 — shards 0 and 2 hold the even
        // indices (multiples of 6, and 4 mod 6), shard 1 none… check
        // via the actual grouping: every replay run saw a context and
        // each (shard, checkpoint) group built exactly once.
        let replay_runs =
            p.runs().iter().filter(|r| matches!(r.strategy, RunStrategy::Replay { .. })).count();
        let mut groups: HashMap<(usize, usize), usize> = HashMap::new();
        for r in p.runs() {
            if let Some(ck) = r.strategy.batch_key() {
                *groups.entry((r.shard, ck)).or_default() += 1;
            }
        }
        let expect_ctx: usize = groups.values().filter(|&&n| n >= 2).sum();
        let expect_builds = groups.values().filter(|&&n| n >= 2).count();
        assert_eq!(with_ctx.load(Ordering::SeqCst), expect_ctx);
        assert_eq!(builds.load(Ordering::SeqCst), expect_builds);
        assert!(expect_ctx > 0 && expect_ctx <= replay_runs);
    }

    #[test]
    fn batching_respects_resume_and_declined_contexts() {
        let p = plan(20);
        let cfg = EngineConfig { parallel: false, keep_runs: None, keep_seed: 2 };
        let full = execute(&p, &cfg, run_one);
        // Journal half the runs; the batch grouping must only cover
        // what actually executes, and a declining make_batch leaves
        // every run on the classic path.
        let resumed: HashMap<usize, (Outcome, bool, (usize, u64))> = p
            .runs()
            .iter()
            .filter(|pr| pr.index % 2 == 1 || pr.index < 6)
            .map(|pr| {
                let rec = run_one(pr);
                (pr.index, (rec.outcome, rec.fired, rec.payload))
            })
            .collect();
        let expected_live: Vec<usize> = (0..20).filter(|i| i % 2 == 0 && *i >= 6).collect();
        let out = execute_durable_batched(
            &p,
            &cfg,
            Durability { resumed, ..Durability::default() },
            |pr| pr.strategy.batch_key(),
            |members: &[usize]| {
                for m in members {
                    assert!(expected_live.contains(m), "batch covers only pending runs");
                }
                None::<()>
            },
            |pr, ctx| {
                assert!(ctx.is_none(), "declined context reaches runs as None");
                assert!(expected_live.contains(&pr.index));
                run_one(pr)
            },
        );
        assert_eq!(out.kept, full.kept);
        assert_eq!(out.tally, full.tally);
        assert_eq!(out.resumed, 20 - expected_live.len());
    }

    #[test]
    fn no_fire_law_is_applied_per_shard() {
        let p = plan(10);
        let out =
            execute(&p, &EngineConfig { parallel: false, keep_runs: None, keep_seed: 0 }, |pr| {
                RunRecord { outcome: Outcome::Benign, fired: pr.index != 0, payload: () }
            });
        // Run 0 (shard 0) is the only unfired benign run.
        assert_eq!(out.shard_tallies[0].no_fire, 1);
        assert_eq!(out.shard_tallies[1].no_fire, 0);
        assert_eq!(out.tally.no_fire, 1);
        assert_eq!(out.tally.benign, 10);
    }
}
