//! The fault generator (paper §III-C).
//!
//! "The fault generator reads the configuration specified by the user
//! to produce a fault signature, which includes the fault model, the
//! file system primitive where the fault would be injected for that
//! fault model, and the choice of the feature associated with the
//! fault model."
//!
//! [`FaultConfig`] is the user-facing, string-friendly configuration
//! (what a config file or CLI provides); [`FaultConfig::build`] turns
//! it into a validated [`FaultSignature`].

use ffis_vfs::Primitive;

use crate::fault::{FaultModel, FaultSignature, ShornFill, ShornKeep, TargetFilter};

/// User configuration for one fault signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Fault model name: `"bitflip"`, `"shorn"`, `"dropped"` (also
    /// accepts the paper's display names and `BF`/`SW`/`DW` labels).
    /// The read-site spellings — `"SR"`/`"shorn read"`,
    /// `"DR"`/`"dropped read"` — select the same torn/dropped models
    /// *and* default the primitive to `FFIS_read`.
    pub model: String,
    /// BIT FLIP: number of consecutive bits (default 2).
    pub bits: Option<u32>,
    /// SHORN WRITE: `"3/8"` or `"7/8"` (default `"7/8"`).
    pub keep: Option<String>,
    /// SHORN WRITE: torn-region fill `"stale"`, `"zeros"`, `"random"`
    /// (default `"stale"`).
    pub fill: Option<String>,
    /// Target primitive (default `"write"`).
    pub primitive: Option<String>,
    /// Restrict eligible invocations to paths containing this substring.
    pub path_contains: Option<String>,
    /// Restrict eligible invocations to paths with this suffix.
    pub path_suffix: Option<String>,
}

impl FaultConfig {
    /// Minimal config: just a model name, paper defaults for the rest.
    pub fn model(name: &str) -> Self {
        FaultConfig {
            model: name.to_string(),
            bits: None,
            keep: None,
            fill: None,
            primitive: None,
            path_contains: None,
            path_suffix: None,
        }
    }

    /// Scope the signature to paths containing `s`.
    pub fn scoped_to(mut self, s: &str) -> Self {
        self.path_contains = Some(s.to_string());
        self
    }

    /// Override BIT FLIP width.
    pub fn with_bits(mut self, bits: u32) -> Self {
        self.bits = Some(bits);
        self
    }

    /// Build and validate the fault signature.
    pub fn build(&self) -> Result<FaultSignature, String> {
        // Read-site model spellings imply the read primitive (unless
        // one was named explicitly).
        let mut read_site_model = false;
        let norm = self.model.to_ascii_lowercase().replace([' ', '_', '-'], "");
        let model = match norm.as_str() {
            "bitflip" | "bf" => FaultModel::BitFlip { bits: self.bits.unwrap_or(2) },
            "shorn" | "shornwrite" | "sw" | "shornread" | "sr" => {
                read_site_model = matches!(norm.as_str(), "shornread" | "sr");
                let keep = match self.keep.as_deref().unwrap_or("7/8") {
                    "3/8" => ShornKeep::ThreeEighths,
                    "7/8" => ShornKeep::SevenEighths,
                    other => return Err(format!("unknown shorn keep fraction '{}'", other)),
                };
                let fill = match self.fill.as_deref().unwrap_or("stale") {
                    "stale" => ShornFill::Stale,
                    "zeros" => ShornFill::Zeros,
                    "random" => ShornFill::Random,
                    other => return Err(format!("unknown shorn fill '{}'", other)),
                };
                FaultModel::ShornWrite { keep, fill }
            }
            "dropped" | "droppedwrite" | "dw" => FaultModel::DroppedWrite,
            "droppedread" | "dr" => {
                read_site_model = true;
                FaultModel::DroppedWrite
            }
            other => return Err(format!("unknown fault model '{}'", other)),
        };
        let default_primitive = if read_site_model { "read" } else { "write" };
        let primitive = match self
            .primitive
            .as_deref()
            .unwrap_or(default_primitive)
            .to_ascii_lowercase()
            .trim_start_matches("ffis_")
        {
            "write" | "pwrite" => Primitive::Write,
            "read" | "pread" => Primitive::Read,
            "mknod" => Primitive::Mknod,
            "chmod" => Primitive::Chmod,
            "truncate" => Primitive::Truncate,
            other => return Err(format!("'{}' is not an injectable primitive", other)),
        };
        let target = match (&self.path_contains, &self.path_suffix) {
            (Some(_), Some(_)) => {
                return Err("path_contains and path_suffix are mutually exclusive".into())
            }
            (Some(s), None) => TargetFilter::PathContains(s.clone()),
            (None, Some(s)) => TargetFilter::PathSuffix(s.clone()),
            (None, None) => TargetFilter::Any,
        };
        let sig = FaultSignature { model, primitive, target };
        sig.validate()?;
        Ok(sig)
    }
}

/// The three paper-default signatures, in Figure 7 order.
pub fn paper_signatures() -> [FaultSignature; 3] {
    [
        FaultSignature::on_write(FaultModel::bit_flip()),
        FaultSignature::on_write(FaultModel::shorn_write()),
        FaultSignature::on_write(FaultModel::dropped_write()),
    ]
}

/// The read-site mirror of [`paper_signatures`]: BF / SR / DR on
/// `FFIS_read`, in the same model order.
pub fn read_signatures() -> [FaultSignature; 3] {
    [
        FaultSignature::on_read(FaultModel::bit_flip()),
        FaultSignature::on_read(FaultModel::shorn_write()),
        FaultSignature::on_read(FaultModel::dropped_write()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bitflip() {
        let sig = FaultConfig::model("bitflip").build().unwrap();
        assert_eq!(sig.model, FaultModel::BitFlip { bits: 2 });
        assert_eq!(sig.primitive, Primitive::Write);
        assert_eq!(sig.target, TargetFilter::Any);
    }

    #[test]
    fn accepts_paper_labels_and_spellings() {
        for name in ["BF", "bf", "BIT FLIP", "bit_flip", "bit-flip"] {
            let sig = FaultConfig::model(name).build().unwrap();
            assert!(matches!(sig.model, FaultModel::BitFlip { bits: 2 }), "{}", name);
        }
        for name in ["SW", "shorn", "SHORN WRITE"] {
            let sig = FaultConfig::model(name).build().unwrap();
            assert!(matches!(sig.model, FaultModel::ShornWrite { .. }), "{}", name);
        }
        for name in ["DW", "dropped", "DROPPED WRITE"] {
            let sig = FaultConfig::model(name).build().unwrap();
            assert!(matches!(sig.model, FaultModel::DroppedWrite), "{}", name);
        }
    }

    #[test]
    fn bits_override() {
        let sig = FaultConfig::model("bitflip").with_bits(4).build().unwrap();
        assert_eq!(sig.model, FaultModel::BitFlip { bits: 4 });
    }

    #[test]
    fn shorn_features() {
        let mut c = FaultConfig::model("shorn");
        c.keep = Some("3/8".into());
        c.fill = Some("zeros".into());
        let sig = c.build().unwrap();
        assert_eq!(
            sig.model,
            FaultModel::ShornWrite { keep: ShornKeep::ThreeEighths, fill: ShornFill::Zeros }
        );
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(FaultConfig::model("meteor").build().is_err());
        let mut bad_keep = FaultConfig::model("shorn");
        bad_keep.keep = Some("5/8".into());
        assert!(bad_keep.build().is_err());
        let mut bad_fill = FaultConfig::model("shorn");
        bad_fill.fill = Some("lava".into());
        assert!(bad_fill.build().is_err());
        let mut bad_prim = FaultConfig::model("bitflip");
        bad_prim.primitive = Some("open".into());
        assert!(bad_prim.build().is_err());
        let mut both = FaultConfig::model("bitflip");
        both.path_contains = Some("a".into());
        both.path_suffix = Some("b".into());
        assert!(both.build().is_err());
        let zero = FaultConfig::model("bitflip").with_bits(0);
        assert!(zero.build().is_err());
    }

    #[test]
    fn primitive_spellings() {
        for (s, p) in [
            ("write", Primitive::Write),
            ("FFIS_write", Primitive::Write),
            ("pwrite", Primitive::Write),
            ("mknod", Primitive::Mknod),
            ("chmod", Primitive::Chmod),
            ("truncate", Primitive::Truncate),
        ] {
            let mut c = FaultConfig::model("bitflip");
            c.primitive = Some(s.into());
            assert_eq!(c.build().unwrap().primitive, p, "{}", s);
        }
    }

    #[test]
    fn scoped_filter() {
        let sig = FaultConfig::model("dropped").scoped_to("plt").build().unwrap();
        assert_eq!(sig.target, TargetFilter::PathContains("plt".into()));
        let mut c = FaultConfig::model("dropped");
        c.path_suffix = Some(".h5".into());
        assert_eq!(c.build().unwrap().target, TargetFilter::PathSuffix(".h5".into()));
    }

    #[test]
    fn read_site_spellings_imply_read_primitive() {
        for name in ["SR", "shorn read", "shorn_read"] {
            let sig = FaultConfig::model(name).build().unwrap();
            assert!(matches!(sig.model, FaultModel::ShornWrite { .. }), "{}", name);
            assert_eq!(sig.primitive, Primitive::Read, "{}", name);
            assert_eq!(sig.label(), "SR");
        }
        for name in ["DR", "dropped read"] {
            let sig = FaultConfig::model(name).build().unwrap();
            assert_eq!(sig.model, FaultModel::DroppedWrite, "{}", name);
            assert_eq!(sig.primitive, Primitive::Read, "{}", name);
            assert_eq!(sig.label(), "DR");
        }
        // Explicit primitive choice beats the spelling's default.
        let mut c = FaultConfig::model("bitflip");
        c.primitive = Some("read".into());
        assert_eq!(c.build().unwrap().primitive, Primitive::Read);
        let mut c = FaultConfig::model("SR");
        c.primitive = Some("write".into());
        assert_eq!(c.build().unwrap().primitive, Primitive::Write);
    }

    #[test]
    fn read_signatures_order() {
        let sigs = read_signatures();
        assert_eq!(sigs[0].label(), "BF");
        assert_eq!(sigs[1].label(), "SR");
        assert_eq!(sigs[2].label(), "DR");
        for s in &sigs {
            assert!(s.validate().is_ok());
            assert_eq!(s.primitive, Primitive::Read);
        }
    }

    #[test]
    fn paper_signatures_order() {
        let sigs = paper_signatures();
        assert_eq!(sigs[0].model.label(), "BF");
        assert_eq!(sigs[1].model.label(), "SW");
        assert_eq!(sigs[2].model.label(), "DW");
        for s in &sigs {
            assert!(s.validate().is_ok());
        }
    }
}
