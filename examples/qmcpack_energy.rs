//! Run the QMCPACK-like helium workload: VMC → walker checkpoint →
//! DMC → QMCA analysis, then show what a SHORN WRITE in each output
//! file does to the reported energy. Under the two-phase `FaultApp`
//! contract the VMC→DMC handoff lives in `analyze`: when the on-disk
//! walker checkpoint differs from the golden one, DMC restarts from
//! the stored (corrupted) configuration — so `app.run` below models
//! exactly the propagation path the paper injects into.
//!
//! ```sh
//! cargo run --release --example qmcpack_energy
//! ```

use ffis_core::{ArmedInjector, FaultApp, FaultModel, FaultSignature, TargetFilter};
use ffis_vfs::{FfisFs, MemFs, Primitive};
use qmc_sim::QmcApp;
use std::sync::Arc;

fn main() {
    println!("building QMCPACK-like He workload (VMC 2000 rows, DMC 4000 rows)...");
    let app = QmcApp::paper_default();
    let golden = app.run(&MemFs::new()).expect("golden run");
    println!(
        "golden DMC energy: {:.5} ± {:.5} Ha  (exact: -2.90372; paper SDC window [-2.91, -2.90])\n",
        golden.qmca.energy, golden.qmca.error
    );

    for (label, contains) in [
        ("VMC scalar (s000)", "s000.scalar"),
        ("walker checkpoint", "config"),
        ("DMC scalar (s001)", "s001.scalar"),
    ] {
        let sig = FaultSignature {
            model: FaultModel::shorn_write(),
            primitive: Primitive::Write,
            target: TargetFilter::PathContains(contains.into()),
        };
        let injector = Arc::new(ArmedInjector::new(sig, 2, 123));
        let ffs = FfisFs::mount(Arc::new(MemFs::new()));
        ffs.attach(injector.clone());
        match app.run(&*ffs) {
            Ok(faulty) => {
                let outcome = app.classify(&golden, &faulty);
                println!(
                    "SHORN WRITE in {:<18} -> {:<8} energy {:.5} (Δ {:+.2} mHa){}",
                    label,
                    outcome.name(),
                    faulty.qmca.energy,
                    (faulty.qmca.energy - golden.qmca.energy) * 1000.0,
                    if injector.record().is_some() { "" } else { "  [fault did not fire]" }
                );
            }
            Err(e) => println!("SHORN WRITE in {:<18} -> crash: {}", label, e),
        }
    }
    println!("\nFaults in s000 leave the classified s001 bitwise intact (benign); checkpoint");
    println!("corruption silently reroutes the DMC trajectory, yet the projector still lands");
    println!("in the energy window — the paper's SDC propagation path.");
}
