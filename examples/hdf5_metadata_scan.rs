//! Byte-by-byte HDF5 metadata fault injection (the paper's §IV-D
//! methodology, Table III at example scale): flips two consecutive
//! bits in every byte of the plotfile's packed metadata write and
//! attributes outcomes to file-format fields. Per scanned byte the
//! scanner forks a CoW snapshot taken just before the metadata write,
//! replays the trace suffix through the byte injector, and runs only
//! Nyx's `analyze` phase (read-back + halo finding) — the two-phase
//! `FaultApp` contract makes that fast path the default.
//!
//! ```sh
//! cargo run --release --example hdf5_metadata_scan
//! ```

use ffis_core::{
    attribute, fields_with_outcome, scan, FieldMap, FieldSpan, Outcome, ScanConfig, TargetFilter,
};
use nyx_sim::{NyxApp, NyxConfig};

fn main() {
    let mut cfg = NyxConfig { keep_field: false, ..NyxConfig::default() };
    cfg.field.n = 24;
    let app = NyxApp::new(cfg);

    let spans: Vec<FieldSpan> = app
        .metadata_spans()
        .into_iter()
        .map(|s| FieldSpan { start: s.start, end: s.end, name: s.name })
        .collect();
    let map = FieldMap::new(spans).expect("non-overlapping");
    println!(
        "plotfile metadata: {} bytes across {} labelled fields\n",
        app.metadata_size(),
        map.spans().len()
    );

    let scan_cfg = ScanConfig::new(TargetFilter::PathSuffix(".h5".into()));
    let result = scan(&app, &scan_cfg).expect("scan");
    println!(
        "scanned {} bytes of the penultimate write (offset {:#x})",
        result.write_len, result.write_offset
    );
    println!("{}\n", result.tally);

    let fields = attribute(&result, &map);
    for outcome in [Outcome::Sdc, Outcome::Crash] {
        let mut names: Vec<String> = fields_with_outcome(&fields, outcome)
            .into_iter()
            .map(|n| {
                let parts: Vec<&str> = n.split('.').collect();
                parts[parts.len().saturating_sub(2)..].join(".")
            })
            .collect();
        names.sort();
        names.dedup();
        println!("{} fields ({}):", outcome.name(), names.len());
        for n in names.iter().take(12) {
            println!("  {}", n);
        }
        println!();
    }
    println!("Paper: SDC 0.2%, benign 85.7%, crash 14.1%; SDC fields include Exponent Bias,");
    println!("Mantissa Size/Location, Mantissa-Normalization bit 5, and the Address of Raw Data.");
}
