//! Run the Montage mosaic pipeline clean and with a DROPPED WRITE in
//! each stage; writes the golden and a faulty mosaic as PGM files
//! (the paper's Figure 9). `MontageApp::run` is the two-phase
//! contract's produce-then-analyze: produce streams every stage's
//! golden FITS bytes through the (possibly fault-injected) mount, and
//! analyze re-derives the mosaic from the first inter-stage file whose
//! read-back differs — the same propagation a monolithic pipeline
//! exhibits, which is what lets campaigns replay it from checkpoints.
//!
//! ```sh
//! cargo run --release --example montage_pipeline
//! ```

use ffis_core::{ArmedInjector, FaultApp, FaultModel, FaultSignature, Outcome};
use ffis_vfs::{FfisFs, MemFs};
use montage_sim::{MontageApp, Stage};
use std::sync::Arc;

fn main() {
    let app = MontageApp::paper_default();
    let golden = app.run(&MemFs::new()).expect("golden pipeline");
    println!(
        "golden mosaic: min {:.4}, max {:.4} ({} bytes of stretched image)",
        golden.image.min,
        golden.image.max,
        golden.image.bytes.len()
    );
    std::fs::write("results/montage_golden.pgm", &golden.image.bytes).ok();

    println!("\ninjecting one DROPPED WRITE per stage (first data-write instance):");
    for stage in Stage::ALL {
        let mut sig = FaultSignature::on_write(FaultModel::dropped_write());
        sig.target = MontageApp::stage_filter(stage);
        // Instance 2 normally lands inside a data (non-header) chunk.
        let injector = Arc::new(ArmedInjector::new(sig, 2, 99));
        let ffs = FfisFs::mount(Arc::new(MemFs::new()));
        ffs.attach(injector);
        match app.run(&*ffs) {
            Ok(faulty) => {
                let outcome = app.classify(&golden, &faulty);
                println!(
                    "  {} ({:<9}): outcome {:<8} min {:.4} (golden {:.4})",
                    stage.label(),
                    stage.tool(),
                    outcome.name(),
                    faulty.image.min,
                    golden.image.min
                );
                if outcome != Outcome::Benign {
                    let name = format!("results/montage_faulty_{}.pgm", stage.label());
                    std::fs::write(&name, &faulty.image.bytes).ok();
                    println!("    wrote {}", name);
                }
            }
            Err(e) => println!("  {} ({:<9}): crash — {}", stage.label(), stage.tool(), e),
        }
    }
    println!("\nOpen the PGMs to see the paper's Figure 9 stripe artifact.");
}
