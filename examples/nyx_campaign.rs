//! Reproduce Figure 7's Nyx column at reduced scale: 300-run
//! campaigns of the three fault models against the Nyx workload, with
//! and without the average-value protection.
//!
//! ```sh
//! cargo run --release --example nyx_campaign
//! ```

use ffis_core::prelude::*;
use nyx_sim::{protected_classify, NyxApp, NyxConfig, NyxOutput, MEAN_TOLERANCE};

/// Nyx classified with the paper's §V-A average-value method.
struct ProtectedNyx(NyxApp);

impl FaultApp for ProtectedNyx {
    type Output = NyxOutput;
    fn produce(&self, fs: &dyn ffis_vfs::FileSystem) -> Result<(), String> {
        self.0.produce(fs)
    }
    fn analyze(
        &self,
        fs: &dyn ffis_vfs::FileSystem,
        golden: Option<&NyxOutput>,
    ) -> Result<NyxOutput, String> {
        self.0.analyze(fs, golden)
    }
    fn classify(&self, g: &NyxOutput, f: &NyxOutput) -> Outcome {
        protected_classify(g, f, MEAN_TOLERANCE)
    }
    fn name(&self) -> String {
        "NYX+avg".into()
    }
}

fn main() {
    let mut cfg = NyxConfig::paper_scale();
    cfg.field.n = 64; // laptop-friendly scale
    cfg.write_chunk = 20 * 4096;
    println!("Nyx campaign: {}³ baryon-density grid, 64 KiB-class sieve writes\n", cfg.field.n);

    let app = NyxApp::new(cfg);
    let golden = app.run(&ffis_vfs::MemFs::new()).expect("golden run");
    println!(
        "golden: {} halos, mean density {:.6} (mass conservation)\n",
        golden.catalog.halos.len(),
        golden.catalog.mean
    );

    println!("{:<14} {:>8} {:>10} {:>7} {:>7}", "model", "benign%", "detected%", "SDC%", "crash%");
    for model in [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()] {
        let campaign_cfg =
            CampaignConfig::new(FaultSignature::on_write(model)).with_runs(300).with_seed(7);
        let t = Campaign::new(&app, campaign_cfg).run().expect("campaign").tally;
        println!(
            "{:<14} {:>8.1} {:>10.1} {:>7.1} {:>7.1}",
            model.name(),
            t.rate_pct(Outcome::Benign),
            t.rate_pct(Outcome::Detected),
            t.rate_pct(Outcome::Sdc),
            t.rate_pct(Outcome::Crash),
        );
    }

    println!("\nread-site mirror (BF/SR/DR on FFIS_read, 60 full-rerun runs each):");
    println!(
        "{:<14} {:>8} {:>10} {:>7} {:>7}   exec",
        "model", "benign%", "detected%", "SDC%", "crash%"
    );
    for model in [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()] {
        let sig = FaultSignature::on_read(model);
        let name = model.name_at(sig.site());
        // Read-site faults are non-replayable by construction: the
        // campaign takes the full-rerun path and records why.
        let campaign_cfg = CampaignConfig::new(sig).with_runs(60).with_seed(7);
        let r = Campaign::new(&app, campaign_cfg).run().expect("read campaign");
        println!(
            "{:<14} {:>8.1} {:>10.1} {:>7.1} {:>7.1}   {}",
            name,
            r.tally.rate_pct(Outcome::Benign),
            r.tally.rate_pct(Outcome::Detected),
            r.tally.rate_pct(Outcome::Sdc),
            r.tally.rate_pct(Outcome::Crash),
            r.mode,
        );
    }

    println!("\nwith the average-value-based protection (§V-A):");
    let protected = ProtectedNyx(app);
    let model = FaultModel::dropped_write();
    let campaign_cfg =
        CampaignConfig::new(FaultSignature::on_write(model)).with_runs(300).with_seed(7);
    let t = Campaign::new(&protected, campaign_cfg).run().expect("campaign").tally;
    println!(
        "{:<14} {:>8.1} {:>10.1} {:>7.1} {:>7.1}   <- every SDC becomes detected",
        model.name(),
        t.rate_pct(Outcome::Benign),
        t.rate_pct(Outcome::Detected),
        t.rate_pct(Outcome::Sdc),
        t.rate_pct(Outcome::Crash),
    );
}
