//! Quickstart: mount FFISFS, run a tiny "application", inject each of
//! the paper's three fault models, and watch the outcomes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ffis_core::prelude::*;
use ffis_vfs::{FileSystem, FileSystemExt};

/// A miniature two-phase application: `produce` writes a data file in
/// 4 KiB chunks; `analyze` reads it back and "analyzes" it by summing
/// the bytes. Splitting along that seam is what lets campaigns run on
/// the golden-trace replay fast path by default.
struct ChecksumApp;

impl FaultApp for ChecksumApp {
    type Output = (Vec<u8>, u64);

    fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
        let data: Vec<u8> = (0..32 * 1024).map(|i| (i % 251) as u8).collect();
        fs.write_file_chunked("/out/data.bin", &data, 4096).map_err(|e| e.to_string())
    }

    fn analyze(
        &self,
        fs: &dyn FileSystem,
        _golden: Option<&Self::Output>,
    ) -> Result<Self::Output, String> {
        let back = fs.read_to_vec("/out/data.bin").map_err(|e| e.to_string())?;
        if back.len() != 32 * 1024 {
            return Err("output truncated".into());
        }
        let checksum = back.iter().map(|&b| b as u64).sum();
        Ok((back, checksum))
    }

    fn classify(&self, golden: &Self::Output, faulty: &Self::Output) -> Outcome {
        if golden.0 == faulty.0 {
            Outcome::Benign
        } else if faulty.1.abs_diff(golden.1) > 10_000 {
            Outcome::Detected // the checksum "detector" fires
        } else {
            Outcome::Sdc // silently different data
        }
    }

    fn name(&self) -> String {
        "CHECKSUM".into()
    }
}

fn main() {
    // The app needs a directory; campaigns mount a fresh filesystem
    // per run, so the app creates it itself.
    struct WithDir(ChecksumApp);
    impl FaultApp for WithDir {
        type Output = (Vec<u8>, u64);
        fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
            fs.mkdir("/out", 0o755).map_err(|e| e.to_string())?;
            self.0.produce(fs)
        }
        fn analyze(
            &self,
            fs: &dyn FileSystem,
            golden: Option<&Self::Output>,
        ) -> Result<Self::Output, String> {
            self.0.analyze(fs, golden)
        }
        fn classify(&self, g: &Self::Output, f: &Self::Output) -> Outcome {
            self.0.classify(g, f)
        }
        fn name(&self) -> String {
            self.0.name()
        }
    }

    println!("FFIS quickstart — 200-run campaigns on a toy application\n");
    let app = WithDir(ChecksumApp);
    for model in [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()] {
        let cfg = CampaignConfig::new(FaultSignature::on_write(model)).with_runs(200).with_seed(42);
        let result = Campaign::new(&app, cfg).run().expect("campaign");
        println!("{:<14} {}  [{}]", model.name(), result.tally, result.mode);
        println!(
            "  profiled {} eligible write instances; example injection: {}",
            result.profile.eligible,
            result
                .runs
                .iter()
                .find_map(|r| r.injection.as_ref())
                .map(|i| i.detail.clone())
                .unwrap_or_default()
        );
    }
    println!("\nBIT FLIP corrupts 2 bits (mostly silent), SHORN WRITE tears a 512 B tail,");
    println!("DROPPED WRITE erases a whole 4 KiB chunk (the checksum detector catches it).");
    println!("Each campaign ran on the checkpointed replay fast path ([replay] above):");
    println!("produce executed once, then every injection run forked a mid-trace CoW");
    println!("checkpoint, replayed the trace suffix through the injector, and analyzed.");
}
