//! Quickstart: mount FFISFS, run a tiny "application", inject each of
//! the paper's three fault models, and watch the outcomes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ffis_core::prelude::*;
use ffis_vfs::{FileSystem, FileSystemExt};

/// A miniature application: writes a data file in 4 KiB chunks,
/// reads it back, and "analyzes" it by summing the bytes.
struct ChecksumApp;

impl FaultApp for ChecksumApp {
    type Output = (Vec<u8>, u64);

    fn run(&self, fs: &dyn FileSystem) -> Result<Self::Output, String> {
        let data: Vec<u8> = (0..32 * 1024).map(|i| (i % 251) as u8).collect();
        fs.write_file_chunked("/out/data.bin", &data, 4096).map_err(|e| e.to_string())?;
        let back = fs.read_to_vec("/out/data.bin").map_err(|e| e.to_string())?;
        if back.len() != data.len() {
            return Err("output truncated".into());
        }
        let checksum = back.iter().map(|&b| b as u64).sum();
        Ok((back, checksum))
    }

    fn classify(&self, golden: &Self::Output, faulty: &Self::Output) -> Outcome {
        if golden.0 == faulty.0 {
            Outcome::Benign
        } else if faulty.1.abs_diff(golden.1) > 10_000 {
            Outcome::Detected // the checksum "detector" fires
        } else {
            Outcome::Sdc // silently different data
        }
    }

    fn name(&self) -> String {
        "CHECKSUM".into()
    }
}

fn main() {
    // The app needs a directory; campaigns mount a fresh filesystem
    // per run, so the app creates it itself.
    struct WithDir(ChecksumApp);
    impl FaultApp for WithDir {
        type Output = (Vec<u8>, u64);
        fn run(&self, fs: &dyn FileSystem) -> Result<Self::Output, String> {
            fs.mkdir("/out", 0o755).map_err(|e| e.to_string())?;
            self.0.run(fs)
        }
        fn classify(&self, g: &Self::Output, f: &Self::Output) -> Outcome {
            self.0.classify(g, f)
        }
        fn name(&self) -> String {
            self.0.name()
        }
    }

    println!("FFIS quickstart — 200-run campaigns on a toy application\n");
    let app = WithDir(ChecksumApp);
    for model in [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()] {
        let cfg = CampaignConfig::new(FaultSignature::on_write(model)).with_runs(200).with_seed(42);
        let result = Campaign::new(&app, cfg).run().expect("campaign");
        println!("{:<14} {}", model.name(), result.tally);
        println!(
            "  profiled {} eligible write instances; example injection: {}",
            result.profile.eligible,
            result
                .runs
                .iter()
                .find_map(|r| r.injection.as_ref())
                .map(|i| i.detail.clone())
                .unwrap_or_default()
        );
    }
    println!("\nBIT FLIP corrupts 2 bits (mostly silent), SHORN WRITE tears a 512 B tail,");
    println!("DROPPED WRITE erases a whole 4 KiB chunk (the checksum detector catches it).");
}
