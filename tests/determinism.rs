//! Reproducibility guarantees: campaigns, scans and applications are
//! bitwise deterministic for a given seed — the property that lets a
//! single SDC case from a 1,000-run campaign be replayed exactly.

use ffis_core::prelude::*;
use ffis_vfs::MemFs;
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};

fn app() -> NyxApp {
    NyxApp::new(NyxConfig {
        field: FieldConfig { n: 24, ..Default::default() },
        ..Default::default()
    })
}

#[test]
fn campaigns_identical_across_reruns_and_thread_counts() {
    let a = app();
    let make = |parallel: bool| {
        let mut cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::shorn_write()))
            .with_runs(40)
            .with_seed(77);
        cfg.parallel = parallel;
        Campaign::new(&a, cfg).run().unwrap()
    };
    let serial = make(false);
    let parallel = make(true);
    let parallel2 = make(true);
    assert_eq!(serial.tally, parallel.tally);
    assert_eq!(parallel.tally, parallel2.tally);
    for ((x, y), z) in serial.runs.iter().zip(&parallel.runs).zip(&parallel2.runs) {
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.target_instance, y.target_instance);
        assert_eq!(x.injection, y.injection);
        assert_eq!(y.injection, z.injection);
    }
}

#[test]
fn single_run_replay_from_campaign_record() {
    // Take an SDC case out of a campaign and replay it standalone —
    // the debugging workflow the paper's methodology depends on.
    use ffis_core::{ArmedInjector, FaultApp};
    use std::sync::Arc;

    let a = app();
    let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::dropped_write()))
        .with_runs(30)
        .with_seed(123);
    let result = Campaign::new(&a, cfg).run().unwrap();
    let golden = a.run(&MemFs::new()).unwrap();

    let interesting = result
        .runs
        .iter()
        .find(|r| r.outcome == Outcome::Sdc || r.outcome == Outcome::Detected)
        .expect("some non-benign run");
    let rec = interesting.injection.as_ref().expect("fired");

    // Replay with the recorded instance.
    let root = Rng::seed_from(123);
    let mut run_rng = root.child(interesting.run as u64);
    let target_instance = run_rng.gen_range(result.profile.eligible) + 1;
    assert_eq!(target_instance, interesting.target_instance);
    let inj = Arc::new(ArmedInjector::new(
        FaultSignature::on_write(FaultModel::dropped_write()),
        target_instance,
        run_rng.next_u64(),
    ));
    let ffs = ffis_vfs::FfisFs::mount(Arc::new(MemFs::new()));
    ffs.attach(inj.clone());
    let replayed = a.run(&*ffs).unwrap();
    assert_eq!(a.classify(&golden, &replayed), interesting.outcome);
    assert_eq!(inj.record().as_ref(), Some(rec));
}

#[test]
fn app_outputs_bitwise_stable_across_processes_within_build() {
    // The rendered catalog is a pure function of the seed.
    let a1 = app();
    let a2 = app();
    use ffis_core::FaultApp;
    let o1 = a1.run(&MemFs::new()).unwrap();
    let o2 = a2.run(&MemFs::new()).unwrap();
    assert_eq!(o1.catalog_text, o2.catalog_text);
}

#[test]
fn different_seeds_change_injection_schedule_not_golden() {
    use ffis_core::FaultApp;
    let a = app();
    let golden1 = a.run(&MemFs::new()).unwrap();

    let r1 = Campaign::new(
        &a,
        CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(20)
            .with_seed(1),
    )
    .run()
    .unwrap();
    let r2 = Campaign::new(
        &a,
        CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
            .with_runs(20)
            .with_seed(2),
    )
    .run()
    .unwrap();
    let i1: Vec<u64> = r1.runs.iter().map(|r| r.target_instance).collect();
    let i2: Vec<u64> = r2.runs.iter().map(|r| r.target_instance).collect();
    assert_ne!(i1, i2, "different seeds must sample different instances");

    let golden2 = a.run(&MemFs::new()).unwrap();
    assert_eq!(golden1.catalog_text, golden2.catalog_text, "golden unaffected by campaigns");
}
