//! Durability integration suite — the resume law under real process
//! death, journal corruption, and configuration drift.
//!
//! Engine law 6 (the resume law): a campaign interrupted at *any*
//! point and resumed from its journal produces tallies, per-run
//! records, and an FNV run digest byte-identical to an uninterrupted
//! campaign's. The lib tests pin the law under cooperative
//! cancellation; this suite pins it under SIGKILL — a child process
//! killed mid-campaign with no chance to flush anything beyond the
//! per-append journal writes — plus torn-tail corruption and
//! plan-fingerprint drift.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffis_core::engine::journal;
use ffis_core::{
    Campaign, CampaignConfig, CampaignError, CampaignResult, CancelToken, CompletionStatus,
    FaultApp, FaultModel, FaultSignature, JournalError, Outcome,
};
use ffis_vfs::{FileSystem, FileSystemExt};

/// A deliberately paced two-phase workload: `analyze` sleeps a few
/// milliseconds per run so the parent has a wide window to SIGKILL a
/// child mid-campaign. Pacing never enters the data path, so paced and
/// unpaced campaigns over the same seed are byte-identical.
struct PacedApp {
    pace: Duration,
}

const PACED_LEN: usize = 4096 * 6;

#[derive(Clone)]
struct PacedOutput {
    bytes: Vec<u8>,
    checksum: u64,
}

impl FaultApp for PacedApp {
    type Output = PacedOutput;

    fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
        let data: Vec<u8> = (0..PACED_LEN).map(|i| (i as u64 * 29 % 251) as u8).collect();
        fs.write_file_chunked("/out.bin", &data, 4096).map_err(|e| e.to_string())?;
        fs.write_file("/meta.log", b"paced\n").map_err(|e| e.to_string())
    }

    fn analyze(
        &self,
        fs: &dyn FileSystem,
        _golden: Option<&PacedOutput>,
    ) -> Result<PacedOutput, String> {
        if !self.pace.is_zero() {
            std::thread::sleep(self.pace);
        }
        let bytes = fs.read_to_vec("/out.bin").map_err(|e| e.to_string())?;
        if bytes.len() != PACED_LEN {
            return Err(format!("short read: {}", bytes.len()));
        }
        let checksum = bytes.iter().map(|&b| u64::from(b)).sum();
        Ok(PacedOutput { bytes, checksum })
    }

    fn classify(&self, golden: &PacedOutput, faulty: &PacedOutput) -> Outcome {
        if golden.bytes == faulty.bytes {
            Outcome::Benign
        } else if faulty.checksum.abs_diff(golden.checksum) > 500 {
            Outcome::Detected
        } else {
            Outcome::Sdc
        }
    }

    fn name(&self) -> String {
        "PACED".into()
    }
}

const RUNS: usize = 48;
const SEED: u64 = 0xD00D_F005;

fn campaign(
    pace: Duration,
    journal: Option<&Path>,
    resume: bool,
    cancel: Option<Arc<CancelToken>>,
) -> Result<CampaignResult, CampaignError> {
    let mut cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
        .with_runs(RUNS)
        .with_seed(SEED);
    if let Some(j) = journal {
        cfg = cfg.with_journal(j).with_resume(resume);
    }
    if let Some(c) = cancel {
        cfg = cfg.with_cancel(c);
    }
    Campaign::new(&PacedApp { pace }, cfg).run()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ffis-resume-durability-{}-{}",
        std::process::id(),
        name
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Re-exec marker: when set, this test binary is the *victim* — it
/// runs the journaled campaign until the parent SIGKILLs it.
const CHILD_ENV: &str = "FFIS_RESUME_DURABILITY_CHILD";

#[test]
fn sigkill_mid_campaign_then_resume_matches_uninterrupted() {
    if let Ok(path) = std::env::var(CHILD_ENV) {
        // Child mode: run the paced, journaled campaign. The parent
        // kills us partway through; exiting cleanly is also fine (the
        // resume below then simply replays a complete journal).
        let _ = campaign(Duration::from_millis(4), Some(Path::new(&path)), false, None);
        std::process::exit(0);
    }

    let dir = tmp_dir("sigkill");
    let jpath = dir.join("campaign.journal");
    let control = campaign(Duration::ZERO, None, false, None).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(&exe)
        .args([
            "--exact",
            "sigkill_mid_campaign_then_resume_matches_uninterrupted",
            "--test-threads",
            "1",
            "--nocapture",
        ])
        .env(CHILD_ENV, &jpath)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Wait until the journal shows real progress, then SIGKILL — no
    // destructors, no final flush, exactly the failure the journal
    // exists for.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut seen = 0usize;
    loop {
        if let Ok((_, ends)) = journal::scan(&jpath) {
            seen = ends.len();
            if seen >= 8 {
                break;
            }
        }
        if matches!(child.try_wait(), Ok(Some(_))) || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(seen >= 1, "child never journaled a record");

    let resumed = campaign(Duration::ZERO, Some(&jpath), true, None).unwrap();
    assert_eq!(resumed.status, CompletionStatus::Complete);
    assert!(resumed.resumed >= 1, "nothing was replayed from the journal");
    assert_eq!(resumed.executed + resumed.resumed, RUNS, "every run accounted for exactly once");
    assert_eq!(resumed.tally, control.tally);
    assert_eq!(resumed.runs.len(), control.runs.len());
    assert_eq!(resumed.runs, control.runs, "resume law: per-run records byte-identical");
    assert_eq!(resumed.run_digest(), control.run_digest());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_torn_journal_tail_is_discarded_and_the_affected_run_reexecutes() {
    let dir = tmp_dir("torn");
    let jpath = dir.join("campaign.journal");
    let control = campaign(Duration::ZERO, None, false, None).unwrap();
    let full = campaign(Duration::ZERO, Some(&jpath), false, None).unwrap();
    assert_eq!(full.status, CompletionStatus::Complete);
    assert_eq!(full.run_digest(), control.run_digest());

    // Tear the final record mid-frame, as a crash mid-append would.
    let len = std::fs::metadata(&jpath).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&jpath).unwrap();
    file.set_len(len - 7).unwrap();
    drop(file);

    let resumed = campaign(Duration::ZERO, Some(&jpath), true, None).unwrap();
    assert_eq!(resumed.status, CompletionStatus::Complete);
    assert_eq!(resumed.executed, 1, "exactly the torn record's run re-executes");
    assert_eq!(resumed.resumed, RUNS - 1);
    assert_eq!(resumed.tally, control.tally);
    assert_eq!(resumed.run_digest(), control.run_digest());

    // A CRC-corrupt tail frame (bit rot rather than a tear) is
    // likewise discarded, never decoded.
    let mut bytes = std::fs::read(&jpath).unwrap();
    let n = bytes.len();
    bytes[n - 3] ^= 0xFF;
    std::fs::write(&jpath, &bytes).unwrap();
    let resumed = campaign(Duration::ZERO, Some(&jpath), true, None).unwrap();
    assert_eq!(resumed.status, CompletionStatus::Complete);
    assert_eq!(resumed.executed, 1);
    assert_eq!(resumed.tally, control.tally);
    assert_eq!(resumed.run_digest(), control.run_digest());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_a_different_plan_is_rejected_not_merged() {
    let dir = tmp_dir("mismatch");
    let jpath = dir.join("campaign.journal");
    campaign(Duration::ZERO, Some(&jpath), false, None).unwrap();

    // Same journal, drifted campaign (different seed): refused with a
    // typed error, not silently blended into wrong results.
    let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
        .with_runs(RUNS)
        .with_seed(SEED + 1)
        .with_journal(&jpath)
        .with_resume(true);
    let err = Campaign::new(&PacedApp { pace: Duration::ZERO }, cfg).run().unwrap_err();
    match err {
        CampaignError::Journal(JournalError::PlanMismatch { .. }) => {}
        other => panic!("expected PlanMismatch, got: {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_completed_journal_resumes_without_reexecuting_anything() {
    let dir = tmp_dir("noop");
    let jpath = dir.join("campaign.journal");
    let full = campaign(Duration::ZERO, Some(&jpath), false, None).unwrap();
    assert_eq!(full.executed, RUNS);
    assert_eq!(full.resumed, 0);

    let again = campaign(Duration::ZERO, Some(&jpath), true, None).unwrap();
    assert_eq!(again.status, CompletionStatus::Complete);
    assert_eq!(again.executed, 0, "journaled runs must not re-execute");
    assert_eq!(again.resumed, RUNS);
    assert_eq!(again.tally, full.tally);
    assert_eq!(again.run_digest(), full.run_digest());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cooperative_cancellation_reports_partial_tallies_then_resumes() {
    let dir = tmp_dir("cancel");
    let jpath = dir.join("campaign.journal");
    let control = campaign(Duration::ZERO, None, false, None).unwrap();

    let first =
        campaign(Duration::ZERO, Some(&jpath), false, Some(CancelToken::after_runs(10))).unwrap();
    assert_eq!(first.status, CompletionStatus::Interrupted);
    assert_eq!(first.executed, 10);
    assert_eq!(first.tally.total(), 10, "partial tallies cover exactly the completed runs");

    let resumed = campaign(Duration::ZERO, Some(&jpath), true, None).unwrap();
    assert_eq!(resumed.status, CompletionStatus::Complete);
    assert_eq!(resumed.resumed, 10);
    assert_eq!(resumed.executed, RUNS - 10);
    assert_eq!(resumed.tally, control.tally);
    assert_eq!(resumed.run_digest(), control.run_digest());
    std::fs::remove_dir_all(&dir).ok();
}
