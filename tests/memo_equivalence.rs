//! Differential pinning of the analyze memoization layer (engine
//! law 8): **memoized analyze == full analyze, byte for byte**.
//!
//! Every multi-file regime of the three paper workloads — multi-tile
//! Montage, multi-plotfile Nyx, multi-restart QMCPACK — runs each
//! campaign twice, once with the memo layer engaged and once with it
//! disabled, and asserts the results are indistinguishable: same
//! outcome tallies, same per-run injection records, same crash
//! messages, same strategy-independent FNV digest. The memoized
//! campaign must also *report* that it engaged (the fallback reason is
//! never silent), and the write-site/read-site campaign modes must be
//! `Replay` / `IncrementalAnalyze` respectively.
//!
//! Both `FFIS_REPLAY` regimes are covered by requesting the fast path
//! explicitly (`with_replay(true)`) and the rerun reference path
//! (`with_replay(false)`, where the memo layer must fall back with
//! `not-fast-path` and the results must still agree).
//!
//! Warm-store behavior rides the same law: re-running a campaign
//! against a shared [`MemoStore`] must replay every run from cache
//! (zero misses) and still produce the identical result.

use std::sync::Arc;

use ffis_core::prelude::*;
use ffis_core::CampaignResult;
use ffis_vfs::MemoStore;
use montage_sim::MontageApp;
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};
use qmc_sim::{DmcConfig, QmcApp, QmcConfig, QmcaConfig, VmcConfig};

/// Multi-plotfile Nyx at laptop scale (3 snapshots of a 16³ field).
fn nyx_multi() -> NyxApp {
    NyxApp::new(NyxConfig {
        field: FieldConfig { n: 16, ..Default::default() },
        plotfiles: 3,
        ..Default::default()
    })
}

/// Multi-restart QMCPACK at laptop scale (3 VMC→DMC segments).
fn qmc_multi() -> QmcApp {
    QmcApp::new(QmcConfig {
        vmc: VmcConfig { walkers: 64, warmup: 100, steps: 120, ..Default::default() },
        dmc: DmcConfig { target_walkers: 64, warmup: 0, steps: 200, ..Default::default() },
        qmca: QmcaConfig { equilibration_fraction: 0.2, min_rows: 20 },
        restarts: 3,
        ..Default::default()
    })
}

/// FNV-1a accumulator (same digest as `read_write_differential.rs`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// FNV-1a over every strategy-independent per-run artifact. The memo
/// layer must be invisible here: `ExecutionMode` is excluded, all else
/// must collide byte for byte.
fn digest(result: &CampaignResult) -> u64 {
    let mut h = Fnv::new();
    for r in &result.runs {
        h.eat(&(r.run as u64).to_le_bytes());
        h.eat(r.outcome.name().as_bytes());
        h.eat(&r.target_instance.to_le_bytes());
        match &r.injection {
            Some(i) => {
                h.eat(i.primitive.ffis_name().as_bytes());
                h.eat(&i.instance.to_le_bytes());
                h.eat(&i.prim_seq.to_le_bytes());
                h.eat(i.path.as_deref().unwrap_or("-").as_bytes());
                h.eat(&i.offset.unwrap_or(u64::MAX).to_le_bytes());
                h.eat(&(i.len as u64).to_le_bytes());
                h.eat(i.detail.as_bytes());
            }
            None => h.eat(b"no-fire"),
        }
        h.eat(r.crash_message.as_deref().unwrap_or("-").as_bytes());
    }
    h.0
}

fn models() -> [FaultModel; 3] {
    [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()]
}

/// Run one campaign cell with the memo layer on or off.
fn run_cell<A: FaultApp>(
    app: &A,
    signature: FaultSignature,
    runs: usize,
    memo: bool,
    store: Option<Arc<MemoStore>>,
) -> CampaignResult {
    let mut cfg = CampaignConfig::new(signature)
        .with_runs(runs)
        .with_seed(4242)
        .with_replay(true)
        .with_memo(memo);
    if let Some(store) = store {
        cfg = cfg.with_memo_store(store);
    }
    Campaign::new(app, cfg).run().unwrap()
}

/// Assert two campaign results are byte-for-byte indistinguishable in
/// every strategy-independent artifact.
fn assert_equivalent(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.tally, b.tally, "{}: tallies diverged", what);
    assert_eq!(a.profile.eligible, b.profile.eligible, "{}", what);
    assert_eq!(a.runs.len(), b.runs.len(), "{}", what);
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.run, y.run, "{}", what);
        assert_eq!(x.outcome, y.outcome, "{} run {}", what, x.run);
        assert_eq!(x.target_instance, y.target_instance, "{} run {}", what, x.run);
        assert_eq!(x.injection, y.injection, "{} run {}", what, x.run);
        assert_eq!(x.crash_message, y.crash_message, "{} run {}", what, x.run);
    }
    assert_eq!(digest(a), digest(b), "{}: digests must collide", what);
}

/// Engine law 8 at the write site, all three multi-file apps × all
/// three fault models: the memoized replay path and the plain replay
/// path agree byte for byte, and the memo layer reports engagement
/// (with the declared sub-step count) rather than a silent fallback.
#[test]
fn memoized_write_campaigns_equal_full_analyze() {
    fn check<A: FaultApp>(app: &A, runs: usize, substeps: usize) {
        for model in models() {
            let memo = run_cell(app, FaultSignature::on_write(model), runs, true, None);
            let full = run_cell(app, FaultSignature::on_write(model), runs, false, None);
            let what = format!("{} write {:?}", app.name(), model);
            assert!(memo.memo.engaged, "{}: {}", what, memo.memo.reason());
            assert_eq!(memo.memo.substeps, substeps, "{}", what);
            assert_eq!(memo.memo.reason(), "memoized", "{}", what);
            assert_eq!(memo.mode, ExecutionMode::Replay, "{}", what);
            assert!(!full.memo.engaged, "{}", what);
            assert_eq!(full.memo.fallback, Some(MemoFallback::Disabled), "{}", what);
            assert_equivalent(&memo, &full, &what);
        }
    }
    check(&nyx_multi(), 16, 3);
    check(&qmc_multi(), 10, 3);
    check(&MontageApp::multi_tile(2), 8, 2);
}

/// Engine law 8 at the read site: memoized campaigns take the
/// `IncrementalAnalyze` mode (recorded campaign-wide and per run),
/// the plain fast path stays `AnalyzeOnly`, and both agree byte for
/// byte with each other.
#[test]
fn memoized_read_campaigns_equal_full_analyze() {
    fn check<A: FaultApp>(app: &A, runs: usize) {
        for model in models() {
            let memo = run_cell(app, FaultSignature::on_read(model), runs, true, None);
            let full = run_cell(app, FaultSignature::on_read(model), runs, false, None);
            let what = format!("{} read {:?}", app.name(), model);
            assert!(memo.memo.engaged, "{}: {}", what, memo.memo.reason());
            assert_eq!(memo.mode, ExecutionMode::IncrementalAnalyze, "{}", what);
            for r in &memo.runs {
                assert_eq!(r.mode, ExecutionMode::IncrementalAnalyze, "{} run {}", what, r.run);
            }
            assert_eq!(full.mode, ExecutionMode::AnalyzeOnly, "{}", what);
            assert_equivalent(&memo, &full, &what);
        }
    }
    check(&nyx_multi(), 12);
    check(&qmc_multi(), 8);
    check(&MontageApp::multi_tile(2), 6);
}

/// The memo fallback is never silent, and a fallen-back campaign still
/// produces the identical result: `memo-disabled` when the layer is
/// off, `no-substeps` for single-file regimes, `not-fast-path` under
/// `FFIS_REPLAY=0` semantics (replay disabled), `liveness-watchdog`
/// when a fuel budget is armed.
#[test]
fn memo_fallback_reasons_are_recorded_and_harmless() {
    let app = nyx_multi();
    let site = FaultSignature::on_write(FaultModel::bit_flip());

    // Single-file regime: the app declares no sub-steps.
    let single = NyxApp::new(NyxConfig {
        field: FieldConfig { n: 16, ..Default::default() },
        ..Default::default()
    });
    let r = run_cell(&single, site.clone(), 8, true, None);
    assert_eq!(r.memo.fallback, Some(MemoFallback::NoSubsteps));
    assert_eq!(r.memo.substeps, 0);
    assert_eq!(r.memo.reason(), "no-substeps");

    // Replay disabled (the FFIS_REPLAY=0 regime): no fast path, no
    // golden sub-step basis — and the rerun result must still match
    // the memo-off rerun result byte for byte.
    let mk_slow = |memo: bool| {
        let cfg = CampaignConfig::new(site.clone())
            .with_runs(8)
            .with_seed(4242)
            .with_replay(false)
            .with_memo(memo);
        Campaign::new(&app, cfg).run().unwrap()
    };
    let slow_memo = mk_slow(true);
    let slow_full = mk_slow(false);
    assert_eq!(slow_memo.memo.fallback, Some(MemoFallback::NotFastPath));
    assert_eq!(slow_memo.mode, ExecutionMode::FullRerun { reason: ReplayFallback::Disabled });
    assert_equivalent(&slow_memo, &slow_full, "nyx multi replay-off");

    // The rerun reference must also agree with the memoized fast path
    // (transitively pins the fast path against FFIS_REPLAY=0 CI runs).
    let fast_memo = run_cell(&app, site.clone(), 8, true, None);
    assert_equivalent(&fast_memo, &slow_full, "nyx multi fast-vs-rerun");

    // Liveness watchdog armed: skipping clean sub-steps would change
    // where a fuel budget trips, so the layer must stand down.
    let mut cfg =
        CampaignConfig::new(site).with_runs(4).with_seed(4242).with_replay(true).with_memo(true);
    cfg.fuel = Some(u64::MAX);
    let fueled = Campaign::new(&app, cfg).run().unwrap();
    assert_eq!(fueled.memo.fallback, Some(MemoFallback::Liveness));

    // Memo disabled explicitly.
    let off = run_cell(&app, FaultSignature::on_write(FaultModel::bit_flip()), 4, false, None);
    assert_eq!(off.memo.fallback, Some(MemoFallback::Disabled));
    assert_eq!(off.memo.reason(), "memo-disabled");
}

/// A warm shared [`MemoStore`] replays every run from cache — zero
/// misses, positive hits — and the replayed result is byte-identical
/// to the cold one, at both fault sites.
#[test]
fn warm_memo_store_replays_runs_from_cache() {
    fn check<A: FaultApp>(app: &A, signature: FaultSignature, runs: usize, what: &str) {
        let store = Arc::new(MemoStore::in_memory());
        let cold = run_cell(app, signature.clone(), runs, true, Some(Arc::clone(&store)));
        let warm = run_cell(app, signature, runs, true, Some(Arc::clone(&store)));
        assert!(cold.memo.engaged && warm.memo.engaged, "{}", what);
        assert!(cold.memo.stats.misses > 0, "{}: cold run must compute", what);
        assert_eq!(warm.memo.stats.misses, 0, "{}: warm run must not recompute", what);
        assert!(warm.memo.stats.hits > cold.memo.stats.hits, "{}", what);
        assert_equivalent(&cold, &warm, what);
    }
    let app = nyx_multi();
    check(&app, FaultSignature::on_write(FaultModel::dropped_write()), 10, "nyx write warm");
    check(&app, FaultSignature::on_read(FaultModel::bit_flip()), 10, "nyx read warm");
    let montage = MontageApp::multi_tile(2);
    check(&montage, FaultSignature::on_write(FaultModel::bit_flip()), 6, "montage write warm");
}

/// The dirty cascade is visible in the counters: a write-site campaign
/// on a multi-file app invalidates only the sub-steps whose declared
/// inputs the injected op dirtied, and the remaining (clean) sub-steps
/// are hits. Every fired run accounts all of its sub-steps one way or
/// the other.
#[test]
fn dirty_cascade_counters_partition_substeps() {
    let app = nyx_multi();
    let r = run_cell(&app, FaultSignature::on_write(FaultModel::bit_flip()), 16, true, None);
    assert!(r.memo.engaged, "{}", r.memo.reason());
    let fired = r.runs.iter().filter(|run| run.injection.is_some()).count() as u64;
    assert!(fired > 0, "no injection fired in 16 runs");
    let s = r.memo.stats;
    assert!(s.invalidations > 0, "faults on plotfiles must dirty their sub-step");
    assert!(s.hits > 0, "clean sub-steps must replay from cache");
    // Each Nyx plotfile is one sub-step with exactly one input file, so
    // per fired run the dirty set is at most one sub-step; clean-hit +
    // invalidated sub-step counts can never exceed substeps × fired.
    assert!(
        s.invalidations <= fired,
        "at most one dirty sub-step per fired Nyx run: {} > {}",
        s.invalidations,
        fired
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Law 8 under fuzzed campaign shapes: any seed, any small run
        /// count, any fault model, either site — the memoized and full
        /// analyze paths agree byte for byte on multi-plotfile Nyx.
        #[test]
        fn memoized_equals_full_for_any_seed(
            seed in any::<u64>(),
            runs in 1usize..8,
            model_ix in 0usize..3,
            on_read in any::<bool>(),
        ) {
            let app = nyx_multi();
            let model = models()[model_ix];
            let signature = if on_read {
                FaultSignature::on_read(model)
            } else {
                FaultSignature::on_write(model)
            };
            let mk = |memo: bool| {
                let cfg = CampaignConfig::new(signature.clone())
                    .with_runs(runs)
                    .with_seed(seed)
                    .with_replay(true)
                    .with_memo(memo);
                Campaign::new(&app, cfg).run().unwrap()
            };
            let memo = mk(true);
            let full = mk(false);
            prop_assert!(memo.memo.engaged, "{}", memo.memo.reason());
            prop_assert_eq!(memo.tally, full.tally);
            prop_assert_eq!(digest(&memo), digest(&full));
            for (x, y) in memo.runs.iter().zip(&full.runs) {
                prop_assert_eq!(x.outcome, y.outcome);
                prop_assert_eq!(&x.injection, &y.injection);
                prop_assert_eq!(&x.crash_message, &y.crash_message);
            }
        }
    }
}
