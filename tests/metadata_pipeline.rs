//! Cross-crate metadata-study integration: the §IV-D scan machinery
//! (ffis-core) against the real hdf5lite-backed Nyx workload, with
//! field-map invariants and the Table III/IV structure.

use ffis_core::{
    attribute, fields_with_outcome, locate_write, run_with_byte_fault, scan, ByteFlip, FieldMap,
    FieldSpan, Outcome, ScanConfig, TargetFilter, WritePick,
};
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};

fn app() -> NyxApp {
    NyxApp::new(NyxConfig {
        field: FieldConfig { n: 24, ..Default::default() },
        keep_field: true,
        ..Default::default()
    })
}

fn field_map(app: &NyxApp) -> FieldMap {
    FieldMap::new(
        app.metadata_spans()
            .into_iter()
            .map(|s| FieldSpan { start: s.start, end: s.end, name: s.name })
            .collect(),
    )
    .expect("writer spans are disjoint")
}

#[test]
fn spans_tile_the_metadata_write_exactly() {
    let a = app();
    let map = field_map(&a);
    let (_, offset, len, _) =
        locate_write(&a, &TargetFilter::PathSuffix(".h5".into()), WritePick::Penultimate).unwrap();
    assert_eq!(offset, 0, "metadata write starts at the file head");
    assert_eq!(map.covered_bytes(), len as u64, "every metadata byte is labelled");
    // Every byte resolves to exactly one field.
    for b in 0..len as u64 {
        assert!(map.lookup(b).is_some(), "byte {} unlabelled", b);
    }
    assert!(map.lookup(len as u64).is_none());
}

#[test]
fn penultimate_write_is_the_metadata_block() {
    let a = app();
    let (_, offset, len, _) =
        locate_write(&a, &TargetFilter::PathSuffix(".h5".into()), WritePick::Penultimate).unwrap();
    assert_eq!(offset, 0);
    assert_eq!(len as u64, a.metadata_size());
    // The final write is the 8-byte EOF patch.
    let (_, off_last, len_last, _) =
        locate_write(&a, &TargetFilter::PathSuffix(".h5".into()), WritePick::Last).unwrap();
    assert_eq!(off_last, hdf5lite::EOF_ADDR_OFFSET);
    assert_eq!(len_last, 8);
}

#[test]
fn strided_scan_reproduces_table3_shape() {
    let a = app();
    let map = field_map(&a);
    let mut cfg = ScanConfig::new(TargetFilter::PathSuffix(".h5".into()));
    cfg.stride = 4; // ~550 injections
    let result = scan(&a, &cfg).expect("scan");
    let total = result.tally.total();
    assert!(total >= 500);
    // Table III shape: benign dominates, crash is the main failure
    // class, SDC is rare but present in the float/layout fields.
    assert!(result.tally.benign * 100 >= 75 * total, "{}", result.tally);
    assert!(result.tally.crash * 100 >= 5 * total, "{}", result.tally);
    assert!(result.tally.crash * 100 <= 25 * total, "{}", result.tally);

    let fields = attribute(&result, &map);
    let crash_fields = fields_with_outcome(&fields, Outcome::Crash);
    assert!(crash_fields.iter().any(|f| f.contains("Signature")));
    // Reserved/unused space is benign.
    for f in &fields {
        if f.name.contains("UnusedSlots") || f.name.contains("Scratch") {
            assert_eq!(f.tally.benign, f.tally.total(), "{} not benign", f.name);
        }
    }
}

#[test]
fn exponent_bias_fault_scales_masses_uniformly() {
    let a = app();
    let map = field_map(&a);
    let target = TargetFilter::PathSuffix(".h5".into());
    let (instance, _, _, golden) = locate_write(&a, &target, WritePick::Penultimate).unwrap();
    assert!(!golden.catalog.halos.is_empty(), "need halos for the comparison");
    let span = map.find("ExponentBias")[0].clone();
    let (outcome, faulty, _) = run_with_byte_fault(
        &a,
        &golden,
        &target,
        instance,
        span.start as usize,
        ByteFlip::Xor(0b0000_1100), // bias 127 -> 115: scale 2^12
    );
    assert_eq!(outcome, Outcome::Sdc);
    let faulty = faulty.unwrap();
    assert_eq!(faulty.catalog.halos.len(), golden.catalog.halos.len());
    for (g, f) in golden.catalog.halos.iter().zip(&faulty.catalog.halos) {
        assert!((f.mass / g.mass - 4096.0).abs() < 1.0, "mass not scaled: {} / {}", f.mass, g.mass);
        assert_eq!(f.center, g.center, "locations must be unchanged (Fig 5b)");
        assert_eq!(f.cells, g.cells);
    }
}

#[test]
fn ard_fault_shifts_locations_not_mass() {
    let a = app();
    let map = field_map(&a);
    let target = TargetFilter::PathSuffix(".h5".into());
    let (instance, _, _, golden) = locate_write(&a, &target, WritePick::Penultimate).unwrap();
    let span = map.find("AddressOfRawData")[0].clone();
    // +64 bytes = +16 f32 cells: a clean element-aligned shift.
    let (outcome, faulty, _) = run_with_byte_fault(
        &a,
        &golden,
        &target,
        instance,
        span.start as usize,
        ByteFlip::Xor(0b0100_0000),
    );
    assert_eq!(outcome, Outcome::Sdc);
    let faulty = faulty.unwrap();
    // Mean unchanged (the ARD case the average-value method cannot
    // see, §V-A).
    assert!((faulty.catalog.mean / golden.catalog.mean - 1.0).abs() < 5e-3);
    // At least one halo position moved.
    let moved =
        golden.catalog.halos.iter().zip(&faulty.catalog.halos).any(|(g, f)| g.center != f.center);
    assert!(moved, "ARD shift must move halos");
}

#[test]
fn scan_against_eof_patch_write_is_mostly_masked() {
    // Bytes of the metadata buffer in the EOF field region are
    // overwritten by the final patch write, so faults there are
    // benign — a subtlety the write-protocol design creates.
    let a = app();
    let target = TargetFilter::PathSuffix(".h5".into());
    let (instance, _, _, golden) = locate_write(&a, &target, WritePick::Penultimate).unwrap();
    for byte in hdf5lite::EOF_ADDR_OFFSET..hdf5lite::EOF_ADDR_OFFSET + 8 {
        let (outcome, _, _) =
            run_with_byte_fault(&a, &golden, &target, instance, byte as usize, ByteFlip::Xor(0xFF));
        assert_eq!(outcome, Outcome::Benign, "EOF byte {} not masked", byte);
    }
}

#[test]
fn scan_determinism_across_invocations() {
    let a = app();
    let mut cfg = ScanConfig::new(TargetFilter::PathSuffix(".h5".into()));
    cfg.stride = 16;
    let r1 = scan(&a, &cfg).unwrap();
    let r2 = scan(&a, &cfg).unwrap();
    assert_eq!(r1.tally, r2.tally);
    for (a, b) in r1.bytes.iter().zip(&r2.bytes) {
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.file_offset, b.file_offset);
    }
}
