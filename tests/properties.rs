//! Property-based tests on the core invariants, spanning the fault
//! models, the HDF5 substrate, the FITS substrate, and the statistics.

use proptest::prelude::*;

use ffis_core::engine::{ExecutionPlan, PlannedRun, RunStrategy};
use ffis_core::{
    wilson, ByteFlip, FaultModel, Mutation, ReplayFallback, Rng, ShornFill, ShornKeep,
};
use ffis_vfs::{FileSystem, FileSystemExt, MemFs, SECTOR_SIZE};

/// Record a randomized chunked-write workload's golden trace (the
/// same op mix the checkpoint-replay property uses: chunked writes, a
/// descriptor held open across other files' I/O, truncates, patches)
/// and return it with the from-scratch full-replay reference state —
/// the shared fixture of the plan-aware replay properties.
fn record_replay_workload(
    seed: u64,
    n_files: usize,
) -> (Vec<ffis_vfs::TraceOp>, MemFs, Vec<String>) {
    use ffis_vfs::{FfisFs, OpenFlags, TraceRecorder};
    use std::sync::Arc;

    let mut rng = Rng::seed_from(seed);
    let mut paths: Vec<String> = Vec::new();
    let recorder = Arc::new(TraceRecorder::new());
    let ffs = FfisFs::mount(Arc::new(MemFs::new()));
    ffs.attach(recorder.clone());
    ffs.mkdir("/w", 0o755).unwrap();
    let held = ffs.create("/w/held.bin", 0o644).unwrap();
    for f in 0..n_files {
        let p = format!("/w/f{:02}.dat", f);
        let len = 1 + rng.gen_range(9_000) as usize;
        let chunk = 512 * (1 + rng.gen_range(8) as usize);
        let data: Vec<u8> = (0..len).map(|i| (i as u64 * 31 + f as u64) as u8).collect();
        ffs.write_file_chunked(&p, &data, chunk).unwrap();
        ffs.pwrite(held, &[f as u8 + 1; 600], f as u64 * 600).unwrap();
        if rng.chance(0.5) {
            ffs.truncate(&p, rng.gen_range(len as u64 + 1)).unwrap();
        }
        if rng.chance(0.5) {
            let fd = ffs.open(&p, OpenFlags::read_write()).unwrap();
            ffs.pwrite(fd, b"patch", rng.gen_range(len as u64)).unwrap();
            ffs.release(fd).unwrap();
        }
        paths.push(p);
    }
    ffs.release(held).unwrap();
    paths.push("/w/held.bin".into());
    ffs.unmount();

    let ops = recorder.take_ops();
    let reference = MemFs::new();
    ffis_vfs::ReplayCursor::new().replay(&reference, &ops).unwrap();
    (ops, reference, paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BIT FLIP flips exactly `bits` consecutive bits, never changes
    /// the length, and is an involution (applying the same damage
    /// twice restores the buffer).
    #[test]
    fn bitflip_flips_exactly_n_bits(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        bits in 1u32..16,
        seed in any::<u64>(),
    ) {
        let model = FaultModel::BitFlip { bits };
        let mut rng = Rng::seed_from(seed);
        match model.apply_to_buffer(&data, &mut rng) {
            Mutation::Replaced { buf, .. } => {
                prop_assert_eq!(buf.len(), data.len());
                let flipped: u32 = buf.iter().zip(&data).map(|(a, b)| (a ^ b).count_ones()).sum();
                prop_assert_eq!(flipped, bits.min(data.len() as u32 * 8));
                // Consecutiveness.
                let mut positions = Vec::new();
                for (i, (a, b)) in buf.iter().zip(&data).enumerate() {
                    let x = a ^ b;
                    for k in 0..8 {
                        if x & (1 << k) != 0 {
                            positions.push(i * 8 + k);
                        }
                    }
                }
                for w in positions.windows(2) {
                    prop_assert_eq!(w[1], w[0] + 1);
                }
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// SHORN WRITE preserves a sector-aligned prefix of the affected
    /// block and never changes bytes outside that block. Data bytes
    /// are nonzero so the zero-fill damage is observable at every torn
    /// byte — with coincidental zeros the first *visible* diff can sit
    /// past the (still sector-aligned) tear point.
    #[test]
    fn shorn_write_damage_is_sector_aligned_and_block_local(
        data in proptest::collection::vec(1u8..=255, 1..3 * 4096),
        keep37 in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let keep = if keep37 { ShornKeep::ThreeEighths } else { ShornKeep::SevenEighths };
        let model = FaultModel::ShornWrite { keep, fill: ShornFill::Zeros };
        let mut rng = Rng::seed_from(seed);
        match model.apply_to_buffer(&data, &mut rng) {
            Mutation::Replaced { buf, .. } => {
                prop_assert_eq!(buf.len(), data.len());
                let first_diff = buf.iter().zip(&data).position(|(a, b)| a != b);
                let last_diff = buf.iter().zip(&data).rposition(|(a, b)| a != b);
                if let (Some(first), Some(last)) = (first_diff, last_diff) {
                    // Damage begins on a sector boundary and stays
                    // within one 4 KiB block.
                    prop_assert_eq!(first % SECTOR_SIZE, 0, "tear not sector aligned");
                    prop_assert_eq!(first / 4096, last / 4096, "tear crosses a block");
                }
            }
            Mutation::NotApplicable => {
                // Legal for very small buffers where nothing tears.
                prop_assert!(data.len() < 8 * SECTOR_SIZE);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// DROPPED WRITE never mutates — it suppresses.
    #[test]
    fn dropped_write_always_drops(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::seed_from(seed);
        prop_assert_eq!(
            FaultModel::dropped_write().apply_to_buffer(&data, &mut rng),
            Mutation::Dropped
        );
    }

    /// ByteFlip::Xor is an involution; Set is idempotent.
    #[test]
    fn byteflip_algebra(b in any::<u8>(), m in 1u8..=255, v in any::<u8>()) {
        let x = ByteFlip::Xor(m);
        prop_assert_eq!(x.apply(x.apply(b)), b);
        let s = ByteFlip::Set(v);
        prop_assert_eq!(s.apply(s.apply(b)), s.apply(b));
    }

    /// The IEEE f32 codec in hdf5lite round-trips arbitrary finite
    /// f32 values through decode.
    #[test]
    fn floatspec_f32_decode_matches_native(bits in any::<u32>()) {
        let v = f32::from_bits(bits);
        prop_assume!(v.is_finite());
        let spec = hdf5lite::FloatSpec::ieee_f32();
        let decoded = spec.decode(&v.to_le_bytes()).unwrap();
        if v == 0.0 {
            prop_assert_eq!(decoded, 0.0);
        } else if v.is_subnormal() {
            // Subnormals decode to ~0 under the normalized model; the
            // workloads never write them.
        } else {
            prop_assert!(
                (decoded - v as f64).abs() <= (v as f64).abs() * 1e-6,
                "{} decoded as {}", v, decoded
            );
        }
    }

    /// HDF5 write→read round-trips arbitrary small grids bit-exactly
    /// (through f32 quantization).
    #[test]
    fn hdf5_roundtrip(
        data in proptest::collection::vec(-1e6f32..1e6, 1..64),
    ) {
        let fs = MemFs::new();
        let dims = [data.len() as u64];
        let mut b = hdf5lite::FileBuilder::new();
        b.add_dataset("/g/d", hdf5lite::Dataset::f32("d", &dims, &data)).unwrap();
        hdf5lite::write_file(&fs, "/t.h5", &b.into_root(), &hdf5lite::WriteOptions::default()).unwrap();
        let info = hdf5lite::read_dataset(&fs, "/t.h5", "/g/d").unwrap();
        prop_assert_eq!(info.values.len(), data.len());
        for (got, want) in info.values.iter().zip(&data) {
            prop_assert_eq!(*got as f32, *want);
        }
    }

    /// FITS round-trips arbitrary small images (including NaN blanks).
    #[test]
    fn fits_roundtrip(
        w in 1usize..20,
        h in 1usize..20,
        fill in any::<f64>(),
    ) {
        let wcs = fitslite::Wcs {
            crval1: 210.0, crval2: 54.0, crpix1: 1.0, crpix2: 1.0,
            cdelt1: -0.001, cdelt2: 0.001,
        };
        let mut img = fitslite::FitsImage::blank(w, h, wcs);
        for i in 0..w * h {
            img.data[i] = if i % 7 == 0 { f64::NAN } else { fill };
        }
        let fs = MemFs::new();
        fitslite::write_fits(&fs, "/i.fits", &img).unwrap();
        let back = fitslite::read_fits(&fs, "/i.fits").unwrap();
        prop_assert_eq!(back.width, w);
        prop_assert_eq!(back.height, h);
        for (a, b) in back.data.iter().zip(&img.data) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
    }

    /// Wilson intervals always bracket the point estimate and stay in
    /// [0, 1].
    #[test]
    fn wilson_bracket(k in 0u64..=1000, extra in 0u64..1000) {
        let n = k + extra;
        let p = wilson(k, n);
        if n > 0 {
            prop_assert!(p.lo <= p.p + 1e-12);
            prop_assert!(p.hi >= p.p - 1e-12);
            prop_assert!(p.lo >= 0.0 && p.hi <= 1.0);
        }
    }

    /// VFS writes round-trip arbitrary content at arbitrary offsets.
    #[test]
    fn vfs_sparse_write_roundtrip(
        content in proptest::collection::vec(any::<u8>(), 1..512),
        offset in 0u64..10_000,
    ) {
        let fs = MemFs::new();
        let fd = fs.create("/p", 0o644).unwrap();
        fs.pwrite(fd, &content, offset).unwrap();
        fs.release(fd).unwrap();
        let all = fs.read_to_vec("/p").unwrap();
        prop_assert_eq!(all.len() as u64, offset + content.len() as u64);
        prop_assert_eq!(&all[offset as usize..], &content[..]);
        prop_assert!(all[..offset as usize].iter().all(|&b| b == 0));
    }

    /// The deterministic RNG's gen_range never exceeds its bound.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(rng.gen_range(n) < n);
        }
    }

    /// Halo-finder invariants on arbitrary positive grids: halo mass
    /// is positive, cell counts respect the minimum, the summed halo
    /// cells never exceed the candidate count, and a global scale
    /// leaves the catalog structure invariant (threshold is
    /// mean-relative).
    #[test]
    fn halo_finder_invariants(
        values in proptest::collection::vec(0.01f64..10.0, 64..216),
        spike_idx in 0usize..64,
        spike in 500.0f64..5000.0,
    ) {
        // Pack into the largest cube that fits.
        let n = (values.len() as f64).cbrt() as usize;
        let mut grid = values[..n * n * n].to_vec();
        let spike_at = spike_idx % grid.len();
        grid[spike_at] = spike;
        let cfg = nyx_sim::HaloFinderConfig::default();
        let cat = nyx_sim::find_halos(&grid, [n; 3], &cfg);
        let mut cells_total = 0u64;
        for h in &cat.halos {
            prop_assert!(h.mass > 0.0);
            prop_assert!(h.cells >= cfg.min_cells);
            prop_assert!(h.center.iter().all(|&c| c >= 0.0 && c < n as f64));
            cells_total += h.cells as u64;
        }
        prop_assert!(cells_total <= cat.candidate_cells);

        // Scale invariance (the Exponent-Bias SDC signature).
        let scaled: Vec<f64> = grid.iter().map(|v| v * 8.0).collect();
        let cat2 = nyx_sim::find_halos(&scaled, [n; 3], &cfg);
        prop_assert_eq!(cat2.halos.len(), cat.halos.len());
        prop_assert_eq!(cat2.candidate_cells, cat.candidate_cells);
        for (a, b) in cat.halos.iter().zip(&cat2.halos) {
            prop_assert_eq!(a.cells, b.cells);
            prop_assert!((b.mass / a.mass - 8.0).abs() < 1e-9);
        }
    }

    /// Fletcher-32 detects any single-byte change in arbitrary data.
    #[test]
    fn fletcher_detects_byte_changes(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        pos in any::<proptest::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let base = hdf5lite::fletcher32(&data);
        let mut mutated = data.clone();
        let i = pos.index(mutated.len());
        mutated[i] ^= xor;
        prop_assert_ne!(hdf5lite::fletcher32(&mutated), base);
    }

    /// Checkpoint-suffix replay from *every* log-spaced snapshot of a
    /// randomized workload's golden trace reproduces exactly the same
    /// filesystem state as a from-scratch full replay — the invariant
    /// the campaign runner's per-run fork rests on. The workload mixes
    /// chunked writes, a descriptor held open across other files' I/O
    /// (so snapshots land inside open-fd regions), patches, truncates,
    /// and a rename.
    #[test]
    fn checkpoint_suffix_replay_reproduces_full_state(
        seed in any::<u64>(),
        n_files in 1usize..4,
        max_points in 2usize..12,
    ) {
        use ffis_vfs::{FfisFs, FileSystemExt, OpenFlags, TraceCheckpoints, TraceRecorder};
        use std::sync::Arc;

        // Record a randomized workload's golden trace.
        let mut rng = Rng::seed_from(seed);
        let mut paths: Vec<String> = Vec::new();
        let recorder = Arc::new(TraceRecorder::new());
        let ffs = FfisFs::mount(Arc::new(MemFs::new()));
        ffs.attach(recorder.clone());
        ffs.mkdir("/w", 0o755).unwrap();
        let held = ffs.create("/w/held.bin", 0o644).unwrap();
        for f in 0..n_files {
            let p = format!("/w/f{:02}.dat", f);
            let len = 1 + rng.gen_range(12_000) as usize;
            let chunk = 512 * (1 + rng.gen_range(8) as usize);
            let data: Vec<u8> = (0..len).map(|i| (i as u64 * 31 + f as u64) as u8).collect();
            ffs.write_file_chunked(&p, &data, chunk).unwrap();
            // Interleave writes on the held descriptor.
            ffs.pwrite(held, &[f as u8 + 1; 700], f as u64 * 700).unwrap();
            if rng.chance(0.5) {
                ffs.truncate(&p, rng.gen_range(len as u64 + 1)).unwrap();
            }
            if rng.chance(0.5) {
                let fd = ffs.open(&p, OpenFlags::read_write()).unwrap();
                ffs.pwrite(fd, b"patch", rng.gen_range(len as u64)).unwrap();
                ffs.release(fd).unwrap();
            }
            paths.push(p);
        }
        ffs.release(held).unwrap();
        paths.push("/w/held.bin".into());
        let last = paths[0].clone();
        let renamed = format!("{}.renamed", last);
        ffs.rename(&last, &renamed).unwrap();
        paths[0] = renamed;
        ffs.unmount();

        // Reference: from-scratch full replay on a bare MemFs.
        let ops = recorder.take_ops();
        let reference = MemFs::new();
        ffis_vfs::ReplayCursor::new().replay(&reference, &ops).unwrap();

        // Every checkpoint must rebuild identical state via fork +
        // suffix replay.
        let cache = TraceCheckpoints::build_with(ops, max_points).unwrap();
        prop_assert!(cache.points().len() >= 2);
        for point in cache.points() {
            let (mount, mut cursor) = point.mount_fork();
            cursor.replay(&*mount, cache.suffix(point)).unwrap();
            for p in &paths {
                let got = mount.read_to_vec(p).map_err(|e| e.to_string());
                let want = reference.read_to_vec(p).map_err(|e| e.to_string());
                prop_assert_eq!(
                    &got, &want,
                    "checkpoint {} diverged on {}", point.index(), p
                );
            }
            let got_stat = mount.inner().statfs().unwrap();
            let want_stat = reference.statfs().unwrap();
            prop_assert_eq!(got_stat.inodes, want_stat.inodes);
            prop_assert_eq!(got_stat.bytes_used, want_stat.bytes_used);
        }
    }

    /// Demand-driven checkpoint placement never trades correctness for
    /// overshoot: from *every* demand-placed snapshot of a randomized
    /// workload's golden trace, fork + suffix replay reproduces the
    /// byte-identical filesystem state of a from-scratch full replay —
    /// and when the distinct demanded offsets fit the snapshot budget,
    /// the placement's total overshoot over that demand is exactly
    /// zero (every demanded fork starts at its own target).
    #[test]
    fn demand_placed_checkpoints_replay_byte_identical(
        seed in any::<u64>(),
        n_files in 1usize..4,
        demand_sel in proptest::collection::vec(any::<proptest::sample::Index>(), 1..24),
        budget in 2usize..10,
    ) {
        use ffis_vfs::TraceCheckpoints;

        let (ops, reference, paths) = record_replay_workload(seed, n_files);
        let n = ops.len();
        let demand: Vec<usize> = demand_sel.iter().map(|d| d.index(n)).collect();
        let cache = TraceCheckpoints::build_for_demand_with(ops, &demand, budget).unwrap();

        let mut distinct: Vec<usize> =
            demand.iter().copied().filter(|&d| d > 0 && d < n).collect();
        distinct.sort_unstable();
        distinct.dedup();
        if !distinct.is_empty() && distinct.len() < budget.max(2) {
            prop_assert_eq!(
                cache.overshoot_for(&demand), 0,
                "a demand that fits the budget gets zero overshoot"
            );
        }

        for point in cache.points() {
            let (mount, mut cursor) = point.mount_fork();
            cursor.replay(&*mount, cache.suffix(point)).unwrap();
            for p in &paths {
                let got = mount.read_to_vec(p).map_err(|e| e.to_string());
                let want = reference.read_to_vec(p).map_err(|e| e.to_string());
                prop_assert_eq!(
                    &got, &want,
                    "demand checkpoint {} diverged on {}", point.index(), p
                );
            }
            let got_stat = mount.inner().statfs().unwrap();
            let want_stat = reference.statfs().unwrap();
            prop_assert_eq!(got_stat.inodes, want_stat.inodes);
            prop_assert_eq!(got_stat.bytes_used, want_stat.bytes_used);
        }
    }

    /// Checkpoint-grouped batch execution changes nothing observable
    /// (engine law 9): grouping random fork targets by their starting
    /// checkpoint — the executor's batch key — partitions exactly the
    /// original target multiset, and every target's batched mini-fork
    /// (target op + tail replayed) lands on the byte-identical state
    /// the classic per-run arm (shared checkpoint + full suffix) and a
    /// from-scratch full replay produce.
    #[test]
    fn batch_grouped_replay_matches_per_run_forks(
        seed in any::<u64>(),
        n_files in 1usize..3,
        target_sel in proptest::collection::vec(any::<proptest::sample::Index>(), 2..14),
    ) {
        use ffis_vfs::TraceCheckpoints;
        use std::collections::HashMap;

        let (ops, reference, paths) = record_replay_workload(seed, n_files);
        let n = ops.len();
        let targets: Vec<usize> = target_sel.iter().map(|t| t.index(n)).collect();
        let cache = TraceCheckpoints::build_for_demand(ops, &targets).unwrap();

        // Group by starting-checkpoint position, exactly like
        // `RunStrategy::Replay { checkpoint }`'s batch key.
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for &t in &targets {
            let pos = cache.points().partition_point(|p| p.index() <= t) - 1;
            groups.entry(pos).or_default().push(t);
        }

        // The grouped schedule is a permutation of the target multiset:
        // no run is lost, duplicated, or migrated across groups.
        let mut flat: Vec<usize> = groups.values().flatten().copied().collect();
        flat.sort_unstable();
        let mut want = targets.clone();
        want.sort_unstable();
        prop_assert_eq!(flat, want);

        for (pos, group) in groups {
            let batch = cache.fork_at_targets(pos, &group).unwrap();
            for &t in &group {
                let fork = batch.for_target(t).unwrap();
                prop_assert_eq!(fork.point().index(), t);

                // Batched arm: mini-fork at the target, replay the
                // target op + tail.
                let (mount, mut cursor) = fork.point().mount_fork();
                cursor.replay(&*mount, &cache.ops()[t..]).unwrap();

                // Classic arm: the group's shared checkpoint + full
                // suffix.
                let start = cache.nearest_before(t);
                let (classic, mut c2) = start.mount_fork();
                c2.replay(&*classic, cache.suffix(start)).unwrap();

                for p in &paths {
                    let batched = mount.read_to_vec(p).map_err(|e| e.to_string());
                    let unbatched = classic.read_to_vec(p).map_err(|e| e.to_string());
                    let full = reference.read_to_vec(p).map_err(|e| e.to_string());
                    prop_assert_eq!(
                        &batched, &unbatched,
                        "target {} batched/classic diverged on {}", t, p
                    );
                    prop_assert_eq!(
                        &batched, &full,
                        "target {} diverged from full replay on {}", t, p
                    );
                }
            }
        }
    }

    /// Read-site faults corrupt computation, never the device: for
    /// every read-site model (BIT FLIP, SHORN READ in all fill
    /// variants, DROPPED READ), a run with an armed read injector
    /// leaves the post-`produce` filesystem byte-identical to the
    /// golden run's — same file bytes, same inode/byte accounting.
    #[test]
    fn read_site_faults_leave_device_state_pristine(
        model_idx in 0usize..5,
        instance in 1u64..=3,
        seed in any::<u64>(),
    ) {
        use ffis_core::{ArmedInjector, FaultSignature};
        use ffis_vfs::FfisFs;
        use std::sync::Arc;

        let models = [
            FaultModel::bit_flip(),
            FaultModel::ShornWrite { keep: ShornKeep::SevenEighths, fill: ShornFill::Stale },
            FaultModel::ShornWrite { keep: ShornKeep::ThreeEighths, fill: ShornFill::Zeros },
            FaultModel::ShornWrite { keep: ShornKeep::SevenEighths, fill: ShornFill::Random },
            FaultModel::dropped_write(),
        ];
        let model = models[model_idx];

        let paths = ["/w/a.dat", "/w/b.dat", "/w/c.dat"];
        let produce = |fs: &dyn FileSystem| {
            fs.mkdir("/w", 0o755).unwrap();
            for (i, p) in paths.iter().enumerate() {
                let data: Vec<u8> =
                    (0..4096 * (i + 1)).map(|b| (b as u64 * 37 + i as u64) as u8).collect();
                fs.write_file_chunked(p, &data, 2048).unwrap();
            }
        };
        let analyze = |fs: &dyn FileSystem| -> u64 {
            paths
                .iter()
                .map(|p| {
                    fs.read_to_vec(p)
                        .map(|v| v.iter().map(|&b| u64::from(b)).sum::<u64>())
                        .unwrap_or(0)
                })
                .sum()
        };

        // Golden run on a clean mount.
        let golden_base = Arc::new(MemFs::new());
        let golden_mount = FfisFs::mount(golden_base.clone());
        produce(&*golden_mount);
        let golden_sum = analyze(&*golden_mount);

        // Injected run: a read-site fault armed on one of the three
        // analyze-phase reads.
        let base = Arc::new(MemFs::new());
        let mount = FfisFs::mount(base.clone());
        let inj = Arc::new(ArmedInjector::new(FaultSignature::on_read(model), instance, seed));
        mount.attach(inj.clone());
        produce(&*mount);
        let faulty_sum = analyze(&*mount);
        prop_assert!(inj.fired(), "instance {} of 3 eligible reads must fire", instance);
        // The computation is corrupted (except stale-fill tears whose
        // replicated sector happens to match) ...
        if matches!(model, FaultModel::BitFlip { .. } | FaultModel::DroppedWrite) {
            prop_assert!(golden_sum != faulty_sum, "{:?} must perturb the read-back", model);
        }
        // ... but the device never is: every stored byte and the
        // global accounting are identical to the golden run's.
        for p in &paths {
            prop_assert_eq!(
                golden_base.read_to_vec(p).unwrap(),
                base.read_to_vec(p).unwrap(),
                "{:?} leaked onto the device at {}",
                model,
                p
            );
        }
        let g = golden_base.statfs().unwrap();
        let f = base.statfs().unwrap();
        prop_assert_eq!(g.inodes, f.inodes);
        prop_assert_eq!(g.bytes_used, f.bytes_used);
    }

    /// `apply_to_read` damage is confined to the transfer: bytes past
    /// `n` (the filled region) are never touched, and the buffer
    /// length never changes.
    #[test]
    fn read_mutations_confined_to_transfer(
        data in proptest::collection::vec(any::<u8>(), 1..8192),
        model_idx in 0usize..2,
        seed in any::<u64>(),
    ) {
        use ffis_core::ReadMutation;
        let model = [
            FaultModel::bit_flip(),
            FaultModel::ShornWrite { keep: ShornKeep::SevenEighths, fill: ShornFill::Random },
        ][model_idx];
        let n = data.len() / 2;
        let mut buf = data.clone();
        let mut rng = Rng::seed_from(seed);
        match model.apply_to_read(&mut buf, n, &mut rng) {
            ReadMutation::Corrupted { .. } | ReadMutation::NotApplicable => {
                prop_assert_eq!(buf.len(), data.len());
                prop_assert_eq!(&buf[n..], &data[n..], "tail beyond the transfer untouched");
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// The analyze-only numbering law: for a randomized two-phase
    /// workload (produce writes files and best-effort reads some
    /// back; analyze reads everything), arming the injector on *every*
    /// analyze-phase target instance through a pre-seeded fork of the
    /// golden post-produce state yields an injection record —
    /// instance, `prim_seq`, path, offset, length, damage detail —
    /// byte-identical to a full produce+analyze re-execution armed on
    /// the same absolute instance. This is the mechanism under
    /// `RunStrategy::AnalyzeOnly`, tested below the campaign driver.
    #[test]
    fn preseeded_read_numbering_matches_full_run_for_every_target(
        seed in any::<u64>(),
        n_files in 1usize..4,
        produce_readback in 0usize..3,
    ) {
        use ffis_core::{ArmedInjector, FaultSignature};
        use ffis_vfs::{FfisFs, ReadLedger};
        use std::sync::Arc;

        let files: Vec<(String, usize)> =
            (0..n_files).map(|f| (format!("/p/f{:02}.bin", f), 700 * (f + 1))).collect();
        let produce = |fs: &dyn FileSystem| {
            fs.mkdir("/p", 0o755).unwrap();
            for (p, len) in &files {
                let data: Vec<u8> = (0..*len).map(|i| (i as u64 * 13) as u8).collect();
                fs.write_file_chunked(p, &data, 512).unwrap();
            }
            // Best-effort verification read-back: data ignored, so the
            // write stream stays data-independent.
            for (p, _) in files.iter().take(produce_readback.min(n_files)) {
                let _ = fs.read_to_vec(p);
            }
        };
        let analyze = |fs: &dyn FileSystem| {
            for (p, _) in &files {
                let _ = fs.read_to_vec(p);
            }
        };

        // Golden run with the read ledger and the phase-boundary
        // counter snapshot — exactly what the campaign driver records.
        let base = Arc::new(MemFs::new());
        let ffs = FfisFs::mount(base.clone());
        let ledger = Arc::new(ReadLedger::new());
        ffs.attach(ledger.clone());
        produce(&*ffs);
        ledger.mark_produce_end();
        let boundary = ffs.counters();
        analyze(&*ffs);
        ffs.unmount();

        let eligible = ledger.len() as u64;
        let produce_eligible = ledger.produce_reads() as u64;
        prop_assert_eq!(produce_eligible as usize, produce_readback.min(n_files));
        prop_assert!(eligible > produce_eligible, "analyze always reads");

        let sig = FaultSignature::on_read(FaultModel::bit_flip());
        for k in 1..=eligible {
            // Reference: full re-execution armed on absolute instance k.
            let full_inj = Arc::new(ArmedInjector::new(sig.clone(), k, seed));
            let ffs = FfisFs::mount(Arc::new(MemFs::new()));
            ffs.attach(full_inj.clone());
            produce(&*ffs);
            analyze(&*ffs);
            ffs.unmount();
            let full = full_inj.record();
            prop_assert!(full.is_some(), "instance {} must fire on the full run", k);

            // Analyze-phase targets: fork the golden state, pre-seed
            // the boundary counters, resume eligible counting past the
            // produce-phase reads, run only analyze.
            if k > produce_eligible {
                let fast_inj =
                    Arc::new(ArmedInjector::resuming(sig.clone(), k, seed, produce_eligible));
                let ffs = FfisFs::mount(Arc::new(base.fork()));
                ffs.preseed_counters(&boundary);
                ffs.attach(fast_inj.clone());
                analyze(&*ffs);
                ffs.unmount();
                prop_assert_eq!(
                    fast_inj.record(), full,
                    "instance {} numbering diverged between the paths", k
                );
            }
        }
    }

    /// Engine law 1 + 3 (planner half): for arbitrary mixes of replay,
    /// analyze-only, and rerun strategies over arbitrary shard counts,
    /// the plan emits each `(shard, run)` exactly once, the schedule
    /// is a permutation of the runs, rebuilding the plan reproduces
    /// the identical schedule (plan order cannot depend on `parallel`
    /// — the planner never even sees it), fast runs are scheduled
    /// shortest-work-first, and rerun runs keep their relative index
    /// order.
    #[test]
    fn execution_plan_emits_each_run_once_with_deterministic_schedule(
        raw in proptest::collection::vec(any::<u64>(), 0..200),
        shards in 1usize..5,
    ) {
        // Derive an arbitrary replay/analyze-only/rerun mix from the
        // raw words.
        let strategies: Vec<RunStrategy> = raw
            .iter()
            .map(|&w| match w % 5 {
                0 => RunStrategy::Replay {
                    checkpoint: (w >> 2) as usize % 8,
                    suffix_len: 1 + (w >> 5) as usize % 2000,
                },
                1 => RunStrategy::Rerun { reason: ReplayFallback::ProduceReadFault },
                2 => RunStrategy::AnalyzeOnly,
                3 => RunStrategy::IncrementalAnalyze { cost: 1 + (w >> 5) as u32 % 2000 },
                _ => RunStrategy::Rerun { reason: ReplayFallback::Disabled },
            })
            .collect();
        let mk = || {
            let runs: Vec<PlannedRun<u64>> = strategies
                .iter()
                .enumerate()
                .map(|(index, &strategy)| PlannedRun {
                    index,
                    shard: index % shards,
                    strategy,
                    spec: index as u64,
                })
                .collect();
            ExecutionPlan::new(runs, shards)
        };
        let plan = mk();
        // Each (shard, run) exactly once, in result order.
        for (i, r) in plan.runs().iter().enumerate() {
            prop_assert_eq!(r.index, i);
            prop_assert_eq!(r.shard, i % shards);
        }
        // Schedule is a permutation.
        let mut seen = plan.schedule().to_vec();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..strategies.len()).collect::<Vec<_>>());
        // Deterministic rebuild (no dependence on execution knobs).
        let rebuilt = mk();
        prop_assert_eq!(plan.schedule(), rebuilt.schedule());
        // Fast subsequence (replay + analyze-only +
        // incremental-analyze): cost keys nondecreasing on the shared
        // axis (suffix ops / live reads), with analyze-only runs (zero
        // cost) ahead of everything; rerun subsequence: index order
        // preserved.
        let mut last_cost = 0usize;
        let mut last_rerun = None::<usize>;
        for &pos in plan.schedule() {
            match plan.runs()[pos].strategy {
                RunStrategy::Replay { suffix_len, .. } => {
                    prop_assert!(suffix_len >= last_cost, "fast runs not shortest-work-first");
                    last_cost = suffix_len;
                }
                RunStrategy::IncrementalAnalyze { cost } => {
                    prop_assert!(cost as usize >= last_cost, "fast runs not shortest-work-first");
                    last_cost = cost as usize;
                }
                RunStrategy::AnalyzeOnly => {
                    prop_assert_eq!(last_cost, 0, "analyze-only runs lead the fast stream");
                }
                RunStrategy::Rerun { .. } => {
                    if let Some(prev) = last_rerun {
                        prop_assert!(pos > prev, "rerun relative order changed");
                    }
                    last_rerun = Some(pos);
                }
            }
        }
    }

    /// scalar.dat rendering always re-parses to the same rows.
    #[test]
    fn scalar_dat_roundtrip(
        energies in proptest::collection::vec(-10.0f64..10.0, 25..60),
    ) {
        let rows: Vec<qmc_sim::ScalarRow> = energies
            .iter()
            .enumerate()
            .map(|(i, &e)| qmc_sim::ScalarRow {
                index: i as u64,
                local_energy: e,
                variance: e.abs(),
                weight: 100.0,
                accept_ratio: 0.5,
            })
            .collect();
        let text = qmc_sim::render_scalar(&rows);
        let parsed = qmc_sim::parse_scalar(&text, 1).unwrap();
        prop_assert_eq!(parsed.rows.len(), rows.len());
        prop_assert_eq!(parsed.skipped, 0);
        for (a, b) in parsed.rows.iter().zip(&rows) {
            prop_assert!((a.local_energy - b.local_energy).abs() < 1e-9);
        }
    }
}

/// Small paper-workload presets for the engine-level properties (the
/// same scales the differential pins use).
mod engine_apps {
    pub fn nyx() -> nyx_sim::NyxApp {
        nyx_sim::NyxApp::new(nyx_sim::NyxConfig {
            field: nyx_sim::FieldConfig { n: 12, ..Default::default() },
            ..Default::default()
        })
    }

    pub fn qmc() -> qmc_sim::QmcApp {
        qmc_sim::QmcApp::new(qmc_sim::QmcConfig {
            vmc: qmc_sim::VmcConfig { walkers: 32, warmup: 50, steps: 60, ..Default::default() },
            dmc: qmc_sim::DmcConfig {
                target_walkers: 32,
                warmup: 0,
                steps: 80,
                ..Default::default()
            },
            qmca: qmc_sim::QmcaConfig { equilibration_fraction: 0.2, min_rows: 10 },
            ..Default::default()
        })
    }

    pub fn montage() -> montage_sim::MontageApp {
        montage_sim::MontageApp::paper_default()
    }
}

proptest! {
    // App-level properties execute real campaigns; a handful of seeded
    // cases keeps them meaningful without dominating the suite.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Engine law 3, end to end on all three paper apps: a mixed
    /// campaign (replay-backed write shard interleaved with a
    /// rerun-backed read shard) produces byte-identical tallies,
    /// outcomes, instance choices, injection records, and crash
    /// messages with `parallel` on and off, for arbitrary seeds.
    #[test]
    fn engine_serial_equals_parallel_on_all_three_apps(
        seed in any::<u64>(),
        runs in 4usize..8,
    ) {
        use ffis_core::{FaultSignature, MixedCampaign, MixedCampaignConfig};

        // A macro (not a generic fn) so prop_assert's early return
        // lands in the enclosing property body for each app.
        macro_rules! check {
            ($app:expr) => {{
                let app = $app;
                let mk = |parallel: bool| {
                    let mut cfg = MixedCampaignConfig::new(vec![
                        FaultSignature::on_write(FaultModel::bit_flip()),
                        FaultSignature::on_read(FaultModel::bit_flip()),
                    ])
                    .with_runs(runs)
                    .with_seed(seed)
                    .with_replay(true);
                    cfg.parallel = parallel;
                    MixedCampaign::new(&app, cfg).run().unwrap()
                };
                let serial = mk(false);
                let parallel = mk(true);
                prop_assert_eq!(serial.tally, parallel.tally);
                prop_assert_eq!(serial.runs.len(), parallel.runs.len());
                for (x, y) in serial.runs.iter().zip(&parallel.runs) {
                    prop_assert_eq!(x.run, y.run);
                    prop_assert_eq!(x.outcome, y.outcome);
                    prop_assert_eq!(x.target_instance, y.target_instance);
                    prop_assert_eq!(x.mode, y.mode);
                    prop_assert_eq!(&x.injection, &y.injection);
                    prop_assert_eq!(&x.crash_message, &y.crash_message);
                }
                for (s, t) in serial.shards.iter().zip(&parallel.shards) {
                    prop_assert_eq!(s.eligible, t.eligible);
                    prop_assert_eq!(s.mode, t.mode);
                    prop_assert_eq!(s.tally, t.tally);
                }
            }};
        }

        check!(engine_apps::nyx());
        check!(engine_apps::qmc());
        check!(engine_apps::montage());
    }

    /// Engine law 6 (the resume law) at a random kill point: journal a
    /// full mixed campaign, truncate the journal to its state after
    /// the k-th record — plus an optional torn partial frame — exactly
    /// what a process killed mid-append leaves behind, and resume.
    /// Tallies, per-run records, and the FNV run digest must be
    /// byte-identical to the uninterrupted result, on all three paper
    /// apps, serial and parallel.
    #[test]
    fn resume_from_any_kill_point_matches_the_uninterrupted_run(
        seed in any::<u64>(),
        kill_sel in any::<proptest::sample::Index>(),
        tear in 0u64..6,
        parallel in any::<bool>(),
    ) {
        use ffis_core::engine::journal;
        use ffis_core::{CompletionStatus, FaultSignature, MixedCampaign, MixedCampaignConfig};

        macro_rules! check {
            ($name:expr, $app:expr) => {{
                let app = $app;
                let dir = std::env::temp_dir().join(format!(
                    "ffis-resume-prop-{}-{}-{}-{}",
                    std::process::id(), $name, seed, parallel
                ));
                std::fs::create_dir_all(&dir).unwrap();
                let jpath = dir.join("mixed.journal");
                let mk = |journaled: bool, resume: bool| {
                    let mut cfg = MixedCampaignConfig::new(vec![
                        FaultSignature::on_write(FaultModel::bit_flip()),
                        FaultSignature::on_read(FaultModel::bit_flip()),
                    ])
                    .with_runs(4)
                    .with_seed(seed)
                    .with_replay(true);
                    cfg.parallel = parallel;
                    if journaled {
                        cfg = cfg.with_journal(&jpath).with_resume(resume);
                    }
                    MixedCampaign::new(&app, cfg).run().unwrap()
                };
                let control = mk(false, false);
                let full = mk(true, false);
                prop_assert_eq!(full.run_digest(), control.run_digest());

                // Emulate death after k complete records (k ≥ 1; the
                // journal scan exposes each record's end offset for
                // exactly this), leaving a torn partial frame behind
                // when the kill point sits mid-append.
                let (_meta, ends) = journal::scan(&jpath).unwrap();
                prop_assert_eq!(ends.len(), control.runs.len());
                let k = 1 + kill_sel.index(ends.len());
                let cut =
                    if k < ends.len() { ends[k - 1] + tear.min(7) } else { ends[k - 1] };
                let file = std::fs::OpenOptions::new().write(true).open(&jpath).unwrap();
                file.set_len(cut).unwrap();
                drop(file);

                let resumed = mk(true, true);
                prop_assert_eq!(resumed.status, CompletionStatus::Complete);
                prop_assert_eq!(resumed.resumed, k, "the torn tail must not count");
                prop_assert_eq!(resumed.executed, control.runs.len() - k);
                prop_assert_eq!(&resumed.tally, &control.tally);
                prop_assert_eq!(resumed.run_digest(), control.run_digest());
                for (x, y) in resumed.runs.iter().zip(&control.runs) {
                    prop_assert_eq!(x, y, "resume law: records byte-identical");
                }
                std::fs::remove_dir_all(&dir).ok();
            }};
        }

        check!("nyx", engine_apps::nyx());
        check!("qmc", engine_apps::qmc());
        check!("montage", engine_apps::montage());
    }

    /// Engine law 4: bounding the record reservoir never changes a
    /// campaign's tally, and the kept records are a seed-stable
    /// subsequence of the keep-all campaign's records — identical
    /// content at the selected indices, identical selection across
    /// reruns.
    #[test]
    fn bounded_reservoir_is_a_stable_subset_with_identical_tallies(
        seed in any::<u64>(),
        runs in 8usize..20,
        keep in 1usize..6,
    ) {
        use ffis_core::{Campaign, CampaignConfig, FaultSignature};

        let app = engine_apps::nyx();
        let mk = |keep_runs: Option<usize>| {
            let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
                .with_runs(runs)
                .with_seed(seed)
                .with_keep_runs(keep_runs);
            Campaign::new(&app, cfg).run().unwrap()
        };
        let all = mk(None);
        let bounded = mk(Some(keep));
        prop_assert_eq!(all.runs.len(), runs);
        prop_assert_eq!(bounded.runs.len(), keep.min(runs));
        prop_assert_eq!(all.tally, bounded.tally, "tallies must cover dropped runs");
        // Each kept record equals the keep-all record at its index.
        for r in &bounded.runs {
            let full = &all.runs[r.run];
            prop_assert_eq!(r.outcome, full.outcome);
            prop_assert_eq!(r.target_instance, full.target_instance);
            prop_assert_eq!(&r.injection, &full.injection);
            prop_assert_eq!(&r.crash_message, &full.crash_message);
        }
        // Seed-stable selection.
        let again = mk(Some(keep));
        let kept: Vec<usize> = bounded.runs.iter().map(|r| r.run).collect();
        let kept_again: Vec<usize> = again.runs.iter().map(|r| r.run).collect();
        prop_assert_eq!(kept, kept_again);
    }
}
