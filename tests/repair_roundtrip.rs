//! Cross-crate repair integration: inject the paper's six SDC-prone
//! metadata faults through the FFIS machinery, run the §V-A
//! detection/auto-correction from hdf5lite, and verify the Nyx halo
//! analysis fully recovers.

use ffis_core::{locate_write, ByteFaultInjector, ByteFlip, FaultApp, TargetFilter, WritePick};
use ffis_vfs::{FfisFs, FileSystem, FileSystemExt, MemFs};
use nyx_sim::{find_halos, FieldConfig, HaloFinderConfig, NyxApp, NyxConfig, DATASET, PLOTFILE};
use std::sync::Arc;

fn app() -> NyxApp {
    NyxApp::new(NyxConfig {
        field: FieldConfig { n: 24, ..Default::default() },
        ..Default::default()
    })
}

/// Produce a faulty plotfile by injecting `flip` at the field named
/// `needle`, returning a filesystem holding the corrupted file.
fn corrupted_file(app: &NyxApp, needle: &str, flip: ByteFlip) -> MemFs {
    let spans = app.metadata_spans();
    let span = spans.iter().find(|s| s.name.contains(needle)).expect("field exists");
    let target = TargetFilter::PathSuffix(".h5".into());
    let (instance, _, _, _) =
        locate_write(app, &target, WritePick::Penultimate).expect("locatable");

    let ffs = FfisFs::mount(Arc::new(MemFs::new()));
    let inj = Arc::new(ByteFaultInjector::new(target, instance, span.start as usize, flip));
    ffs.attach(inj.clone());
    let _ = app.run(&*ffs); // crash outcomes still leave the file behind
    assert!(inj.record().is_some(), "fault must fire for {}", needle);

    let bytes = ffs.read_to_vec(PLOTFILE).expect("plotfile written");
    let fs = MemFs::new();
    fs.mkdir("/run", 0o755).unwrap();
    fs.write_file(PLOTFILE, &bytes).unwrap();
    fs
}

fn catalog_text(fs: &MemFs) -> Option<String> {
    let info = hdf5lite::read_dataset(fs, PLOTFILE, DATASET).ok()?;
    let dims = [info.dims[0] as usize, info.dims[1] as usize, info.dims[2] as usize];
    Some(find_halos(&info.values, dims, &HaloFinderConfig::default()).render())
}

#[test]
fn all_six_sdc_fields_repair_to_golden() {
    let app = app();
    let golden = app.run(&MemFs::new()).unwrap();
    assert!(!golden.catalog.halos.is_empty());

    let cases: [(&str, ByteFlip); 6] = [
        ("MantissaNormalization", ByteFlip::Xor(0x20)),
        ("ExponentLocation", ByteFlip::Xor(0x02)),
        ("MantissaLocation", ByteFlip::Xor(0x02)),
        ("MantissaSize", ByteFlip::Xor(0x04)),
        ("ExponentBias", ByteFlip::Xor(0x0C)),
        ("AddressOfRawData", ByteFlip::Xor(0x40)),
    ];
    for (needle, flip) in cases {
        let fs = corrupted_file(&app, needle, flip);
        // The corrupted analysis must differ from golden (else the
        // fault was a no-op and the test is vacuous).
        let before = catalog_text(&fs);
        assert_ne!(
            before.as_deref(),
            Some(golden.catalog_text.as_str()),
            "{} fault had no effect",
            needle
        );

        let report = hdf5lite::repair_file(&fs, PLOTFILE, DATASET, 1.0)
            .unwrap_or_else(|e| panic!("{} unrepairable: {}", needle, e));
        assert!(
            !report.corrections.is_empty(),
            "{} produced no corrections (diagnosis {:?})",
            needle,
            report.diagnosis
        );
        assert!((report.mean_after - 1.0).abs() < 1e-3, "{} mean {}", needle, report.mean_after);

        let after = catalog_text(&fs).expect("repaired file readable");
        assert_eq!(after, golden.catalog_text, "{} halo analysis not recovered", needle);
    }
}

#[test]
fn repair_is_idempotent() {
    let app = app();
    let fs = corrupted_file(&app, "ExponentBias", ByteFlip::Xor(0x0C));
    let first = hdf5lite::repair_file(&fs, PLOTFILE, DATASET, 1.0).unwrap();
    assert!(!first.corrections.is_empty());
    let second = hdf5lite::repair_file(&fs, PLOTFILE, DATASET, 1.0).unwrap();
    assert!(second.corrections.is_empty(), "second pass should be clean: {:?}", second.corrections);
    assert_eq!(second.diagnosis, hdf5lite::Diagnosis::Healthy);
}

#[test]
fn repair_does_not_touch_healthy_files() {
    let app = app();
    let fs = MemFs::new();
    let golden = app.run(&fs).unwrap();
    let before = fs.read_to_vec(PLOTFILE).unwrap();
    let report = hdf5lite::repair_file(&fs, PLOTFILE, DATASET, 1.0).unwrap();
    assert!(report.corrections.is_empty());
    assert_eq!(fs.read_to_vec(PLOTFILE).unwrap(), before, "healthy file modified");
    assert_eq!(catalog_text(&fs).unwrap(), golden.catalog_text);
}
