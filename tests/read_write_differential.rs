//! Differential pinning of the write-path campaigns across the
//! read-site refactor, plus determinism guarantees for mixed
//! read+write campaigns.
//!
//! The read-site fault work reshapes `FaultModel` naming, the
//! interceptor read surface, and the campaign driver. These tests pin
//! the *seeded* write-path behavior — outcome tallies, per-run
//! injection records, and crash messages — for the existing BF/SW/DW
//! campaigns on all three paper workloads, so any behavioral drift on
//! the write path shows up as a failed pin, not a silent shift in the
//! fig7 numbers.
//!
//! The pins are execution-strategy independent: the digests exclude
//! [`ExecutionMode`], so the same constants must hold when CI forces
//! the full-rerun path with `FFIS_REPLAY=0` (the replay/rerun
//! equivalence is pinned separately in `replay_equivalence.rs`).

use ffis_core::prelude::*;
use ffis_core::CampaignResult;
use montage_sim::MontageApp;
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};
use qmc_sim::{DmcConfig, QmcApp, QmcConfig, QmcaConfig, VmcConfig};

fn nyx() -> NyxApp {
    NyxApp::new(NyxConfig {
        field: FieldConfig { n: 16, ..Default::default() },
        ..Default::default()
    })
}

fn qmc() -> QmcApp {
    QmcApp::new(QmcConfig {
        vmc: VmcConfig { walkers: 64, warmup: 100, steps: 120, ..Default::default() },
        dmc: DmcConfig { target_walkers: 64, warmup: 0, steps: 200, ..Default::default() },
        qmca: QmcaConfig { equilibration_fraction: 0.2, min_rows: 20 },
        ..Default::default()
    })
}

/// FNV-1a accumulator shared by every pin digest in this file.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// FNV-1a over every strategy-independent per-run artifact.
fn digest(result: &CampaignResult) -> u64 {
    let mut h = Fnv::new();
    for r in &result.runs {
        h.eat(&(r.run as u64).to_le_bytes());
        h.eat(r.outcome.name().as_bytes());
        h.eat(&r.target_instance.to_le_bytes());
        match &r.injection {
            Some(i) => {
                h.eat(i.primitive.ffis_name().as_bytes());
                h.eat(&i.instance.to_le_bytes());
                h.eat(&i.prim_seq.to_le_bytes());
                h.eat(i.path.as_deref().unwrap_or("-").as_bytes());
                h.eat(&i.offset.unwrap_or(u64::MAX).to_le_bytes());
                h.eat(&(i.len as u64).to_le_bytes());
                h.eat(i.detail.as_bytes());
            }
            None => h.eat(b"no-fire"),
        }
        h.eat(r.crash_message.as_deref().unwrap_or("-").as_bytes());
    }
    h.0
}

/// One pinned cell: `(model label, benign, detected, sdc, crash,
/// no_fire, digest)`.
type Pin = (&'static str, u64, u64, u64, u64, u64, u64);

fn run_write_cell<A: FaultApp>(app: &A, model: FaultModel, runs: usize) -> CampaignResult {
    let cfg = CampaignConfig::new(FaultSignature::on_write(model)).with_runs(runs).with_seed(4242);
    Campaign::new(app, cfg).run().unwrap()
}

fn assert_pins<A: FaultApp>(app: &A, runs: usize, pins: &[Pin; 3]) {
    let models = [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()];
    let mut got = Vec::new();
    for (model, pin) in models.into_iter().zip(pins) {
        let r = run_write_cell(app, model, runs);
        got.push((
            pin.0,
            r.tally.benign,
            r.tally.detected,
            r.tally.sdc,
            r.tally.crash,
            r.tally.no_fire,
            digest(&r),
        ));
    }
    let rows: Vec<String> = got
        .iter()
        .map(|g| {
            format!("(\"{}\", {}, {}, {}, {}, {}, {:#018X}),", g.0, g.1, g.2, g.3, g.4, g.5, g.6)
        })
        .collect();
    assert_eq!(
        &got[..],
        &pins[..],
        "{} drifted from the pinned seeded write-path behavior.\nactual rows:\n{}",
        app.name(),
        rows.join("\n")
    );
}

#[test]
fn nyx_write_campaigns_pinned() {
    assert_pins(
        &nyx(),
        24,
        &[
            ("BF", 20, 0, 0, 4, 0, 0xA22F0AFA9A868E2F),
            ("SW", 21, 0, 0, 3, 0, 0x47E0D64B7DD7C6FC),
            ("DW", 8, 0, 2, 14, 0, 0x99FF8A516AB86DD4),
        ],
    );
}

#[test]
fn qmc_write_campaigns_pinned() {
    assert_pins(
        &qmc(),
        20,
        &[
            ("BF", 7, 13, 0, 0, 0, 0x42E87A86744BA08C),
            ("SW", 7, 13, 0, 0, 0, 0x17D4FE28EB3DB346),
            ("DW", 4, 11, 0, 5, 0, 0xCA311790CA5CA56B),
        ],
    );
}

/// Acceptance: read-site campaigns on all three apps take the
/// analyze-only fast path (their produce phases issue no read-back,
/// declared via `produce_read_count` and verified by the golden read
/// ledger) on every run, and the CSV row carries the mode.
#[test]
fn read_site_campaigns_analyze_only_on_all_three_apps() {
    fn check<A: FaultApp>(app: &A, runs: usize) {
        // The fast path is explicitly requested: the recorded mode
        // must be the analyze-only strategy, not "rerun(disabled)"
        // (which is what the FFIS_REPLAY=0 CI default would report).
        let cfg = CampaignConfig::new(FaultSignature::on_read(FaultModel::bit_flip()))
            .with_runs(runs)
            .with_seed(4242)
            .with_replay(true);
        let result = Campaign::new(app, cfg).run().unwrap();
        assert_eq!(result.mode, ExecutionMode::AnalyzeOnly, "{}", app.name());
        assert_eq!(result.tally.total() as usize, runs);
        for r in &result.runs {
            assert_eq!(r.mode, result.mode, "{} run {}", app.name(), r.run);
        }
        let row = result.csv_row(&app.name());
        assert!(row.ends_with("analyze-only"), "{}", row);
    }
    check(&nyx(), 8);
    check(&qmc(), 6);
    check(&MontageApp::paper_default(), 5);
}

/// The analyze-only differential pin: for every app × read-site model,
/// the analyze-only fast path and the full-rerun reference path must
/// agree **byte for byte** — tallies, target instances, full injection
/// records, crash messages, and the FNV digest over all of them. Both
/// paths are requested explicitly, so the same constants hold under
/// `FFIS_REPLAY=0` (where the suite default would disable the fast
/// path) and the replay default alike.
#[test]
fn analyze_only_equals_full_rerun_on_all_three_apps() {
    fn check<A: FaultApp>(app: &A, runs: usize) {
        for model in
            [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()]
        {
            let mk = |replay: bool| {
                let cfg = CampaignConfig::new(FaultSignature::on_read(model))
                    .with_runs(runs)
                    .with_seed(4242)
                    .with_replay(replay);
                Campaign::new(app, cfg).run().unwrap()
            };
            let fast = mk(true);
            let slow = mk(false);
            assert_eq!(fast.mode, ExecutionMode::AnalyzeOnly, "{} {:?}", app.name(), model);
            assert_eq!(
                slow.mode,
                ExecutionMode::FullRerun { reason: ReplayFallback::Disabled },
                "{} {:?}",
                app.name(),
                model
            );
            assert_eq!(fast.tally, slow.tally, "{} {:?}", app.name(), model);
            assert_eq!(fast.profile.eligible, slow.profile.eligible);
            for (f, s) in fast.runs.iter().zip(&slow.runs) {
                assert_eq!(f.outcome, s.outcome, "{} {:?} run {}", app.name(), model, f.run);
                assert_eq!(f.target_instance, s.target_instance);
                assert_eq!(f.injection, s.injection, "{} {:?} run {}", app.name(), model, f.run);
                assert_eq!(
                    f.crash_message,
                    s.crash_message,
                    "{} {:?} run {}",
                    app.name(),
                    model,
                    f.run
                );
            }
            assert_eq!(
                digest(&fast),
                digest(&slow),
                "{} {:?}: strategy-independent digests must collide",
                app.name(),
                model
            );
        }
    }
    check(&nyx(), 12);
    check(&qmc(), 8);
    check(&MontageApp::paper_default(), 6);
}

/// A seeded campaign mixing read- and write-site signatures yields the
/// same result — outcomes, per-run [`ExecutionMode`], instance
/// numbering, injection records — run twice and across `parallel`
/// on/off.
#[test]
fn mixed_read_write_campaign_is_deterministic() {
    use ffis_core::{MixedCampaign, MixedCampaignConfig};

    let app = nyx();
    let mk = |parallel: bool| {
        let mut cfg = MixedCampaignConfig::new(vec![
            FaultSignature::on_write(FaultModel::bit_flip()),
            FaultSignature::on_read(FaultModel::bit_flip()),
            FaultSignature::on_write(FaultModel::dropped_write()),
            FaultSignature::on_read(FaultModel::dropped_write()),
        ])
        .with_runs(16)
        .with_seed(777)
        .with_replay(true);
        cfg.parallel = parallel;
        MixedCampaign::new(&app, cfg).run().unwrap()
    };

    let a = mk(true);
    // The schedule interleaves strategies run-by-run: write shards
    // replay, read shards take the analyze-only fast path (Nyx's
    // produce issues no read-back).
    assert_eq!(a.shards[0].mode, ExecutionMode::Replay);
    assert_eq!(a.shards[1].mode, ExecutionMode::AnalyzeOnly);
    assert_eq!(a.shards[2].mode, ExecutionMode::Replay);
    assert_eq!(a.shards[3].mode, ExecutionMode::AnalyzeOnly);
    for r in &a.runs {
        assert_eq!(r.mode, a.shards[r.run % 4].mode, "run {}", r.run);
    }

    let b = mk(true); // run twice
    let c = mk(false); // parallel off
    for other in [&b, &c] {
        assert_eq!(a.tally, other.tally);
        assert_eq!(a.runs.len(), other.runs.len());
        for (x, y) in a.runs.iter().zip(&other.runs) {
            assert_eq!(x.run, y.run);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.target_instance, y.target_instance);
            assert_eq!(x.mode, y.mode);
            assert_eq!(x.injection, y.injection);
            assert_eq!(x.crash_message, y.crash_message);
        }
        for (s, t) in a.shards.iter().zip(&other.shards) {
            assert_eq!(s.eligible, t.eligible);
            assert_eq!(s.mode, t.mode);
            assert_eq!(s.tally, t.tally);
        }
    }
}

/// The engine refactor routes [`MixedCampaign`] through the shared
/// planner/executor/sink; this pins its seeded behavior — per-shard
/// tallies plus the strategy-independent FNV digest over every run —
/// so the interleaved schedule can never silently reorder or reseed
/// runs. The digest excludes [`ExecutionMode`], so the same constants
/// hold under `FFIS_REPLAY=0` (all shards rerun) by the replay
/// equivalence law.
#[test]
fn mixed_campaign_pinned_through_engine() {
    use ffis_core::{MixedCampaign, MixedCampaignConfig};

    let app = nyx();
    let cfg = MixedCampaignConfig::new(vec![
        FaultSignature::on_write(FaultModel::bit_flip()),
        FaultSignature::on_read(FaultModel::bit_flip()),
        FaultSignature::on_write(FaultModel::dropped_write()),
        FaultSignature::on_read(FaultModel::dropped_write()),
    ])
    .with_runs(16)
    .with_seed(4242);
    let result = MixedCampaign::new(&app, cfg).run().unwrap();

    let got_shards: Vec<(u64, u64, u64, u64)> = result
        .shards
        .iter()
        .map(|s| (s.tally.benign, s.tally.detected, s.tally.sdc, s.tally.crash))
        .collect();
    let mixed = CampaignResult {
        tally: result.tally,
        runs: result.runs.clone(),
        profile: result.profile.clone(),
        mode: ExecutionMode::Replay,
        plan_fingerprint: result.plan_fingerprint,
        status: result.status,
        executed: result.executed,
        resumed: result.resumed,
        memo: ffis_core::MemoReport::default(),
        replay_opt: ffis_core::ReplayOptReport::default(),
    };
    let got_digest = digest(&mixed);
    assert_eq!(
        (&got_shards[..], got_digest),
        (&MIXED_PIN_SHARDS[..], MIXED_PIN_DIGEST),
        "mixed campaign drifted from its pinned seeded behavior.\nactual shards: {:?}\nactual digest: {:#018X}",
        got_shards,
        got_digest
    );
}

/// Pinned per-shard `(benign, detected, sdc, crash)` counts for
/// [`mixed_campaign_pinned_through_engine`].
const MIXED_PIN_SHARDS: [(u64, u64, u64, u64); 4] =
    [(1, 0, 0, 3), (4, 0, 0, 0), (2, 0, 2, 0), (0, 0, 0, 4)];
/// Pinned run digest for [`mixed_campaign_pinned_through_engine`].
const MIXED_PIN_DIGEST: u64 = 0x5858_4833_D706_06D6;

/// The metadata scanner now executes through the same engine; this
/// pins a seeded byte scan on the Nyx plotfile — tally plus an FNV
/// digest over `(byte index, file offset, outcome, crash message)` —
/// under *both* execution strategies, which must agree with each other
/// and with the pin (so `FFIS_REPLAY=0` runs reproduce it too).
#[test]
fn scan_detailed_pinned_through_engine() {
    use ffis_core::{scan_detailed, ScanConfig, TargetFilter};

    let app = nyx();
    let run = |replay: bool| {
        let mut cfg = ScanConfig::new(TargetFilter::PathSuffix(".h5".into()));
        cfg.stride = 7;
        cfg.replay = replay;
        scan_detailed(&app, &cfg).unwrap()
    };
    let fast = run(true);
    let slow = run(false);
    assert!(fast.used_replay() && !slow.used_replay());

    let scan_digest = |r: &ffis_core::DetailedScanResult<nyx_sim::NyxOutput>| -> u64 {
        let mut h = Fnv::new();
        for b in r.runs.iter().map(|run| &run.byte) {
            h.eat(&(b.byte_index as u64).to_le_bytes());
            h.eat(&b.file_offset.to_le_bytes());
            h.eat(b.outcome.name().as_bytes());
            h.eat(b.crash_message.as_deref().unwrap_or("-").as_bytes());
        }
        h.0
    };
    let (df, ds) = (scan_digest(&fast), scan_digest(&slow));
    assert_eq!(df, ds, "replay and rerun scans must digest identically");
    assert_eq!(fast.tally, slow.tally);
    let got = (
        fast.tally.benign,
        fast.tally.detected,
        fast.tally.sdc,
        fast.tally.crash,
        fast.write_instance,
        df,
    );
    assert_eq!(
        got, SCAN_PIN,
        "metadata scan drifted from its pinned seeded behavior.\nactual: ({}, {}, {}, {}, {}, {:#018X})",
        got.0, got.1, got.2, got.3, got.4, got.5
    );
}

/// Pinned `(benign, detected, sdc, crash, write_instance, digest)` for
/// [`scan_detailed_pinned_through_engine`].
const SCAN_PIN: (u64, u64, u64, u64, u64, u64) = (271, 0, 0, 41, 5, 0xD8BC_0A5D_7850_AB0C);

#[test]
fn montage_write_campaigns_pinned() {
    assert_pins(
        &MontageApp::paper_default(),
        12,
        &[
            ("BF", 10, 0, 2, 0, 0, 0xEE802CFD59525396),
            ("SW", 4, 3, 5, 0, 0, 0xEA549AE391419E34),
            ("DW", 0, 2, 2, 8, 0, 0x813934E121DDE67C),
        ],
    );
}
