//! End-to-end FFIS workflow integration tests: the full Figure 4
//! pipeline (generator → profiler → injector → classification) driven
//! against all three real application workloads at reduced scale.

use ffis_core::prelude::*;
use ffis_core::{FaultConfig, IoProfiler};
use ffis_vfs::{MemFs, Primitive};
use montage_sim::{MontageApp, Stage};
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};
use qmc_sim::{DmcConfig, QmcApp, QmcConfig, QmcaConfig, VmcConfig};

fn small_nyx() -> NyxApp {
    NyxApp::new(NyxConfig {
        field: FieldConfig { n: 24, ..Default::default() },
        ..Default::default()
    })
}

fn small_qmc() -> QmcApp {
    QmcApp::new(QmcConfig {
        vmc: VmcConfig { walkers: 64, warmup: 100, steps: 120, ..Default::default() },
        dmc: DmcConfig { target_walkers: 64, warmup: 0, steps: 200, ..Default::default() },
        qmca: QmcaConfig { equilibration_fraction: 0.2, min_rows: 20 },
        ..Default::default()
    })
}

#[test]
fn generator_profiler_injector_chain_on_nyx() {
    // Fault generator: user config -> validated signature.
    let sig = FaultConfig::model("dropped").build().expect("valid signature");
    assert_eq!(sig.model, FaultModel::DroppedWrite);

    // I/O profiler: fault-free run, dynamic counts.
    let app = small_nyx();
    let profiler = IoProfiler::new(Primitive::Write, sig.target.clone());
    let (profile, golden) = profiler
        .profile(|fs| {
            use ffis_core::FaultApp;
            app.run(fs)
        })
        .expect("profiling run");
    assert!(profile.eligible > 5, "Nyx must issue many writes");
    assert!(!golden.catalog_text.is_empty());

    // Campaign: inject across the instance space.
    let cfg = CampaignConfig::new(sig).with_runs(30).with_seed(5);
    let result = Campaign::new(&app, cfg).run().expect("campaign");
    assert_eq!(result.tally.total(), 30);
    assert_eq!(result.profile.eligible, profile.eligible);
    // Every run fired (instance space matches the profile).
    assert!(result.runs.iter().all(|r| r.injection.is_some() || r.outcome == Outcome::Crash));
}

#[test]
fn all_three_apps_complete_campaigns() {
    let nyx = small_nyx();
    let qmc = small_qmc();
    let montage = MontageApp::paper_default();

    let sig = FaultSignature::on_write(FaultModel::bit_flip());
    for (name, tally) in [
        (
            "NYX",
            Campaign::new(&nyx, CampaignConfig::new(sig.clone()).with_runs(20).with_seed(1))
                .run()
                .unwrap()
                .tally,
        ),
        (
            "QMC",
            Campaign::new(&qmc, CampaignConfig::new(sig.clone()).with_runs(20).with_seed(2))
                .run()
                .unwrap()
                .tally,
        ),
        (
            "MT",
            Campaign::new(&montage, CampaignConfig::new(sig.clone()).with_runs(20).with_seed(3))
                .run()
                .unwrap()
                .tally,
        ),
    ] {
        assert_eq!(tally.total(), 20, "{} incomplete: {}", name, tally);
    }
}

#[test]
fn montage_stage_scoping_respects_filters() {
    let montage = MontageApp::paper_default();
    for stage in Stage::ALL {
        let mut sig = FaultSignature::on_write(FaultModel::bit_flip());
        sig.target = MontageApp::stage_filter(stage);
        let cfg = CampaignConfig::new(sig).with_runs(5).with_seed(stage.label().len() as u64);
        let result = Campaign::new(&montage, cfg).run().expect("stage campaign");
        for run in &result.runs {
            if let Some(rec) = &run.injection {
                let path = rec.path.as_deref().unwrap_or("");
                assert!(
                    MontageApp::stage_filter(stage).matches(Some(path)),
                    "{} injection escaped its stage: {}",
                    stage.label(),
                    path
                );
            }
        }
    }
}

#[test]
fn fault_free_campaign_runs_are_benign() {
    // Arm an injector at an instance beyond the write count: no fault
    // fires and every run must classify benign (the framework itself
    // introduces no perturbation — transparency, R1).
    use ffis_core::{ArmedInjector, FaultApp};
    use std::sync::Arc;

    let app = small_nyx();
    let golden = app.run(&MemFs::new()).unwrap();
    for seed in 0..3 {
        let inj = Arc::new(ArmedInjector::new(
            FaultSignature::on_write(FaultModel::bit_flip()),
            1_000_000,
            seed,
        ));
        let ffs = ffis_vfs::FfisFs::mount(Arc::new(MemFs::new()));
        ffs.attach(inj.clone());
        let out = app.run(&*ffs).unwrap();
        assert!(!inj.fired());
        assert_eq!(app.classify(&golden, &out), Outcome::Benign);
    }
}

#[test]
fn qmc_outcome_depends_on_which_file_is_hit() {
    use ffis_core::{ArmedInjector, FaultApp};
    use std::sync::Arc;

    let app = small_qmc();
    let golden = app.run(&MemFs::new()).unwrap();

    // Fault scoped to s000 only: the classified s001 is untouched.
    let mut sig = FaultSignature::on_write(FaultModel::bit_flip());
    sig.target = TargetFilter::PathContains("s000.scalar".into());
    let inj = Arc::new(ArmedInjector::new(sig, 1, 11));
    let ffs = ffis_vfs::FfisFs::mount(Arc::new(MemFs::new()));
    ffs.attach(inj.clone());
    let out = app.run(&*ffs).unwrap();
    assert!(inj.fired());
    assert_eq!(app.classify(&golden, &out), Outcome::Benign);

    // Fault scoped to s001: the artifact differs.
    let mut sig = FaultSignature::on_write(FaultModel::bit_flip());
    sig.target = TargetFilter::PathContains("s001.scalar".into());
    let inj = Arc::new(ArmedInjector::new(sig, 2, 12));
    let ffs = ffis_vfs::FfisFs::mount(Arc::new(MemFs::new()));
    ffs.attach(inj.clone());
    let out = app.run(&*ffs).unwrap();
    assert!(inj.fired());
    assert_ne!(app.classify(&golden, &out), Outcome::Benign);
}
