//! Equivalence guarantees for the checkpointed replay fast path: on
//! all three paper workloads (Nyx, QMCPACK, Montage), the golden-trace
//! replay engine must reproduce the legacy full-rerun scan and
//! campaign *byte for byte* — same outcomes, same injection records,
//! same crash messages, same application outputs — while skipping the
//! redundant fault-free application work. The fallback paths are
//! exercised too: every fallback must carry its reason in
//! [`ExecutionMode::FullRerun`], never silently.

use ffis_core::prelude::*;
use ffis_core::{scan_detailed, FlipMode, ScanConfig};
use ffis_vfs::FileSystem;
use montage_sim::MontageApp;
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};
use qmc_sim::{DmcConfig, QmcApp, QmcConfig, QmcaConfig, VmcConfig};

fn nyx() -> NyxApp {
    NyxApp::new(NyxConfig {
        field: FieldConfig { n: 16, ..Default::default() },
        ..Default::default()
    })
}

fn qmc() -> QmcApp {
    QmcApp::new(QmcConfig {
        vmc: VmcConfig { walkers: 64, warmup: 100, steps: 120, ..Default::default() },
        dmc: DmcConfig { target_walkers: 64, warmup: 0, steps: 200, ..Default::default() },
        qmca: QmcaConfig { equilibration_fraction: 0.2, min_rows: 20 },
        ..Default::default()
    })
}

fn scan_cfg(replay: bool, stride: usize) -> ScanConfig {
    let mut cfg = ScanConfig::new(TargetFilter::PathSuffix(".h5".into()));
    cfg.stride = stride;
    cfg.flip = FlipMode::TwoBitsRandom;
    cfg.replay = replay;
    cfg
}

#[test]
fn replay_scan_equals_legacy_scan_bytewise() {
    let a = nyx();
    let fast = scan_detailed(&a, &scan_cfg(true, 8)).unwrap();
    let slow = scan_detailed(&a, &scan_cfg(false, 8)).unwrap();
    assert!(fast.used_replay(), "two-phase apps engage the fast path by construction");
    assert!(!slow.used_replay());

    assert_eq!(fast.write_offset, slow.write_offset);
    assert_eq!(fast.write_len, slow.write_len);
    assert_eq!(fast.write_instance, slow.write_instance);
    assert_eq!(fast.tally, slow.tally);
    assert_eq!(fast.runs.len(), slow.runs.len());
    for (f, s) in fast.runs.iter().zip(&slow.runs) {
        assert_eq!(f.byte.byte_index, s.byte.byte_index);
        assert_eq!(f.byte.file_offset, s.byte.file_offset);
        assert_eq!(
            f.byte.outcome, s.byte.outcome,
            "byte {} diverged: replay={:?} legacy={:?}",
            f.byte.byte_index, f.byte.outcome, s.byte.outcome
        );
        assert_eq!(f.byte.crash_message, s.byte.crash_message, "byte {}", f.byte.byte_index);
        // The propagated faulty outputs must agree too, not just the
        // collapsed outcome class.
        match (&f.output, &s.output) {
            (Some(fo), Some(so)) => {
                assert_eq!(fo.catalog_text, so.catalog_text, "byte {}", f.byte.byte_index);
                assert_eq!(fo.dims, so.dims);
            }
            (None, None) => {}
            other => panic!(
                "byte {}: output presence diverged ({:?})",
                f.byte.byte_index,
                (other.0.is_some(), other.1.is_some())
            ),
        }
    }
}

#[test]
fn replay_scan_is_deterministic_serial_vs_parallel() {
    let a = nyx();
    let mut serial = scan_cfg(true, 16);
    serial.parallel = false;
    let mut parallel = scan_cfg(true, 16);
    parallel.parallel = true;
    let rs = scan_detailed(&a, &serial).unwrap();
    let rp = scan_detailed(&a, &parallel).unwrap();
    assert!(rs.used_replay() && rp.used_replay());
    assert_eq!(rs.tally, rp.tally);
    for (x, y) in rs.runs.iter().zip(&rp.runs) {
        assert_eq!(x.byte.byte_index, y.byte.byte_index);
        assert_eq!(x.byte.outcome, y.byte.outcome);
        assert_eq!(x.byte.crash_message, y.byte.crash_message);
    }
}

fn campaign<A: FaultApp>(
    app: &A,
    model: FaultModel,
    target: TargetFilter,
    runs: usize,
    replay: bool,
    parallel: bool,
) -> CampaignResult {
    let mut sig = FaultSignature::on_write(model);
    sig.target = target;
    let mut cfg = CampaignConfig::new(sig).with_runs(runs).with_seed(4242).with_replay(replay);
    cfg.parallel = parallel;
    Campaign::new(app, cfg).run().unwrap()
}

/// The heart of the equivalence suite: for one app and one fault
/// model, the checkpointed-replay campaign and the full-rerun campaign
/// must agree on every per-run artifact — outcome, sampled instance,
/// full injection record (primitive, instance, prim_seq, path, offset,
/// len, damage detail), and crash message.
fn assert_campaign_paths_agree<A: FaultApp>(
    app: &A,
    model: FaultModel,
    target: TargetFilter,
    runs: usize,
) {
    let fast = campaign(app, model, target.clone(), runs, true, true);
    let slow = campaign(app, model, target, runs, false, true);
    assert_eq!(fast.mode, ExecutionMode::Replay, "{} {:?}", app.name(), model);
    assert_eq!(
        slow.mode,
        ExecutionMode::FullRerun { reason: ReplayFallback::Disabled },
        "{} {:?}",
        app.name(),
        model
    );
    assert_eq!(fast.tally, slow.tally, "{} {:?}", app.name(), model);
    assert_eq!(fast.profile.eligible, slow.profile.eligible);
    for (f, s) in fast.runs.iter().zip(&slow.runs) {
        assert_eq!(f.outcome, s.outcome, "{} {:?} run {}", app.name(), model, f.run);
        assert_eq!(f.target_instance, s.target_instance);
        assert_eq!(f.injection, s.injection, "{} {:?} run {}", app.name(), model, f.run);
        assert_eq!(f.crash_message, s.crash_message, "{} {:?} run {}", app.name(), model, f.run);
    }
}

#[test]
fn replay_campaign_equals_legacy_campaign_for_nyx() {
    let a = nyx();
    for model in [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()] {
        assert_campaign_paths_agree(&a, model, TargetFilter::Any, 30);
    }
}

#[test]
fn replay_campaign_equals_legacy_campaign_for_qmc() {
    let a = qmc();
    for model in [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()] {
        assert_campaign_paths_agree(&a, model, TargetFilter::Any, 25);
    }
}

#[test]
fn replay_campaign_equals_legacy_campaign_for_montage() {
    let a = MontageApp::paper_default();
    for model in [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()] {
        assert_campaign_paths_agree(&a, model, TargetFilter::Any, 18);
    }
}

#[test]
fn replay_campaign_equals_legacy_campaign_per_montage_stage() {
    // The paper's MT1..MT4 cells scope injection to one stage's
    // output directory; the equivalence must survive path filtering
    // (instance renumbering against filtered traces).
    let a = MontageApp::paper_default();
    for stage in montage_sim::Stage::ALL {
        assert_campaign_paths_agree(
            &a,
            FaultModel::dropped_write(),
            MontageApp::stage_filter(stage),
            10,
        );
    }
}

#[test]
fn replay_campaign_is_deterministic_serial_vs_parallel() {
    let a = nyx();
    let serial = campaign(&a, FaultModel::bit_flip(), TargetFilter::Any, 30, true, false);
    let parallel = campaign(&a, FaultModel::bit_flip(), TargetFilter::Any, 30, true, true);
    assert!(serial.used_replay() && parallel.used_replay());
    assert_eq!(serial.tally, parallel.tally);
    for (x, y) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.target_instance, y.target_instance);
        assert_eq!(x.injection, y.injection);
    }
}

/// The no-fire accounting (armed instance never executed) must agree
/// between the two execution strategies.
#[test]
fn replay_campaign_counts_no_fire_like_legacy() {
    let a = nyx();
    let fast = campaign(&a, FaultModel::bit_flip(), TargetFilter::Any, 30, true, true);
    let slow = campaign(&a, FaultModel::bit_flip(), TargetFilter::Any, 30, false, true);
    assert_eq!(fast.tally.no_fire, slow.tally.no_fire);
}

/// Two-phase app whose golden run *attempts* an eligible write that
/// fails (write on a read-only descriptor, error tolerated).
/// Interceptor-level counters include the attempt; the success-only
/// golden trace does not — replay instance numbering would diverge
/// from the injectors', so both fast paths must refuse to engage, with
/// the campaign recording the `TraceMismatch` reason.
struct FailedProbeApp;

impl FaultApp for FailedProbeApp {
    type Output = Vec<u8>;

    fn produce(&self, fs: &dyn FileSystem) -> Result<(), String> {
        use ffis_vfs::{FileSystemExt, OpenFlags};
        fs.write_file_chunked("/probe.bin", &[5u8; 8192], 4096).map_err(|e| e.to_string())?;
        // Best-effort probe write on a read-only descriptor: fails
        // with EROFS, and the app shrugs it off.
        let fd = fs.open("/probe.bin", OpenFlags::read_only()).map_err(|e| e.to_string())?;
        let _ = fs.pwrite(fd, b"probe", 0);
        fs.release(fd).map_err(|e| e.to_string())?;
        fs.write_file("/probe.meta", &[9u8; 64]).map_err(|e| e.to_string())
    }

    fn analyze(&self, fs: &dyn FileSystem, _golden: Option<&Vec<u8>>) -> Result<Vec<u8>, String> {
        use ffis_vfs::FileSystemExt;
        fs.read_to_vec("/probe.bin").map_err(|e| e.to_string())
    }

    fn classify(&self, golden: &Vec<u8>, faulty: &Vec<u8>) -> Outcome {
        if golden == faulty {
            Outcome::Benign
        } else {
            Outcome::Sdc
        }
    }

    fn name(&self) -> String {
        "FAILPROBE".into()
    }
}

#[test]
fn failed_golden_writes_disable_replay_and_paths_still_agree() {
    let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
        .with_runs(20)
        .with_seed(11)
        .with_replay(true);
    let fast = Campaign::new(&FailedProbeApp, cfg.clone()).run().unwrap();
    assert_eq!(
        fast.mode,
        ExecutionMode::FullRerun { reason: ReplayFallback::TraceMismatch },
        "attempted/recorded write-count mismatch must disable replay, with the reason recorded"
    );
    let slow = Campaign::new(&FailedProbeApp, cfg.with_replay(false)).run().unwrap();
    assert_eq!(fast.tally, slow.tally);
    for (f, s) in fast.runs.iter().zip(&slow.runs) {
        assert_eq!(f.target_instance, s.target_instance);
        assert_eq!(f.injection, s.injection);
    }

    let mut scfg = ScanConfig::new(TargetFilter::Any);
    scfg.pick = ffis_core::WritePick::Nth(1);
    scfg.stride = 512;
    let scan = scan_detailed(&FailedProbeApp, &scfg).unwrap();
    assert!(!scan.used_replay(), "scan must also fall back on the count mismatch");
}

#[test]
fn failed_nonmatching_writes_also_disable_replay() {
    // Scope the signature so the failed probe write sits *outside* the
    // eligible population: the eligible counts then agree between
    // profiler and trace, but the mount's total Write counter (the
    // `prim_seq` source) still includes the failed attempt — replay
    // would renumber `prim_seq` silently, so the gate must refuse.
    let mut sig = FaultSignature::on_write(FaultModel::bit_flip());
    sig.target = TargetFilter::PathSuffix(".meta".into());
    let cfg = CampaignConfig::new(sig).with_runs(10).with_seed(13).with_replay(true);
    let fast = Campaign::new(&FailedProbeApp, cfg.clone()).run().unwrap();
    assert_eq!(
        fast.mode,
        ExecutionMode::FullRerun { reason: ReplayFallback::TraceMismatch },
        "total-write-count mismatch must disable replay even when eligible counts agree"
    );
    let slow = Campaign::new(&FailedProbeApp, cfg.with_replay(false)).run().unwrap();
    assert_eq!(fast.tally, slow.tally);
    for (f, s) in fast.runs.iter().zip(&slow.runs) {
        assert_eq!(f.injection, s.injection);
    }
}

/// Parameter faults (mknod/chmod/truncate) can make a replayed op fail
/// where the real application would have tolerated the error — the
/// campaign replay gate therefore only admits Write-primitive faults,
/// and says so in the recorded mode.
#[test]
fn param_fault_campaigns_never_use_replay() {
    use ffis_vfs::Primitive;
    let a = nyx();
    let sig = FaultSignature {
        model: FaultModel::bit_flip(),
        primitive: Primitive::Truncate,
        target: TargetFilter::Any,
    };
    let cfg = CampaignConfig::new(sig).with_runs(5).with_seed(3).with_replay(true);
    // Nyx never truncates, so there are no eligible instances — but
    // the gate must reject the primitive before anything else runs.
    match Campaign::new(&a, cfg).run() {
        Ok(result) => assert_eq!(
            result.mode,
            ExecutionMode::FullRerun { reason: ReplayFallback::NonWritePrimitive }
        ),
        Err(ffis_core::CampaignError::NoEligibleInstances) => {}
        Err(other) => panic!("unexpected {:?}", other),
    }
}
