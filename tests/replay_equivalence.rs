//! Equivalence guarantees for the fork+replay fast path: on the
//! hdf5lite-backed Nyx workload, the golden-trace replay engine must
//! reproduce the legacy full-rerun scan and campaign *byte for byte* —
//! same outcomes, same injection records, same crash messages, same
//! application outputs — while skipping the redundant fault-free
//! application work.

use ffis_core::prelude::*;
use ffis_core::{scan_detailed, FlipMode, ScanConfig};
use ffis_vfs::FileSystem;
use nyx_sim::{FieldConfig, NyxApp, NyxConfig};

fn app() -> NyxApp {
    NyxApp::new(NyxConfig {
        field: FieldConfig { n: 16, ..Default::default() },
        ..Default::default()
    })
}

fn scan_cfg(replay: bool, stride: usize) -> ScanConfig {
    let mut cfg = ScanConfig::new(TargetFilter::PathSuffix(".h5".into()));
    cfg.stride = stride;
    cfg.flip = FlipMode::TwoBitsRandom;
    cfg.replay = replay;
    cfg
}

#[test]
fn replay_scan_equals_legacy_scan_bytewise() {
    let a = app();
    let fast = scan_detailed(&a, &scan_cfg(true, 8)).unwrap();
    let slow = scan_detailed(&a, &scan_cfg(false, 8)).unwrap();
    assert!(fast.used_replay, "Nyx exposes verify; the fast path must engage");
    assert!(!slow.used_replay);

    assert_eq!(fast.write_offset, slow.write_offset);
    assert_eq!(fast.write_len, slow.write_len);
    assert_eq!(fast.write_instance, slow.write_instance);
    assert_eq!(fast.tally, slow.tally);
    assert_eq!(fast.runs.len(), slow.runs.len());
    for (f, s) in fast.runs.iter().zip(&slow.runs) {
        assert_eq!(f.byte.byte_index, s.byte.byte_index);
        assert_eq!(f.byte.file_offset, s.byte.file_offset);
        assert_eq!(
            f.byte.outcome, s.byte.outcome,
            "byte {} diverged: replay={:?} legacy={:?}",
            f.byte.byte_index, f.byte.outcome, s.byte.outcome
        );
        assert_eq!(f.byte.crash_message, s.byte.crash_message, "byte {}", f.byte.byte_index);
        // The propagated faulty outputs must agree too, not just the
        // collapsed outcome class.
        match (&f.output, &s.output) {
            (Some(fo), Some(so)) => {
                assert_eq!(fo.catalog_text, so.catalog_text, "byte {}", f.byte.byte_index);
                assert_eq!(fo.dims, so.dims);
            }
            (None, None) => {}
            other => panic!(
                "byte {}: output presence diverged ({:?})",
                f.byte.byte_index,
                (other.0.is_some(), other.1.is_some())
            ),
        }
    }
}

#[test]
fn replay_scan_is_deterministic_serial_vs_parallel() {
    let a = app();
    let mut serial = scan_cfg(true, 16);
    serial.parallel = false;
    let mut parallel = scan_cfg(true, 16);
    parallel.parallel = true;
    let rs = scan_detailed(&a, &serial).unwrap();
    let rp = scan_detailed(&a, &parallel).unwrap();
    assert!(rs.used_replay && rp.used_replay);
    assert_eq!(rs.tally, rp.tally);
    for (x, y) in rs.runs.iter().zip(&rp.runs) {
        assert_eq!(x.byte.byte_index, y.byte.byte_index);
        assert_eq!(x.byte.outcome, y.byte.outcome);
        assert_eq!(x.byte.crash_message, y.byte.crash_message);
    }
}

fn campaign(
    a: &NyxApp,
    model: FaultModel,
    replay: bool,
    parallel: bool,
) -> ffis_core::CampaignResult {
    let mut cfg = CampaignConfig::new(FaultSignature::on_write(model))
        .with_runs(30)
        .with_seed(4242)
        .with_replay(replay);
    cfg.parallel = parallel;
    Campaign::new(a, cfg).run().unwrap()
}

#[test]
fn replay_campaign_equals_legacy_campaign_for_all_models() {
    let a = app();
    for model in [FaultModel::bit_flip(), FaultModel::shorn_write(), FaultModel::dropped_write()] {
        let fast = campaign(&a, model, true, true);
        let slow = campaign(&a, model, false, true);
        assert!(fast.used_replay, "{:?}", model);
        assert!(!slow.used_replay);
        assert_eq!(fast.tally, slow.tally, "{:?}", model);
        assert_eq!(fast.profile.eligible, slow.profile.eligible);
        for (f, s) in fast.runs.iter().zip(&slow.runs) {
            assert_eq!(f.outcome, s.outcome, "{:?} run {}", model, f.run);
            assert_eq!(f.target_instance, s.target_instance);
            // Full injection-record equality: primitive, instance,
            // prim_seq, path, offset, len, damage detail.
            assert_eq!(f.injection, s.injection, "{:?} run {}", model, f.run);
        }
    }
}

#[test]
fn replay_campaign_is_deterministic_serial_vs_parallel() {
    let a = app();
    let serial = campaign(&a, FaultModel::bit_flip(), true, false);
    let parallel = campaign(&a, FaultModel::bit_flip(), true, true);
    assert!(serial.used_replay && parallel.used_replay);
    assert_eq!(serial.tally, parallel.tally);
    for (x, y) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.target_instance, y.target_instance);
        assert_eq!(x.injection, y.injection);
    }
}

/// An app with no verify phase: the fast path must fall back politely.
struct NoVerifyApp;

impl FaultApp for NoVerifyApp {
    type Output = Vec<u8>;

    fn run(&self, fs: &dyn FileSystem) -> Result<Vec<u8>, String> {
        use ffis_vfs::FileSystemExt;
        fs.write_file_chunked("/d.bin", &[3u8; 8192], 4096).map_err(|e| e.to_string())?;
        fs.write_file("/d.meta", &[7u8; 64]).map_err(|e| e.to_string())?;
        fs.read_to_vec("/d.bin").map_err(|e| e.to_string())
    }

    fn classify(&self, golden: &Vec<u8>, faulty: &Vec<u8>) -> Outcome {
        if golden == faulty {
            Outcome::Benign
        } else {
            Outcome::Sdc
        }
    }

    fn name(&self) -> String {
        "NOVERIFY".into()
    }
}

#[test]
fn apps_without_verify_fall_back_to_full_reruns() {
    let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
        .with_runs(10)
        .with_seed(7)
        .with_replay(true);
    let result = Campaign::new(&NoVerifyApp, cfg).run().unwrap();
    assert!(!result.used_replay, "no verify phase -> reference path");
    assert_eq!(result.tally.total(), 10);

    let mut scfg = ScanConfig::new(TargetFilter::Any);
    scfg.stride = 16;
    scfg.replay = true;
    let scan = scan_detailed(&NoVerifyApp, &scfg).unwrap();
    assert!(!scan.used_replay);
    assert_eq!(scan.tally.total(), scan.runs.len() as u64);
}

/// The no-fire accounting (armed instance never executed) must agree
/// between the two execution strategies.
#[test]
fn replay_campaign_counts_no_fire_like_legacy() {
    let a = app();
    let fast = campaign(&a, FaultModel::bit_flip(), true, true);
    let slow = campaign(&a, FaultModel::bit_flip(), false, true);
    assert_eq!(fast.tally.no_fire, slow.tally.no_fire);
}

/// Verify-capable app whose golden run *attempts* an eligible write
/// that fails (write on a read-only descriptor, error tolerated).
/// Interceptor-level counters include the attempt; the success-only
/// golden trace does not — replay instance numbering would diverge
/// from the injectors', so both fast paths must refuse to engage.
struct FailedProbeApp;

impl FailedProbeApp {
    fn read_back(&self, fs: &dyn FileSystem) -> Result<Vec<u8>, String> {
        use ffis_vfs::FileSystemExt;
        fs.read_to_vec("/probe.bin").map_err(|e| e.to_string())
    }
}

impl FaultApp for FailedProbeApp {
    type Output = Vec<u8>;

    fn run(&self, fs: &dyn FileSystem) -> Result<Vec<u8>, String> {
        use ffis_vfs::{FileSystemExt, OpenFlags};
        fs.write_file_chunked("/probe.bin", &[5u8; 8192], 4096).map_err(|e| e.to_string())?;
        // Best-effort probe write on a read-only descriptor: fails
        // with EROFS, and the app shrugs it off.
        let fd = fs.open("/probe.bin", OpenFlags::read_only()).map_err(|e| e.to_string())?;
        let _ = fs.pwrite(fd, b"probe", 0);
        fs.release(fd).map_err(|e| e.to_string())?;
        fs.write_file("/probe.meta", &[9u8; 64]).map_err(|e| e.to_string())?;
        self.read_back(fs)
    }

    fn verify(&self, fs: &dyn FileSystem, _golden: &Vec<u8>) -> Option<Result<Vec<u8>, String>> {
        Some(self.read_back(fs))
    }

    fn classify(&self, golden: &Vec<u8>, faulty: &Vec<u8>) -> Outcome {
        if golden == faulty {
            Outcome::Benign
        } else {
            Outcome::Sdc
        }
    }

    fn name(&self) -> String {
        "FAILPROBE".into()
    }
}

#[test]
fn failed_golden_writes_disable_replay_and_paths_still_agree() {
    let cfg = CampaignConfig::new(FaultSignature::on_write(FaultModel::bit_flip()))
        .with_runs(20)
        .with_seed(11)
        .with_replay(true);
    let fast = Campaign::new(&FailedProbeApp, cfg.clone()).run().unwrap();
    assert!(!fast.used_replay, "attempted/recorded write-count mismatch must disable replay");
    let slow = Campaign::new(&FailedProbeApp, cfg.with_replay(false)).run().unwrap();
    assert_eq!(fast.tally, slow.tally);
    for (f, s) in fast.runs.iter().zip(&slow.runs) {
        assert_eq!(f.target_instance, s.target_instance);
        assert_eq!(f.injection, s.injection);
    }

    let mut scfg = ScanConfig::new(TargetFilter::Any);
    scfg.pick = ffis_core::WritePick::Nth(1);
    scfg.stride = 512;
    let scan = scan_detailed(&FailedProbeApp, &scfg).unwrap();
    assert!(!scan.used_replay, "scan must also fall back on the count mismatch");
}

/// Parameter faults (mknod/chmod/truncate) can make a replayed op fail
/// where the real application would have tolerated the error — the
/// campaign replay gate therefore only admits Write-primitive faults.
#[test]
fn param_fault_campaigns_never_use_replay() {
    use ffis_vfs::Primitive;
    let a = app();
    let sig = FaultSignature {
        model: FaultModel::bit_flip(),
        primitive: Primitive::Truncate,
        target: TargetFilter::Any,
    };
    let cfg = CampaignConfig::new(sig).with_runs(5).with_seed(3).with_replay(true);
    // Nyx never truncates, so there are no eligible instances — but
    // the gate must reject the primitive before anything else runs.
    match Campaign::new(&a, cfg).run() {
        Ok(result) => assert!(!result.used_replay),
        Err(ffis_core::CampaignError::NoEligibleInstances) => {}
        Err(other) => panic!("unexpected {:?}", other),
    }
}
