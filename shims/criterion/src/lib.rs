//! Minimal, offline drop-in for the subset of
//! [criterion](https://crates.io/crates/criterion) this workspace's
//! benches use: groups, `sample_size`, `throughput`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark runs a short warmup, then `sample_size` timed
//! samples (adaptively batching very fast bodies), and prints a
//! one-line report with median/mean time and derived throughput.
//! Honors `FFIS_BENCH_QUICK=1` (used by CI smoke runs) to clamp the
//! sample count.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name, parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration durations, filled by `iter`.
    measured: Vec<Duration>,
}

impl Bencher {
    /// Run `body` repeatedly, measuring each sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warmup: one untimed call (also determines batching for very
        // fast bodies so Instant overhead stays negligible).
        let warm_start = Instant::now();
        black_box(body());
        let warm = warm_start.elapsed();
        let batch = if warm < Duration::from_micros(5) { 100 } else { 1 };
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            self.measured.push(start.elapsed() / batch as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{} ns", ns)
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{}/s", per_sec / 1e9, unit)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{}/s", per_sec / 1e6, unit)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{}/s", per_sec / 1e3, unit)
    } else {
        format!("{:.2} {}/s", per_sec, unit)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Throughput annotation used in the printed report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, label: &str, run: impl FnOnce(&mut Bencher)) {
        let quick = std::env::var("FFIS_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
        let samples = if quick { self.sample_size.min(3) } else { self.sample_size };
        let mut b = Bencher { samples, measured: Vec::new() };
        run(&mut b);
        if b.measured.is_empty() {
            println!("{}/{:<28} (no samples)", self.name, label);
            return;
        }
        let mut sorted = b.measured.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let mut line = format!(
            "{}/{:<28} median {:>10}  mean {:>10}  ({} samples)",
            self.name,
            label,
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
        if let Some(t) = self.throughput {
            let secs = median.as_secs_f64().max(1e-12);
            let rate = match t {
                Throughput::Elements(n) => fmt_rate(n as f64 / secs, "elem"),
                Throughput::Bytes(n) => fmt_rate(n as f64 / secs, "B"),
            };
            line.push_str(&format!("  {}", rate));
        }
        println!("{}", line);
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.to_string();
        let mut f = f;
        self.run_one(&label, |b| f(b));
        self
    }

    /// Benchmark a closure parameterized by an input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        self.run_one(&id.label.clone(), |b| f(b, input));
        self
    }

    /// End the group (report flushing is immediate; this is a no-op
    /// kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {} ==", name);
        BenchmarkGroup { name, sample_size: 10, throughput: None, _criterion: self }
    }

    /// Parity with criterion's configuration API (ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (--bench, filters);
            // this shim runs everything and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_self_test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("write", 16).to_string(), "write/16");
        assert_eq!(BenchmarkId::from_parameter("serial").to_string(), "serial");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(100)), "100 ns");
        assert!(fmt_duration(Duration::from_micros(15)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
