//! Minimal, offline drop-in for the subset of [rayon](https://crates.io/crates/rayon)
//! this workspace uses: `par_iter()` / `into_par_iter()` followed by
//! `.map(..).collect()`.
//!
//! The build environment has no crates-io access, so this shim provides
//! the same names with a real work-stealing-free but genuinely parallel
//! implementation: items are distributed to `available_parallelism()`
//! scoped threads through an atomic cursor, and results are written
//! back into their original slots, so collection order is identical to
//! the serial order (the property the campaign/scan determinism tests
//! rely on).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything a `use rayon::prelude::*` caller expects.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads used for parallel sections.
fn workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f` over `items` in parallel, preserving order.
fn par_map_vec<T: Send, R: Send, F>(items: Vec<T>, f: F) -> Vec<R>
where
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = workers().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Hand out items through an atomic cursor; slots are pre-allocated
    // so each worker writes results back in place.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each slot is taken exactly once");
                let r = f(item);
                *outputs[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()).expect("worker filled slot"))
        .collect()
}

/// A materialized parallel iterator: the items to fan out plus the
/// mapping stage, evaluated on `collect`.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The `map` adapter of [`ParIter`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Attach the mapping stage.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }
}

/// Terminal operations shared by the adapters (the shim only needs
/// `collect`).
pub trait ParallelIterator {
    /// The produced item type.
    type Item: Send;

    /// Evaluate in parallel into an ordered `Vec`.
    fn to_vec(self) -> Vec<Self::Item>;

    /// Evaluate and collect into any `FromIterator` container,
    /// preserving the serial order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C
    where
        Self: Sized,
    {
        self.to_vec().into_iter().collect()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn to_vec(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParallelIterator for ParMap<T, F> {
    type Item = R;
    fn to_vec(self) -> Vec<R> {
        par_map_vec(self.items, self.f)
    }
}

/// `into_par_iter()` — consuming conversion.
pub trait IntoParallelIterator {
    /// Item type of the produced iterator.
    type Item: Send;
    /// Convert into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

/// `par_iter()` — borrowing conversion.
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the produced iterator (a shared reference).
    type Item: Send;
    /// Convert into a [`ParIter`] over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &s) in squares.iter().enumerate() {
            assert_eq!(s, i * i);
        }
    }

    #[test]
    fn par_iter_over_refs() {
        let data: Vec<String> = (0..64).map(|i| format!("x{}", i)).collect();
        let lens: Vec<usize> = data.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens[0], 2);
        assert_eq!(lens[10], 3);
        assert_eq!(lens.len(), 64);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256usize)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            })
            .collect();
        let distinct = seen.lock().unwrap().len();
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) > 1 {
            assert!(distinct >= 1); // >1 on multi-core, but never flaky.
        }
    }
}
