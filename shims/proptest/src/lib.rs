//! Minimal, offline drop-in for the subset of
//! [proptest](https://crates.io/crates/proptest) this workspace's
//! property tests use.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its case number and the
//!   assertion message;
//! * deterministic seeding — the value stream is a pure function of
//!   the test name, so failures reproduce exactly across runs;
//! * strategies are plain `(rng) -> value` generators.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Deterministic per-test RNG (pure function of the test name).
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h)
}

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Set the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// Produced value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    match ((hi - lo) as u64).checked_add(1) {
                        Some(span) => lo + (rng.next_u64() % span) as $t,
                        // Full-width u64 inclusive range.
                        None => rng.next_u64() as $t,
                    }
                }
            }
        )+
    };
}
range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_float {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )+
    };
}
range_strategy_float!(f32, f64);

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy producing `Vec`s with element strategy `S` and a
    /// length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a not-yet-known-length collection.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of length `len` (> 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Everything a `use proptest::prelude::*` caller expects.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("prop_assert failed: {}", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {:?} != {:?} ({} vs {})",
                va, vb, ::std::stringify!($a), ::std::stringify!($b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne failed: both {:?} ({} vs {})",
                va,
                ::std::stringify!($a),
                ::std::stringify!($b),
            ));
        }
    }};
}

/// Skip the current case unless `cond` holds (no regeneration; the
/// case simply counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Internal: expands the body of [`proptest!`] one item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(::std::stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    ::std::panic!(
                        "property {} failed at case {}/{}: {}",
                        ::std::stringify!($name), case + 1, config.cases, msg
                    );
                }
            }
        }
        $crate::__proptest_items!{ cfg = $cfg; $($rest)* }
    };
}

/// The property-test block macro. Supports the
/// `#![proptest_config(..)]` header and `arg in strategy` parameter
/// lists, mirroring the real crate's surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = $crate::ProptestConfig { cases: 64 }; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 1u8..=255, z in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y >= 1);
            prop_assert!((-2.0..2.0).contains(&z));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn index_resolves(ix in any::<crate::sample::Index>(), len in 1usize..100) {
            prop_assert!(ix.index(len) < len);
        }

        #[test]
        fn full_width_inclusive_range_does_not_overflow(x in 0u64..=u64::MAX, y in 1u8..=u8::MAX) {
            // The real check is "generation completed without an
            // overflow panic" for both full- and partial-width spans.
            let _ = x;
            prop_assert!(y >= 1);
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
